"""Rank-to-rank communication-volume analysis.

Builds, from an executed trace, the matrix of bytes exchanged between
every pair of world ranks — the artefact network engineers use to
reason about locality — by attributing each collective's traffic to
the pairwise transfers its algorithm performs:

- ``alltoall``: every participant sends ``nbytes / p`` to every other
  participant (the personalised exchange's uniform approximation);
- ``allreduce`` (ring): every participant sends ``2 nbytes (p-1)/p``
  to its ring successor;
- ``bcast``/``reduce``/``gather``/``scatter``: root-centric star
  attribution; ``sendrecv``: the pair itself.

From the matrix, :func:`locality_report` splits traffic into
intra-node vs inter-node bytes — quantifying the placement effect the
Figure-3 design relies on (XGYRO's per-member collectives stay inside
nodes; only the ensemble-wide coll exchange crosses them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VmpiError
from repro.machine.placement import Placement
from repro.vmpi.tracer import TraceLog


def communication_matrix(trace: TraceLog, n_ranks: int) -> np.ndarray:
    """Bytes sent from rank i to rank j, shape ``(n_ranks, n_ranks)``.

    Traffic attribution follows each collective's algorithm (see the
    module docstring); self-traffic is never counted.
    """
    if n_ranks < 1:
        raise VmpiError(f"n_ranks must be >= 1, got {n_ranks}")
    mat = np.zeros((n_ranks, n_ranks))
    for ev in trace:
        ranks = ev.ranks
        p = len(ranks)
        if max(ranks) >= n_ranks:
            raise VmpiError(
                f"trace event involves rank {max(ranks)} outside "
                f"[0, {n_ranks})"
            )
        if p < 2 or ev.nbytes == 0:
            continue
        if ev.kind == "sendrecv":
            mat[ranks[0], ranks[1]] += ev.nbytes
        elif ev.kind == "alltoall":
            share = ev.nbytes / p
            for i in ranks:
                for j in ranks:
                    if i != j:
                        mat[i, j] += share
        elif ev.kind in ("allreduce", "allgather"):
            # ring: each rank streams to its successor
            volume = 2.0 * ev.nbytes * (p - 1) / p
            for idx, i in enumerate(ranks):
                mat[i, ranks[(idx + 1) % p]] += volume
        elif ev.kind in ("bcast", "scatter"):
            root = ranks[0]
            for j in ranks[1:]:
                mat[root, j] += ev.nbytes / max(p - 1, 1)
        elif ev.kind in ("reduce", "gather"):
            root = ranks[0]
            for i in ranks[1:]:
                mat[i, root] += ev.nbytes / max(p - 1, 1)
        # barriers carry no payload
    return mat


@dataclass(frozen=True)
class LocalityReport:
    """Split of communication volume by node locality."""

    intra_node_bytes: float
    inter_node_bytes: float

    @property
    def total_bytes(self) -> float:
        """All attributed traffic."""
        return self.intra_node_bytes + self.inter_node_bytes

    @property
    def inter_fraction(self) -> float:
        """Share of traffic crossing node boundaries."""
        return self.inter_node_bytes / self.total_bytes if self.total_bytes else 0.0

    def render(self) -> str:
        return (
            f"traffic: {self.total_bytes:.3e} B total, "
            f"{self.intra_node_bytes:.3e} intra-node, "
            f"{self.inter_node_bytes:.3e} inter-node "
            f"({self.inter_fraction:.1%} crossing nodes)"
        )


def locality_report(matrix: np.ndarray, placement: Placement) -> LocalityReport:
    """Split a communication matrix by the placement's node boundaries."""
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise VmpiError(f"matrix must be square, got {matrix.shape}")
    if placement.n_ranks < n:
        raise VmpiError(
            f"placement covers {placement.n_ranks} ranks, matrix has {n}"
        )
    nodes = np.array([placement.node_of(r) for r in range(n)])
    same = nodes[:, None] == nodes[None, :]
    intra = float(matrix[same].sum())
    inter = float(matrix[~same].sum())
    return LocalityReport(intra_node_bytes=intra, inter_node_bytes=inter)
