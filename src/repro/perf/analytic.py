"""Closed-form cost predictions.

Mirrors, in algebra, exactly what the executed solver charges: the same
collective counts, the same message sizes, the same flop formulas, the
same placement-derived link parameters.  Tests assert that these
predictions match the executed simulator, which pins both against
drift.  Benchmarks use the analytic path when they need to sweep a
large design space quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cgyro import costs
from repro.cgyro.nonlinear import padded_length
from repro.collision.cmat import apply_flops
from repro.cgyro.params import CgyroInput
from repro.grid.decomp import Decomposition
from repro.machine.model import MachineModel
from repro.machine.placement import BlockPlacement, Placement
from repro.vmpi.cost import CommCostModel


@dataclass
class AnalyticBreakdown:
    """Predicted per-reporting-interval times by category (seconds)."""

    categories: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Sum over categories (serial-phase solver: wall = sum)."""
        return sum(self.categories.values())

    @property
    def str_comm(self) -> float:
        """Streaming communication time."""
        return self.categories.get("str_comm", 0.0)

    def scaled(self, factor: float) -> "AnalyticBreakdown":
        """Every category multiplied by ``factor``."""
        return AnalyticBreakdown(
            {k: v * factor for k, v in self.categories.items()}
        )


def _n_field_chunks(decomp: Decomposition, inp: CgyroInput) -> int:
    nv_loc = decomp.nv_loc
    chunk = min(nv_loc, inp.n_xi)
    return -(-nv_loc // chunk)


def _member_cost_model(
    machine: MachineModel, placement: Optional[Placement], n_ranks: int
) -> CommCostModel:
    placement = placement or BlockPlacement(machine, n_ranks)
    return CommCostModel(machine, placement)


def predict_cgyro_interval(
    inp: CgyroInput,
    machine: MachineModel,
    n_ranks: int,
    *,
    member_offset: int = 0,
    n_members: int = 1,
    total_ranks: Optional[int] = None,
    include_diag: bool = True,
) -> AnalyticBreakdown:
    """Per-reporting-interval cost of one simulation (or XGYRO member).

    For a plain CGYRO run leave the member arguments at their defaults;
    for an XGYRO member pass its rank-block offset, the ensemble size
    and the job's total rank count so group placement and the
    ensemble-wide coll AllToAll are modeled on the right ranks.
    """
    dims = inp.grid_dims()
    decomp = Decomposition.choose(dims, n_ranks)
    total = total_ranks if total_ranks is not None else n_ranks * n_members
    cm = _member_cost_model(machine, None, total)
    steps = inp.steps_per_report
    out: Dict[str, float] = {c: 0.0 for c in (
        "str_comm", "str_compute", "nl_comm", "nl_compute",
        "coll_comm", "coll_compute", "diag",
    )}

    # ---- str phase -------------------------------------------------
    # group of P1 consecutive ranks starting at the member offset
    comm1_ranks = list(range(member_offset, member_offset + decomp.n_proc_1))
    n_chunks = _n_field_chunks(decomp, inp)
    ar_bytes = dims.nc * decomp.nt_loc * 16  # one moment array
    ar_cost = cm.collective_cost("allreduce", comm1_ranks, ar_bytes)
    n_moments = 3 if inp.beta_e > 0 else 2  # field, upwind (+ current)
    calls_per_step = 4 * n_chunks * n_moments  # stages x chunks x moments
    out["str_comm"] = steps * calls_per_step * ar_cost

    elements = dims.nc * decomp.nv_loc * decomp.nt_loc
    str_flops = steps * (
        4 * costs.RHS_FLOPS_PER_ELEMENT * elements
        + 4 * costs.MOMENT_FLOPS_PER_ELEMENT * elements
        + 4 * costs.FIELD_SOLVE_FLOPS_PER_ELEMENT * dims.nc * decomp.nt_loc
        + 4 * costs.RK_COMBINE_FLOPS_PER_ELEMENT * elements
    )
    out["str_compute"] = machine.compute_seconds(str_flops)

    # ---- nl phase ---------------------------------------------------
    if inp.nonlinear:
        comm2_ranks = [
            member_offset + i2 * decomp.n_proc_1 for i2 in range(decomp.n_proc_2)
        ]
        block_bytes = elements * 16
        a2a_cost = cm.collective_cost("alltoall", comm2_ranks, block_bytes)
        phi_bytes = dims.nc * decomp.nt_loc * 16
        phi_cost = cm.collective_cost("alltoall", comm2_ranks, phi_bytes)
        out["nl_comm"] = steps * (2 * a2a_cost + phi_cost)
        # nl's extra field solve is charged to str_comm/compute
        out["str_comm"] += steps * n_chunks * n_moments * ar_cost
        out["str_compute"] += machine.compute_seconds(
            steps
            * (
                costs.MOMENT_FLOPS_PER_ELEMENT * elements
                + costs.FIELD_SOLVE_FLOPS_PER_ELEMENT * dims.nc * decomp.nt_loc
            )
        )
        out["nl_compute"] = machine.compute_seconds(
            steps
            * costs.bracket_flops(
                dims.nc // decomp.n_proc_2,
                decomp.nv_loc,
                dims.nt,
                padded_length(dims.nt),
            )
        )

    # ---- coll phase -------------------------------------------------
    if n_members == 1:
        coll_ranks = comm1_ranks
        nc_coll = decomp.nc_loc
        member_factor = 1
    else:
        # ensemble-wide group: the i2 comm_1 groups of every member
        per_member = n_ranks
        coll_ranks = [
            m * per_member + member_offset % per_member + i
            for m in range(n_members)
            for i in range(decomp.n_proc_1)
        ]
        nc_coll = dims.nc // (n_members * decomp.n_proc_1)
        member_factor = n_members
    block_bytes = elements * 16
    coll_cost = cm.collective_cost("alltoall", coll_ranks, block_bytes)
    out["coll_comm"] = steps * 2 * coll_cost
    out["coll_compute"] = machine.compute_seconds(
        steps
        * member_factor
        * apply_flops(nc_coll, decomp.nt_loc, dims.nv)
    )

    # ---- diagnostics (one per interval) ------------------------------
    if include_diag:
        sim_ranks = list(range(member_offset, member_offset + n_ranks))
        out["diag"] = (
            n_chunks * n_moments * ar_cost  # diag field solve
            + cm.collective_cost("allreduce", sim_ranks, 2 * dims.nt * 8)
            + machine.compute_seconds(
                costs.DIAG_FLOPS_PER_ELEMENT * elements
                + costs.MOMENT_FLOPS_PER_ELEMENT * elements
                + costs.FIELD_SOLVE_FLOPS_PER_ELEMENT * dims.nc * decomp.nt_loc
            )
        )
    return AnalyticBreakdown(out)


def predict_xgyro_interval(
    inputs_count: int,
    inp: CgyroInput,
    machine: MachineModel,
    total_ranks: int,
) -> AnalyticBreakdown:
    """Wall-clock prediction for an XGYRO ensemble reporting interval.

    Members are identical in cost, so the ensemble wall equals one
    member's predicted interval with member-aware placement.
    """
    per_member = total_ranks // inputs_count
    return predict_cgyro_interval(
        inp,
        machine,
        per_member,
        member_offset=0,
        n_members=inputs_count,
        total_ranks=total_ranks,
    )
