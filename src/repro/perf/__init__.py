"""Performance analysis and reporting.

Everything needed to regenerate the paper's figures and to reason
about the design quantitatively:

- :mod:`repro.perf.analytic` — closed-form per-reporting-step cost
  predictions for CGYRO and XGYRO runs (cross-checked against the
  executed simulator in tests);
- :mod:`repro.perf.report` — the Figure-2 comparison harness and its
  text rendering;
- :mod:`repro.perf.figures` — ASCII renderings of the Figure-1/3
  communicator diagrams, generated *from the executed trace*;
- :mod:`repro.perf.calibrate` — the fitting routine that produced the
  Frontier-like preset constants from the paper's reported numbers;
- :mod:`repro.perf.memory` — memory-budget arithmetic (minimum node
  counts, cmat dominance ratios).
"""

from repro.perf.analytic import (
    AnalyticBreakdown,
    predict_cgyro_interval,
    predict_xgyro_interval,
)
from repro.perf.calibrate import CalibrationResult, calibrate_machine
from repro.perf.comm_matrix import (
    LocalityReport,
    communication_matrix,
    locality_report,
)
from repro.perf.figures import render_figure1, render_figure3
from repro.perf.memory import cmat_dominance_ratio, min_nodes_required
from repro.perf.report import (
    Figure2Result,
    figure2_comparison,
    render_campaign_report,
    render_equivalence_report,
    render_figure2,
    render_recovery_report,
)
from repro.perf.sweep import (
    CollisionalitySweep,
    EnsembleSizeSweep,
    StrongScalingSweep,
)

__all__ = [
    "AnalyticBreakdown",
    "predict_cgyro_interval",
    "predict_xgyro_interval",
    "Figure2Result",
    "figure2_comparison",
    "render_campaign_report",
    "render_equivalence_report",
    "render_figure2",
    "render_recovery_report",
    "render_figure1",
    "render_figure3",
    "CalibrationResult",
    "calibrate_machine",
    "min_nodes_required",
    "cmat_dominance_ratio",
    "EnsembleSizeSweep",
    "StrongScalingSweep",
    "CollisionalitySweep",
    "communication_matrix",
    "locality_report",
    "LocalityReport",
]
