"""Communicator-topology diagrams (Figures 1 and 3), from traces.

The paper's Figures 1 and 3 are structural: which processes form the
communicators of each phase, and which communicator each collective
runs on.  These renderers *derive* the diagram from an executed trace
(not from the intended configuration), so producing them is itself a
verification that the implementation wires the communicators the way
the paper describes; the benches additionally assert the structural
properties.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cgyro.solver import CgyroSimulation
from repro.vmpi.tracer import TraceLog
from repro.xgyro.driver import XgyroEnsemble


def _collect_usage(trace: TraceLog) -> Dict[str, Dict[str, Tuple[Tuple[int, ...], int]]]:
    """{category -> {kind -> (ranks of one example event, event count)}}."""
    usage: Dict[str, Dict[str, Tuple[Tuple[int, ...], int]]] = {}
    for ev in trace:
        per_cat = usage.setdefault(ev.category, {})
        example, count = per_cat.get(ev.kind, (ev.ranks, 0))
        per_cat[ev.kind] = (example, count + 1)
    return usage


def _fmt_ranks(ranks: Tuple[int, ...]) -> str:
    if len(ranks) <= 8:
        return "[" + " ".join(str(r) for r in ranks) + "]"
    return f"[{ranks[0]} {ranks[1]} .. {ranks[-1]}] ({len(ranks)} ranks)"


def render_figure1(sim: CgyroSimulation) -> str:
    """Figure 1: CGYRO str and coll communication logic, from the trace.

    Run at least one traced step before calling.
    """
    trace = sim.world.trace
    dec = sim.decomp
    lines = [
        "Figure 1 — CGYRO str and coll communication logic",
        f"  grid: {dec.describe()}",
        f"  {dec.n_proc_2} toroidal groups; within each group the same "
        f"comm_1 ({dec.n_proc_1} ranks) carries BOTH:",
    ]
    str_events = trace.filter(kind="allreduce", category="str_comm")
    coll_events = trace.filter(kind="alltoall", category="coll_comm")
    for i2, comm in sorted(sim.comm1.items()):
        n_ar = len([e for e in str_events if e.comm_label == comm.label])
        n_a2a = len([e for e in coll_events if e.comm_label == comm.label])
        lines.append(
            f"    group {i2}: ranks {_fmt_ranks(comm.ranks)}  "
            f"str AllReduce x{n_ar} (field+upwind)  |  "
            f"str<->coll AllToAll x{n_a2a}"
        )
    labels_ar = {e.comm_label for e in str_events}
    labels_a2a = {e.comm_label for e in coll_events}
    shared = "SAME" if labels_ar == labels_a2a else "DIFFERENT"
    lines.append(
        f"  => AllReduce and AllToAll ran on the {shared} communicators "
        "(CGYRO reuses comm_1 for both)"
    )
    if trace.filter(kind="alltoall", category="nl_comm"):
        lines.append(
            f"  nl phase: str<->nl AllToAll on comm_2 "
            f"({dec.n_proc_2} ranks across groups)"
        )
    return "\n".join(lines)


def render_figure3(ensemble: XgyroEnsemble) -> str:
    """Figure 3: XGYRO communication logic for k members sharing cmat.

    Run at least one traced ensemble step before calling.
    """
    trace = ensemble.world.trace
    first = ensemble.members[0]
    dec = first.decomp
    k = ensemble.n_members
    lines = [
        f"Figure 3 — XGYRO communication logic, ensemble of k={k} "
        "CGYRO simulations sharing cmat",
        f"  per-member grid: {dec.describe()}",
    ]
    str_events = trace.filter(kind="allreduce", category="str_comm")
    for m, member in enumerate(ensemble.members):
        n_ar = len([e for e in str_events if set(e.ranks) <= set(member.ranks)])
        lines.append(
            f"  member {m} ({member.inp.name}): ranks "
            f"{_fmt_ranks(member.ranks)}  str AllReduce x{n_ar} on "
            f"per-member comm_1 ({dec.n_proc_1} ranks)"
        )
    coll_events = trace.filter(kind="alltoall", category="coll_comm")
    lines.append(
        f"  coll phase: shared cmat distributed over ALL "
        f"{k * dec.n_proc} ranks; per toroidal group the AllToAll spans "
        f"{k} x P1 = {k * dec.n_proc_1} ranks:"
    )
    for i2, comm in sorted(ensemble.scheme.coll_comms.items()):
        n_a2a = len([e for e in coll_events if e.comm_label == comm.label])
        lines.append(
            f"    coll group {i2}: ranks {_fmt_ranks(comm.ranks)}  "
            f"AllToAll x{n_a2a}"
        )
    str_labels = {e.comm_label for e in str_events}
    coll_labels = {e.comm_label for e in coll_events}
    sep = "SEPARATED" if str_labels.isdisjoint(coll_labels) else "SHARED"
    lines.append(
        f"  => str-phase nv communicators and coll communicators are {sep} "
        "(the change XGYRO required)"
    )
    per_member_cmat = ensemble.scheme.cmat_bytes_per_rank(first)
    lines.append(
        f"  per-rank cmat: {per_member_cmat} B "
        f"(= 1/{k} of the private-cmat footprint)"
    )
    return "\n".join(lines)
