"""repro: reproduction of the XGYRO shared-cmat ensemble paper (ICPP 2025).

Top-level re-exports cover the entry points a downstream user needs:

- machine + virtual MPI substrate (``repro.machine``, ``repro.vmpi``),
- phase-space grid and decomposition (``repro.grid``),
- collision operator and the constant tensor ``cmat``
  (``repro.collision``),
- the CGYRO-like solver (``repro.cgyro``),
- the XGYRO ensemble layer — the paper's contribution
  (``repro.xgyro``), and
- performance reporting/analysis (``repro.perf``).

See README.md for a quickstart and DESIGN.md for the architecture.
"""

from repro._version import __version__
from repro.cgyro import (
    CgyroInput,
    CgyroSimulation,
    LinearSolver,
    SerialReference,
    TimeHistory,
    linear_benchmark,
    nl03c_scaled,
    small_test,
)
from repro.machine import MachineModel, frontier_like, generic_cluster, single_node
from repro.perf import figure2_comparison, render_figure2
from repro.vmpi import Communicator, VirtualWorld
from repro.xgyro import (
    SequentialCgyroBaseline,
    XgyroEnsemble,
    XgyroStudy,
    validate_shareable,
)

__all__ = [
    "__version__",
    "CgyroInput",
    "CgyroSimulation",
    "SerialReference",
    "LinearSolver",
    "TimeHistory",
    "small_test",
    "linear_benchmark",
    "nl03c_scaled",
    "MachineModel",
    "frontier_like",
    "generic_cluster",
    "single_node",
    "VirtualWorld",
    "Communicator",
    "XgyroEnsemble",
    "XgyroStudy",
    "SequentialCgyroBaseline",
    "validate_shareable",
    "figure2_comparison",
    "render_figure2",
]
