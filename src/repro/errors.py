"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems (virtual MPI, machine/memory model, decomposition, solver
input, ensemble validation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class VmpiError(ReproError):
    """Base class for virtual-MPI substrate errors."""


class CommunicatorError(VmpiError):
    """A communicator was constructed or used inconsistently.

    Raised, e.g., when a collective is invoked with data for a rank set
    that does not match the communicator's membership, or when a rank is
    translated through a communicator it does not belong to.
    """


class CollectiveError(VmpiError):
    """A collective call received malformed buffers.

    Examples: an ``alltoall`` send list whose length differs from the
    communicator size, or an ``allreduce`` whose per-rank arrays have
    mismatched shapes.
    """


class MachineError(ReproError):
    """Base class for machine-model errors."""


class MemoryLimitExceeded(MachineError):
    """A simulated rank attempted to allocate past its memory budget.

    Attributes
    ----------
    rank:
        World rank whose ledger overflowed (or ``None`` for a
        stand-alone ledger).
    requested_bytes:
        Size of the allocation that failed.
    in_use_bytes:
        Bytes already allocated when the request was made.
    limit_bytes:
        The ledger's capacity.
    breakdown:
        Mapping of live allocation name -> bytes, for diagnostics.
    """

    def __init__(
        self,
        message: str,
        *,
        rank: "int | None" = None,
        requested_bytes: int = 0,
        in_use_bytes: int = 0,
        limit_bytes: int = 0,
        breakdown: "dict[str, int] | None" = None,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.requested_bytes = requested_bytes
        self.in_use_bytes = in_use_bytes
        self.limit_bytes = limit_bytes
        self.breakdown = dict(breakdown or {})


class PlacementError(MachineError):
    """Rank-to-node placement was inconsistent with the machine model."""


class DecompositionError(ReproError):
    """A domain decomposition request cannot be satisfied.

    Raised when the processor grid does not divide the phase-space
    dimensions, or when the requested rank count cannot be factored into
    a valid (toroidal x velocity/configuration) grid.
    """


class InputError(ReproError):
    """A solver input parameter (or input file) is invalid."""


class EnsembleValidationError(ReproError):
    """An XGYRO ensemble is invalid.

    The dominant case: member inputs disagree on a parameter that
    influences the collisional constant tensor (``cmat``), so the tensor
    cannot be shared.  The offending parameter names are carried in
    :attr:`mismatched_fields`.
    """

    def __init__(self, message: str, *, mismatched_fields: "tuple[str, ...]" = ()) -> None:
        super().__init__(message)
        self.mismatched_fields = tuple(mismatched_fields)
