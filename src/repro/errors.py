"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems (virtual MPI, machine/memory model, decomposition, solver
input, ensemble validation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class VmpiError(ReproError):
    """Base class for virtual-MPI substrate errors."""


class CommunicatorError(VmpiError):
    """A communicator was constructed or used inconsistently.

    Raised, e.g., when a collective is invoked with data for a rank set
    that does not match the communicator's membership, or when a rank is
    translated through a communicator it does not belong to.
    """


class CollectiveError(VmpiError):
    """A collective call received malformed buffers.

    Examples: an ``alltoall`` send list whose length differs from the
    communicator size, or an ``allreduce`` whose per-rank arrays have
    mismatched shapes.
    """


class ProtocolError(VmpiError):
    """A collective protocol violation, diagnosed rather than deadlocked.

    Raised by :class:`repro.check.CollectiveChecker` (and the trace
    lint built on it) when a collective schedule is inconsistent: a
    kind/op/dtype/byte-count mismatch across a group, a rank posting
    while still mid-flight on an overlapping communicator, membership
    drift behind one communicator label, reuse of a block already moved
    by ``alltoall``, or a wait-for cycle that would hang a real MPI
    job.  The diagnosis names the ranks, communicator labels, and
    checker sequence numbers involved.

    Attributes
    ----------
    ranks:
        World ranks involved in the violation, sorted.
    comm_labels:
        Labels of the communicators involved, in first-mention order.
    seqs:
        Checker sequence numbers of the offending posts, sorted.
    code:
        Short machine-readable violation class (``"mismatch"``,
        ``"deadlock"``, ``"membership"``, ``"mid-flight"``,
        ``"moved-block"``, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        ranks: "tuple[int, ...]" = (),
        comm_labels: "tuple[str, ...]" = (),
        seqs: "tuple[int, ...]" = (),
        code: str = "",
    ) -> None:
        super().__init__(message)
        self.ranks = tuple(sorted(int(r) for r in ranks))
        self.comm_labels = tuple(comm_labels)
        self.seqs = tuple(sorted(int(s) for s in seqs))
        self.code = code


class MachineError(ReproError):
    """Base class for machine-model errors."""


class MemoryLimitExceeded(MachineError):
    """A simulated rank attempted to allocate past its memory budget.

    Attributes
    ----------
    rank:
        World rank whose ledger overflowed (or ``None`` for a
        stand-alone ledger).
    requested_bytes:
        Size of the allocation that failed.
    in_use_bytes:
        Bytes already allocated when the request was made.
    limit_bytes:
        The ledger's capacity.
    breakdown:
        Mapping of live allocation name -> bytes, for diagnostics.
    """

    def __init__(
        self,
        message: str,
        *,
        rank: "int | None" = None,
        requested_bytes: int = 0,
        in_use_bytes: int = 0,
        limit_bytes: int = 0,
        breakdown: "dict[str, int] | None" = None,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.requested_bytes = requested_bytes
        self.in_use_bytes = in_use_bytes
        self.limit_bytes = limit_bytes
        self.breakdown = dict(breakdown or {})


class LedgerError(MachineError, ValueError):
    """A memory ledger was used inconsistently.

    Examples: registering an allocation name that is already live, or a
    negative allocation size.  Derives from :class:`ValueError` for
    backward compatibility with callers that caught the historical
    bare-``ValueError`` behaviour.
    """


class PlacementError(MachineError):
    """Rank-to-node placement was inconsistent with the machine model."""


class DecompositionError(ReproError):
    """A domain decomposition request cannot be satisfied.

    Raised when the processor grid does not divide the phase-space
    dimensions, or when the requested rank count cannot be factored into
    a valid (toroidal x velocity/configuration) grid.
    """


class InputError(ReproError):
    """A solver input parameter (or input file) is invalid."""


class ResilienceError(ReproError):
    """Base class for fault-injection and recovery errors."""


class FaultPlanError(ResilienceError):
    """A fault plan is malformed or inconsistent with the machine.

    Raised when a plan targets a rank/node outside the world, uses an
    unknown fault kind, or carries invalid timing/factor parameters.
    """


class RankFailure(ResilienceError):
    """One or more virtual ranks died and the loss was detected.

    Raised from a collective boundary (the point where a real MPI job
    observes a peer's death as a timeout).  By the time this propagates,
    the detection timeout has already been charged to the surviving
    participants' simulated clocks.

    Attributes
    ----------
    failed_ranks:
        World ranks that are dead, sorted.
    failed_nodes:
        Distinct node ids hosting the dead ranks, sorted.
    step:
        Ensemble step index during which the loss was detected.
    detected_at_s:
        Simulated time at which the survivors finished the detection
        timeout.
    detection_timeout_s:
        Simulated seconds the detecting group spent waiting.
    comm_label:
        Label of the communicator whose collective hit the dead rank.
    kind:
        Collective kind that detected the failure.
    """

    def __init__(
        self,
        message: str,
        *,
        failed_ranks: "tuple[int, ...]" = (),
        failed_nodes: "tuple[int, ...]" = (),
        step: int = -1,
        detected_at_s: float = 0.0,
        detection_timeout_s: float = 0.0,
        comm_label: str = "",
        kind: str = "",
    ) -> None:
        super().__init__(message)
        self.failed_ranks = tuple(sorted(int(r) for r in failed_ranks))
        self.failed_nodes = tuple(sorted(int(n) for n in failed_nodes))
        self.step = step
        self.detected_at_s = detected_at_s
        self.detection_timeout_s = detection_timeout_s
        self.comm_label = comm_label
        self.kind = kind


class RecoveryFailed(ResilienceError):
    """A failed ensemble could not (or should not) shrink-and-recover.

    Carries the triage outcome so job-level tooling can report why the
    run was aborted rather than degraded.

    Attributes
    ----------
    failed_ranks:
        World ranks that were dead at abort time.
    lost_members:
        Member indices whose rank blocks were hit.
    reason:
        Human-readable abort rationale from the recovery policy.
    """

    def __init__(
        self,
        message: str,
        *,
        failed_ranks: "tuple[int, ...]" = (),
        lost_members: "tuple[int, ...]" = (),
        reason: str = "",
    ) -> None:
        super().__init__(message)
        self.failed_ranks = tuple(sorted(int(r) for r in failed_ranks))
        self.lost_members = tuple(sorted(int(m) for m in lost_members))
        self.reason = reason


class IntegrityError(ResilienceError):
    """Silent data corruption was detected by a checksum guard.

    Raised when a shared-cmat shard (or a cached tensor entry) fails
    its content-hash re-verification and the caller asked for failure
    rather than in-place repair.

    Attributes
    ----------
    ranks:
        World ranks whose shards failed verification.
    """

    def __init__(self, message: str, *, ranks: "tuple[int, ...]" = ()) -> None:
        super().__init__(message)
        self.ranks = tuple(sorted(int(r) for r in ranks))


class CampaignError(ReproError):
    """The campaign scheduler could not queue, pack, or run a job.

    Raised when a request stream is malformed (bad JSON, duplicate
    request ids), when a request cannot fit the machine at any node
    count even alone (k=1), or when the runner is driven
    inconsistently.
    """


class PlanError(ReproError):
    """The decomposition/placement autotuner failed.

    Raised when the search space is empty (no feasible geometry for the
    requested ensemble on the machine), when a plan artifact is
    malformed or inconsistent with the machine/input it is applied to,
    or when a planner is driven with invalid arguments.
    """


class ServiceError(ReproError):
    """The online campaign service was configured or driven badly.

    Raised when a traffic model or service policy is constructed with
    invalid parameters, when the elastic pool is asked to allocate
    nodes it does not hold, or when ready work can never be placed
    even with the pool fully grown and idle.
    """


class EnsembleValidationError(ReproError):
    """An XGYRO ensemble is invalid.

    The dominant case: member inputs disagree on a parameter that
    influences the collisional constant tensor (``cmat``), so the tensor
    cannot be shared.  The offending parameter names are carried in
    :attr:`mismatched_fields`.
    """

    def __init__(self, message: str, *, mismatched_fields: "tuple[str, ...]" = ()) -> None:
        super().__init__(message)
        self.mismatched_fields = tuple(mismatched_fields)


class JournalCrash(ServiceError):
    """The injected write-ahead-log crash point was reached.

    Raised by :class:`~repro.service.journal.ServiceJournal` when its
    ``crash_at_event`` index comes due: the event is *not* written and
    the exception unwinds the service loop, simulating the control
    plane dying mid-flight.  Recovery tests catch it and replay the
    surviving journal prefix.
    """


class InvariantViolation(ReproError):
    """A chaos-scenario closed-loop invariant failed.

    Raised by :mod:`repro.check.invariants` when a service run under an
    injected fault schedule loses or duplicates a request, breaks
    ledger conservation, diverges from its own write-ahead log, or
    degrades beyond the scenario's SLO floor.
    """
