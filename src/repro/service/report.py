"""Service-level outcome records and the aggregate report.

Where the batch :class:`~repro.campaign.report.CampaignReport` answers
"how fast did the machine drain a fixed queue", the
:class:`ServiceReport` answers the online questions the ROADMAP's
"millions of users" framing actually poses:

- **time-to-result** (arrival to finish) at p50/p99, computed with the
  same Prometheus-style bucket interpolation
  (:meth:`~repro.obs.metrics.Histogram.quantile`) a production
  dashboard would use;
- **SLO attainment** — the fraction of served requests that finished
  by their deadline;
- **goodput** — member-steps completed *within* SLO per simulated
  second (work that arrived too late to matter does not count);
- **shed rate** — arrivals turned away at the admission door;
- **pool economics** — provisioned node-seconds (what the elastic pool
  paid for), busy node-seconds (what it used), and the pool-size
  timeline against which offered load can be plotted.

All times are simulated-clock seconds; :meth:`ServiceReport.to_dict`
is JSON-safe and byte-stable under ``json.dumps(..., sort_keys=True)``
for same-seed reruns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.campaign.report import AbandonedRecord, JobRecord
from repro.obs.metrics import Histogram
from repro.service.admission import RejectionRecord

#: Time-to-result histogram bounds (simulated seconds).  Wider than the
#: telemetry defaults: a service request's TTR includes window hold and
#: queueing, so the interesting mass sits in minutes, not microseconds.
SERVICE_TTR_BUCKETS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
    600.0, 1200.0, 1800.0, 3600.0, 7200.0,
)


@dataclass(frozen=True)
class ServedRecord:
    """One request served to completion by the online service."""

    request_id: str
    tenant: str
    arrival_s: float
    start_s: float
    finish_s: float
    deadline_s: Optional[float]
    steps: int
    attempts: int
    job_id: str

    @property
    def ttr_s(self) -> float:
        """Time-to-result: arrival to finish, across retries."""
        return self.finish_s - self.arrival_s

    @property
    def wait_s(self) -> float:
        """Arrival to first dispatch (window hold + queueing)."""
        return max(0.0, self.start_s - self.arrival_s)

    @property
    def slo_met(self) -> bool:
        """Finished by the deadline (vacuously true without one)."""
        return self.deadline_s is None or self.finish_s <= self.deadline_s

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "arrival_s": self.arrival_s,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "deadline_s": self.deadline_s,
            "steps": self.steps,
            "attempts": self.attempts,
            "job_id": self.job_id,
            "ttr_s": self.ttr_s,
            "wait_s": self.wait_s,
            "slo_met": self.slo_met,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ServedRecord":
        """Rebuild from :meth:`to_dict` output (journal replay);
        derived keys (``ttr_s`` etc.) are ignored."""
        deadline = d["deadline_s"]
        return cls(
            request_id=str(d["request_id"]),
            tenant=str(d["tenant"]),
            arrival_s=float(d["arrival_s"]),  # type: ignore[arg-type]
            start_s=float(d["start_s"]),  # type: ignore[arg-type]
            finish_s=float(d["finish_s"]),  # type: ignore[arg-type]
            deadline_s=None if deadline is None else float(deadline),  # type: ignore[arg-type]
            steps=int(d["steps"]),  # type: ignore[arg-type]
            attempts=int(d["attempts"]),  # type: ignore[arg-type]
            job_id=str(d["job_id"]),
        )


@dataclass
class ServiceReport:
    """Aggregate summary of one online-service run."""

    machine_name: str
    machine_n_nodes: int
    horizon_s: float  # arrival horizon the traffic was generated over
    duration_s: float  # service start to last completion/reclaim
    offered: int  # arrivals presented to admission
    served: List[ServedRecord] = field(default_factory=list)
    rejections: List[RejectionRecord] = field(default_factory=list)
    abandoned: List[AbandonedRecord] = field(default_factory=list)
    jobs: List[JobRecord] = field(default_factory=list)
    cache: Dict[str, float] = field(default_factory=dict)
    pool_node_seconds: float = 0.0
    pool_timeline: List[Dict[str, object]] = field(default_factory=list)
    tenant_node_seconds: Dict[str, float] = field(default_factory=dict)
    #: resilience counters the loop accumulates — retries, dead-letters
    #: broken down by cause, data-plane recoveries, control-plane
    #: crashes/recovery seconds, provisioning failures and stalls,
    #: domain losses (empty on a fault-free run)
    resilience: Dict[str, object] = field(default_factory=dict)
    #: live-monitoring summary (:meth:`ServiceMonitor.summary` — window
    #: rollout counts, alert timeline, incident reports; empty when the
    #: service ran without a monitor)
    monitoring: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_served(self) -> int:
        """Requests brought to completion."""
        return len(self.served)

    @property
    def n_shed(self) -> int:
        """Arrivals rejected at admission."""
        return len(self.rejections)

    @property
    def n_abandoned(self) -> int:
        """Admitted requests dead-lettered after repeated faults."""
        return len(self.abandoned)

    @property
    def shed_rate(self) -> float:
        """Shed over offered (0.0 with no arrivals)."""
        return self.n_shed / self.offered if self.offered else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of served requests that met their deadline."""
        if not self.served:
            return 0.0
        return sum(1 for r in self.served if r.slo_met) / len(self.served)

    @property
    def goodput_member_steps_per_s(self) -> float:
        """Member-steps completed *within SLO*, per simulated second."""
        if self.duration_s <= 0:
            return 0.0
        good = sum(r.steps for r in self.served if r.slo_met)
        return good / self.duration_s

    @property
    def throughput_member_steps_per_s(self) -> float:
        """All completed member-steps per simulated second."""
        if self.duration_s <= 0:
            return 0.0
        return sum(r.steps for r in self.served) / self.duration_s

    @property
    def busy_node_seconds(self) -> float:
        """Node-seconds actually spent running jobs."""
        return sum(j.n_nodes * j.elapsed_s for j in self.jobs)

    @property
    def pool_utilisation(self) -> float:
        """Busy node-seconds over provisioned node-seconds — the
        elastic pool's efficiency (a fixed pool pays for idle time)."""
        if self.pool_node_seconds <= 0:
            return 0.0
        return self.busy_node_seconds / self.pool_node_seconds

    @property
    def peak_pool_nodes(self) -> int:
        """Largest provisioned size the pool reached."""
        if not self.pool_timeline:
            return 0
        return max(int(s["provisioned"]) for s in self.pool_timeline)

    @property
    def mean_k(self) -> float:
        """Average ensemble size across dispatched jobs."""
        if not self.jobs:
            return 0.0
        return sum(j.k for j in self.jobs) / len(self.jobs)

    @property
    def cache_hit_rate(self) -> float:
        """Cmat-cache hit rate over the run (0.0 without a cache)."""
        return float(self.cache.get("hit_rate", 0.0))

    # ------------------------------------------------------------------
    def ttr_histogram(self) -> Histogram:
        """Time-to-result distribution over served requests."""
        hist = Histogram(SERVICE_TTR_BUCKETS)
        for r in self.served:
            hist.observe(r.ttr_s)
        return hist

    def ttr_quantile(self, q: float) -> float:
        """Interpolated TTR quantile (NaN before the first service)."""
        return self.ttr_histogram().quantile(q)

    @property
    def p50_ttr_s(self) -> float:
        """Median time-to-result."""
        return self.ttr_quantile(0.5)

    @property
    def p99_ttr_s(self) -> float:
        """Tail time-to-result."""
        return self.ttr_quantile(0.99)

    # ------------------------------------------------------------------
    def tenant_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant served counts, SLO attainment, and node-seconds."""
        out: Dict[str, Dict[str, float]] = {}
        for r in self.served:
            row = out.setdefault(
                r.tenant, {"served": 0, "slo_met": 0, "node_seconds": 0.0}
            )
            row["served"] += 1
            row["slo_met"] += 1 if r.slo_met else 0
        for tenant, ns in self.tenant_node_seconds.items():
            out.setdefault(
                tenant, {"served": 0, "slo_met": 0, "node_seconds": 0.0}
            )["node_seconds"] = ns
        return dict(sorted(out.items()))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation of the whole report."""
        return {
            "machine_name": self.machine_name,
            "machine_n_nodes": self.machine_n_nodes,
            "horizon_s": self.horizon_s,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "n_served": self.n_served,
            "n_shed": self.n_shed,
            "n_abandoned": self.n_abandoned,
            "shed_rate": self.shed_rate,
            "slo_attainment": self.slo_attainment,
            "goodput_member_steps_per_s": self.goodput_member_steps_per_s,
            "throughput_member_steps_per_s": (
                self.throughput_member_steps_per_s
            ),
            "p50_ttr_s": _json_float(self.p50_ttr_s),
            "p99_ttr_s": _json_float(self.p99_ttr_s),
            "n_jobs": len(self.jobs),
            "mean_k": self.mean_k,
            "busy_node_seconds": self.busy_node_seconds,
            "pool_node_seconds": self.pool_node_seconds,
            "pool_utilisation": self.pool_utilisation,
            "peak_pool_nodes": self.peak_pool_nodes,
            "cache": dict(self.cache),
            "resilience": dict(self.resilience),
            "monitoring": dict(self.monitoring),
            "tenants": self.tenant_summary(),
            "rejections": [r.to_dict() for r in self.rejections],
            "abandoned": [a.to_dict() for a in self.abandoned],
            "pool_timeline": [dict(s) for s in self.pool_timeline],
            "jobs": [j.to_dict() for j in self.jobs],
            "served": [r.to_dict() for r in self.served],
        }


def _json_float(x: float) -> Optional[float]:
    """NaN is not JSON; quantiles of an empty service render as None."""
    return None if x != x else float(x)


def _fmt_seconds(x: float) -> str:
    """Render a quantile: ``n/a`` for NaN (the text twin of the JSON
    ``None`` convention above), else one-decimal seconds."""
    return "n/a" if x != x else f"{x:.1f} s"


# ----------------------------------------------------------------------
def render_service_report(report: ServiceReport) -> str:
    """Human-readable service summary (the ``repro serve`` output)."""
    lines = [
        f"online service on {report.machine_name} "
        f"({report.machine_n_nodes} nodes)",
        f"  horizon          : {report.horizon_s:.0f} s "
        f"(ran {report.duration_s:.1f} s)",
        f"  offered          : {report.offered}",
        f"  served           : {report.n_served}"
        + (f"  (+{report.n_abandoned} abandoned)" if report.abandoned else ""),
        f"  shed             : {report.n_shed} "
        f"({100.0 * report.shed_rate:.1f}%)",
        f"  SLO attainment   : {100.0 * report.slo_attainment:.1f}%",
        f"  TTR p50 / p99    : {_fmt_seconds(report.p50_ttr_s)} / "
        f"{_fmt_seconds(report.p99_ttr_s)}",
        f"  goodput          : {report.goodput_member_steps_per_s:.1f} "
        "member-steps/s",
        f"  jobs (mean k)    : {len(report.jobs)} ({report.mean_k:.2f})",
        f"  cache hit rate   : {100.0 * report.cache_hit_rate:.1f}%",
        f"  pool             : peak {report.peak_pool_nodes} nodes, "
        f"{report.pool_node_seconds:.0f} node-s provisioned, "
        f"{100.0 * report.pool_utilisation:.1f}% busy",
    ]
    res = report.resilience
    if res:
        causes = res.get("dead_letters_by_cause") or {}
        cause_txt = (
            " (" + ", ".join(f"{k} {v}" for k, v in sorted(causes.items())) + ")"
            if causes
            else ""
        )
        lines.append(
            f"  resilience       : {res.get('retries', 0)} retries, "
            f"{res.get('dead_letters', 0)} dead-letters{cause_txt}, "
            f"{res.get('recovery_seconds', 0.0):.1f} s recovering"
        )
        control = []
        if res.get("crashes"):
            control.append(f"{res['crashes']} service crash(es)")
        if res.get("provision_failures"):
            control.append(
                f"{res['provision_failures']} provision failure(s)"
            )
        if res.get("provision_stall_seconds"):
            control.append(
                f"{res['provision_stall_seconds']:.0f} s provisioning stall"
            )
        if res.get("domain_losses"):
            control.append(f"{res['domain_losses']} domain loss(es)")
        if control:
            lines.append("  control faults   : " + ", ".join(control))
    mon = report.monitoring
    if mon:
        lines.append(
            f"  monitoring       : {mon.get('n_windows', 0)} windows x "
            f"{float(mon.get('window_s', 0.0)):g} s, "
            f"{mon.get('n_fired', 0)} alert(s) fired / "
            f"{mon.get('n_resolved', 0)} resolved"
        )
        for inc in mon.get("incidents", []):  # type: ignore[union-attr]
            lines.append(f"    {inc['narrative']}")
    tenants = report.tenant_summary()
    if len(tenants) > 1:
        lines.append("  tenants:")
        for name, row in tenants.items():
            served = int(row["served"])
            met = int(row["slo_met"])
            pct = 100.0 * met / served if served else 0.0
            lines.append(
                f"    {name:<12} served {served:>4}  "
                f"SLO {pct:5.1f}%  {row['node_seconds']:.0f} node-s"
            )
    return "\n".join(lines)
