"""The online service loop: arrive, admit, hold, batch, place, serve.

:class:`OnlineService` is the long-running counterpart of the batch
:class:`~repro.campaign.runner.CampaignRunner`.  Where the campaign
drains a queue that was full at t=0, the service runs a discrete-event
simulation on one deterministic clock:

- **arrivals** come from a :class:`~repro.service.traffic.TrafficModel`
  and pass :class:`~repro.service.admission.AdmissionController` —
  beyond ``max_pending`` in-system requests, new arrivals are shed
  with explicit rejection records (backpressure, not unbounded queues);
- admitted requests sit in a :class:`~repro.service.window.MovingWindow`
  until their signature group reaches ``min_batch`` or the oldest
  member has waited ``max_hold_s``;
- flushed batches are ordered by
  :meth:`~repro.service.admission.FairSharePolicy.batch_key` (weighted
  fair share across tenants, EDF within) and placed greedily onto the
  free nodes of an :class:`~repro.service.pool.ElasticNodePool`; a
  blocked batch triggers a grow request, and idle nodes drain back
  after ``idle_reclaim_s``;
- each placement is executed through
  :meth:`CampaignRunner.dispatch() <repro.campaign.runner.CampaignRunner.dispatch>`
  — same cmat cache, same health/quarantine charging, same telemetry
  span tree, same fault semantics as the batch path — and its
  completion is a future event at ``now + elapsed``;
- members lost to faults re-enter the window after the
  :class:`~repro.resilience.health.RetryPolicy` backoff, or land on
  the dead-letter list once the attempt cap is spent.

Every quantity of interest lands in a :class:`ServiceReport`; every
decision (arrival, shed, dispatch, retry, completion, SLO miss) emits
counters/histograms through the shared
:class:`~repro.obs.Telemetry` bundle when one is installed.

The event heap orders ``(time, kind-rank, sequence)`` so same-instant
events resolve deterministically: capacity comes up and completions
release nodes *before* new arrivals are admitted, and window flush
timers run last.  Same seed, same knobs — byte-identical report.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ServiceError
from repro.campaign.cache import CmatCache
from repro.campaign.packer import CampaignPacker, PackedJob
from repro.campaign.report import AbandonedRecord, JobRecord
from repro.campaign.request import SimRequest
from repro.campaign.runner import CampaignRunner
from repro.resilience.health import NodeHealthTracker, RetryPolicy
from repro.service.admission import (
    UNATTRIBUTED,
    AdmissionController,
    FairSharePolicy,
)
from repro.service.pool import ElasticNodePool
from repro.service.report import (
    SERVICE_TTR_BUCKETS,
    ServedRecord,
    ServiceReport,
)
from repro.service.traffic import TrafficModel
from repro.service.window import MovingWindow, WindowPolicy

#: Same-instant event precedence: capacity first, then completions
#: (free nodes), then new work, then retries, then timers.
_EVENT_RANK = {
    "ready": 0,
    "complete": 1,
    "arrival": 2,
    "release": 3,
    "flush": 4,
    "reclaim": 5,
}


@dataclass
class _ReadyBatch:
    """A flushed signature group waiting for nodes."""

    seq: int
    flushed_at: float
    signature_key: str
    requests: List[SimRequest] = field(default_factory=list)


class OnlineService:
    """Serve arriving requests on an elastic pool under one sim clock.

    Parameters
    ----------
    machine:
        The machine whose nodes the pool manages.
    traffic:
        Arrival stream generator (seeded — reruns are byte-identical).
    window:
        Moving-window flush policy (default: ``WindowPolicy()``).
    max_pending:
        Admission bound on in-system (held + flushed-unplaced)
        requests; ``None`` never sheds.
    weights:
        Tenant fair-share weights (unlisted tenants weigh 1.0).
    default_slo_s:
        Deadline stamped on admitted requests that arrive without one
        (``None`` leaves them deadline-free).
    steps:
        Per-job step override; default is each job's
        ``steps_per_report`` cadence.
    pool:
        An :class:`ElasticNodePool` to use as-is; otherwise one is
        built from ``min_nodes`` / ``max_nodes`` /
        ``provision_delay_s`` / ``idle_reclaim_s``.
    prefer_larger_k:
        Packer sharing mode; ``False`` is the k=1 FIFO baseline.
    cache / use_cache / retry / health / node_faults /
    checkpoint_interval / policy / telemetry:
        Forwarded to the underlying :class:`CampaignRunner` — dispatch
        semantics are identical to the batch path.
    max_dispatches:
        Hard cap on total dispatches, a backstop against a retry
        configuration that never converges.
    """

    def __init__(
        self,
        machine,
        traffic: TrafficModel,
        *,
        window: Optional[WindowPolicy] = None,
        max_pending: Optional[int] = None,
        weights: Optional[Mapping[str, float]] = None,
        default_slo_s: Optional[float] = None,
        steps: Optional[int] = None,
        pool: Optional[ElasticNodePool] = None,
        min_nodes: int = 1,
        max_nodes: Optional[int] = None,
        provision_delay_s: float = 0.0,
        idle_reclaim_s: float = float("inf"),
        prefer_larger_k: bool = True,
        cache: Optional[CmatCache] = None,
        use_cache: bool = True,
        retry: Optional[RetryPolicy] = RetryPolicy(),
        health: Optional[NodeHealthTracker] = None,
        node_faults=None,
        checkpoint_interval: int = 1,
        policy=None,
        telemetry=None,
        max_dispatches: int = 100_000,
    ) -> None:
        self.machine = machine
        self.traffic = traffic
        self.window = MovingWindow(window)
        self.admission = AdmissionController(max_pending)
        self.fairness = FairSharePolicy(weights)
        self.default_slo_s = default_slo_s
        self.steps = steps
        self.telemetry = telemetry
        if max_dispatches < 1:
            raise ServiceError(
                f"max_dispatches must be >= 1, got {max_dispatches}"
            )
        self.max_dispatches = int(max_dispatches)
        shared_health = health if health is not None else NodeHealthTracker()
        self.pool = pool if pool is not None else ElasticNodePool(
            machine,
            min_nodes=min_nodes,
            max_nodes=max_nodes,
            provision_delay_s=provision_delay_s,
            idle_reclaim_s=idle_reclaim_s,
            health=shared_health,
        )
        if self.pool.machine is not machine:
            raise ServiceError(
                "the pool must manage the same machine the service runs on"
            )
        self.packer = CampaignPacker(
            machine, prefer_larger_k=prefer_larger_k, health=shared_health
        )
        self.runner = CampaignRunner(
            machine,
            packer=self.packer,
            cache=cache,
            use_cache=use_cache,
            retry=retry,
            health=shared_health,
            node_faults=node_faults,
            checkpoint_interval=checkpoint_interval,
            policy=policy,
            telemetry=telemetry,
        )
        # mutable run state (reset by run())
        self._heap: List[Tuple[float, int, int, str, object]] = []
        self._seq = 0
        self._now = 0.0
        self._ready: List[_ReadyBatch] = []
        self._running = 0
        self._job_seq = 0
        self._batch_seq = 0
        self._by_id: Dict[str, SimRequest] = {}
        self._served: List[ServedRecord] = []
        self._abandoned: List[AbandonedRecord] = []
        self._jobs: List[JobRecord] = []
        self._flush_timers: set = set()
        self._reclaim_timers: set = set()

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _push(self, t: float, kind: str, payload: object = None) -> None:
        self._seq += 1
        heapq.heappush(
            self._heap, (float(t), _EVENT_RANK[kind], self._seq, kind, payload)
        )

    def _in_system(self) -> int:
        """Requests admitted but not yet dispatched (the admission
        bound's denominator): window holds plus flushed-unplaced."""
        return len(self.window) + sum(len(b.requests) for b in self._ready)

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self, horizon_s: float) -> ServiceReport:
        """Generate ``horizon_s`` of traffic, serve it to empty, and
        return the service report."""
        requests = self.traffic.generate(horizon_s)
        tele = self.telemetry
        if tele is not None:
            tele.tracer.time_offset = 0.0
            tele.tracer.begin("service", "service", 0.0)
        for req in requests:
            self._push(req.arrival_s, "arrival", req)
        while self._heap or self.window or self._ready:
            if not self._heap:
                # nothing scheduled but requests still held: only
                # possible with an infinite hold bound and a group
                # below min_batch — drain it at the current clock
                if self.window:
                    self._force_drain()
                    continue
                raise ServiceError(
                    "service stalled: batches are blocked and no event "
                    "is pending"
                )  # pragma: no cover - _maybe_grow raises first
            t, _, _, kind, payload = heapq.heappop(self._heap)
            self._now = max(self._now, t)
            self.pool.on_ready(self._now)
            if kind == "arrival":
                self._on_arrival(payload)
            elif kind == "complete":
                self._on_complete(payload)
            elif kind == "release":
                self._on_release(payload)
            elif kind == "flush":
                self._flush_timers.discard(t)
            elif kind == "reclaim":
                self._reclaim_timers.discard(t)
            # "ready" has no payload: on_ready above did the work
            self._schedule()
        self.pool.finish(self._now)
        if tele is not None:
            tele.tracer.time_offset = 0.0
            tele.tracer.end(self._now)
            tele.metrics.gauge("service_pool_peak_nodes").max(
                max((s.provisioned for s in self.pool.timeline), default=0)
            )
            if self.runner.cache is not None:
                for key, val in self.runner.cache.stats().items():
                    tele.metrics.gauge(f"service_cache_{key}").set(val)
        return ServiceReport(
            machine_name=self.machine.name,
            machine_n_nodes=self.machine.n_nodes,
            horizon_s=float(horizon_s),
            duration_s=self._now,
            offered=self.admission.offered,
            served=self._served,
            rejections=list(self.admission.rejections),
            abandoned=self._abandoned,
            jobs=self._jobs,
            cache=(
                self.runner.cache.stats()
                if self.runner.cache is not None
                else {}
            ),
            pool_node_seconds=self.pool.node_seconds,
            pool_timeline=self.pool.timeline_dicts(),
            tenant_node_seconds=self.fairness.served(),
        )

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, req: SimRequest) -> None:
        tenant = req.tenant or UNATTRIBUTED
        tele = self.telemetry
        if tele is not None:
            tele.metrics.counter(
                "service_arrivals_total", tenant=tenant
            ).inc()
        rejection = self.admission.try_admit(req, self._in_system())
        if rejection is not None:
            if tele is not None:
                tele.metrics.counter(
                    "service_shed_total", tenant=tenant
                ).inc()
            return
        if req.deadline_s is None and self.default_slo_s is not None:
            req = dataclasses.replace(
                req, deadline_s=req.arrival_s + self.default_slo_s
            )
        self._by_id[req.request_id] = req
        self.window.add(req, self._now)

    def _on_release(self, req: SimRequest) -> None:
        """A retry's backoff elapsed: back into the window (admission
        was already paid on first arrival)."""
        self._by_id[req.request_id] = req
        self.window.add(req, self._now)

    def _on_complete(self, payload) -> None:
        job, record, completed, lost = payload
        self._running -= 1
        self.pool.release(job.nodes, self._now)
        tele = self.telemetry
        for rec in completed:
            req = self._by_id.pop(rec.request_id)
            served = ServedRecord(
                request_id=rec.request_id,
                tenant=req.tenant or UNATTRIBUTED,
                arrival_s=req.arrival_s,
                start_s=rec.start_s,
                finish_s=rec.finish_s,
                deadline_s=req.deadline_s,
                steps=rec.steps,
                attempts=rec.attempts,
                job_id=rec.job_id,
            )
            self._served.append(served)
            if tele is not None:
                tele.metrics.counter(
                    "service_completions_total", tenant=served.tenant
                ).inc()
                tele.metrics.histogram(
                    "service_ttr_seconds", buckets=SERVICE_TTR_BUCKETS
                ).observe(served.ttr_s)
                tele.metrics.histogram("service_wait_seconds").observe(
                    served.wait_s
                )
                if not served.slo_met:
                    tele.metrics.counter(
                        "service_slo_miss_total", tenant=served.tenant
                    ).inc()
        retry = self.runner.retry
        for req in lost:
            attempts_done = req.attempt + 1
            if retry is not None and not retry.allows(attempts_done + 1):
                if tele is not None:
                    tele.metrics.counter("service_dead_letters_total").inc()
                self._by_id.pop(req.request_id, None)
                self._abandoned.append(
                    AbandonedRecord(
                        request_id=req.request_id,
                        attempts=attempts_done,
                        last_job_id=record.job_id,
                        reason=(
                            f"lost to faults on all {attempts_done} "
                            "dispatch(es); retry policy "
                            f"max_attempts={retry.max_attempts}"
                        ),
                    )
                )
                continue
            backoff = (
                retry.backoff_s(attempts_done, key=req.request_id)
                if retry is not None
                else 0.0
            )
            if tele is not None:
                tele.metrics.counter("service_retries_total").inc()
            self._push(self._now + backoff, "release", req.requeued())

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _force_drain(self) -> None:
        """Flush every held group regardless of size/age (end of
        traffic with an infinite hold bound)."""
        for batch in self.window.flush(self._now, force=True):
            self._admit_batch(batch)
        self._schedule()

    def _admit_batch(self, batch) -> None:
        self._batch_seq += 1
        self._ready.append(
            _ReadyBatch(
                seq=self._batch_seq,
                flushed_at=self._now,
                signature_key=batch.signature_key,
                requests=list(batch.requests),
            )
        )

    def _schedule(self) -> None:
        """Flush ready groups, place them fair-share order, grow the
        pool for whatever stays blocked, and (re)arm timers."""
        for batch in self.window.flush(self._now):
            self._admit_batch(batch)
        progress = True
        while progress and self._ready:
            progress = False
            self._ready.sort(
                key=lambda b: self.fairness.batch_key(b.requests, b.seq)
            )
            for rb in self._ready:
                if self._try_place(rb):
                    # placement charged fair-share service: re-sort
                    # before picking the next batch
                    progress = True
                    break
        if self._ready:
            self._maybe_grow()
        else:
            # no blocked work wants the idle capacity: drain whatever
            # is overdue (reclaim deferred while batches were blocked)
            due = self.pool.next_reclaim()
            if due is not None and due <= self._now:
                self.pool.reclaim_idle(self._now)
        self._arm_timers()

    def _try_place(self, rb: _ReadyBatch) -> bool:
        """Dispatch the largest feasible prefix of ``rb`` onto free
        nodes; returns True when anything was placed."""
        free = self.pool.free_nodes(self._now)
        if not free:
            return False
        top_k = len(rb.requests) if self.packer.prefer_larger_k else 1
        shape = None
        for k in range(top_k, 0, -1):
            shape = self.packer.shape_for(
                rb.requests[0].input, k, max_nodes=len(free)
            )
            if shape is not None:
                break
        if shape is None:
            return False
        if self._job_seq >= self.max_dispatches:
            raise ServiceError(
                f"service exceeded max_dispatches={self.max_dispatches} "
                "(retry storm or misconfigured window?)"
            )
        members = rb.requests[: shape.k]
        nodes = tuple(free[: shape.n_nodes])
        self.pool.allocate(nodes, self._now)
        job = PackedJob(
            job_id=f"svc{self._job_seq:05d}",
            wave=self._job_seq,
            requests=tuple(members),
            signature_key=rb.signature_key,
            shape=shape,
            nodes=nodes,
        )
        self._job_seq += 1
        record, completed, lost = self.runner.dispatch(
            job, start_s=self._now, steps=self.steps
        )
        self._jobs.append(record)
        self._running += 1
        self.fairness.charge(members, shape.n_nodes * record.elapsed_s)
        if self.telemetry is not None:
            self.telemetry.metrics.counter("service_dispatch_total").inc()
            self.telemetry.metrics.gauge("service_pool_busy_nodes").max(
                float(self.pool.busy)
            )
        self._push(self._now + record.elapsed_s, "complete",
                   (job, record, completed, lost))
        del rb.requests[: shape.k]
        if not rb.requests:
            self._ready.remove(rb)
        return True

    def _maybe_grow(self) -> None:
        """Ask the pool for the most underserved blocked batch's
        deficit, or prove the service is stuck and raise."""
        rb = min(
            self._ready,
            key=lambda b: self.fairness.batch_key(b.requests, b.seq),
        )
        top_k = len(rb.requests) if self.packer.prefer_larger_k else 1
        target = None
        for k in range(top_k, 0, -1):
            target = self.packer.shape_for(
                rb.requests[0].input, k, max_nodes=self.pool.max_nodes
            )
            if target is not None:
                break
        if target is None:
            raise ServiceError(
                f"request {rb.requests[0].request_id!r} cannot fit on "
                f"{self.pool.max_nodes} node(s) of {self.machine.name} "
                "at any ensemble size — it would block the service forever"
            )
        free = len(self.pool.free_nodes(self._now))
        provisioning = self.pool.committed - self.pool.provisioned
        deficit = target.n_nodes - free - provisioning
        if deficit > 0:
            ready_at = self.pool.request_grow(deficit, self._now)
            if ready_at is not None:
                self._push(ready_at, "ready")
                return
        if self._running == 0 and provisioning == 0 and deficit > 0:
            raise ServiceError(
                f"service deadlocked: batch of {len(rb.requests)} "
                f"(signature {rb.signature_key}) needs {target.n_nodes} "
                f"node(s), only {free} allocatable, and the pool is at "
                f"its ceiling ({self.pool.max_nodes}) with nothing "
                "running — quarantined nodes?"
            )

    def _arm_timers(self) -> None:
        expiry = self.window.next_expiry()
        if (
            expiry is not None
            and math.isfinite(expiry)
            and expiry > self._now
            and expiry not in self._flush_timers
        ):
            self._flush_timers.add(expiry)
            self._push(expiry, "flush")
        reclaim = self.pool.next_reclaim()
        if (
            reclaim is not None
            and math.isfinite(reclaim)
            and reclaim > self._now
            and reclaim not in self._reclaim_timers
        ):
            self._reclaim_timers.add(reclaim)
            self._push(reclaim, "reclaim")
