"""The online service loop: arrive, admit, hold, batch, place, serve.

:class:`OnlineService` is the long-running counterpart of the batch
:class:`~repro.campaign.runner.CampaignRunner`.  Where the campaign
drains a queue that was full at t=0, the service runs a discrete-event
simulation on one deterministic clock:

- **arrivals** come from a :class:`~repro.service.traffic.TrafficModel`
  and pass :class:`~repro.service.admission.AdmissionController` —
  beyond ``max_pending`` in-system requests, new arrivals are shed
  with explicit rejection records (backpressure, not unbounded queues);
- admitted requests sit in a :class:`~repro.service.window.MovingWindow`
  until their signature group reaches ``min_batch`` or the oldest
  member has waited ``max_hold_s``;
- flushed batches are ordered by
  :meth:`~repro.service.admission.FairSharePolicy.batch_key` (weighted
  fair share across tenants, EDF within) and placed greedily onto the
  free nodes of an :class:`~repro.service.pool.ElasticNodePool`; a
  blocked batch triggers a grow request, and idle nodes drain back
  after ``idle_reclaim_s``;
- each placement is executed through
  :meth:`CampaignRunner.dispatch() <repro.campaign.runner.CampaignRunner.dispatch>`
  — same cmat cache, same health/quarantine charging, same telemetry
  span tree, same fault semantics as the batch path — and its
  completion is a future event at ``now + elapsed``;
- members lost to faults re-enter the window after the
  :class:`~repro.resilience.health.RetryPolicy` backoff, or land on
  the dead-letter list once the attempt cap is spent.

The control plane itself is now a fault domain (this is the durable
half of the robustness PR):

- with a :class:`~repro.service.journal.ServiceJournal` installed,
  every state transition is written to the WAL *as it happens* — a
  crash at any point leaves a journal whose replay
  (:func:`~repro.service.journal.recover_service` →
  :meth:`restore` → :meth:`resume`) resumes the simulated clock
  mid-horizon with exactly-once semantics: served results stay
  served, in-flight waves are requeued without charging their retry
  budget, and regenerated traffic minus the already-seen arrival ids
  fills in the rest of the horizon;
- a ``chaos`` :class:`~repro.resilience.faults.FaultPlan` arms
  control-plane faults on the sim clock: ``service_crash`` (downtime
  + in-flight loss, handled per the ``recovery`` mode),
  ``provision_fail`` (a grow request fails outright or stalls), and
  ``domain_loss`` (a whole fault domain of nodes rips out, taking the
  member shards placed on it; survivors shrink-and-recover because
  domain-aware placement spread them across racks).

Every quantity of interest lands in a :class:`ServiceReport`
(including the ``resilience`` counter block); every decision emits
counters/histograms through the shared
:class:`~repro.obs.Telemetry` bundle when one is installed.

The event heap orders ``(time, kind-rank, sequence)`` so same-instant
events resolve deterministically: capacity comes up and completions
release nodes before chaos strikes, chaos strikes before new arrivals
are admitted, and window flush timers run last.  Same seed, same
knobs — byte-identical report.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import ServiceError
from repro.campaign.cache import CmatCache
from repro.campaign.packer import CampaignPacker, PackedJob
from repro.campaign.report import AbandonedRecord, JobRecord
from repro.campaign.request import SimRequest
from repro.campaign.runner import CampaignRunner
from repro.resilience.faults import CONTROL_KINDS, FaultPlan, FaultSpec
from repro.resilience.health import NodeHealthTracker, RetryPolicy
from repro.resilience.ledger import RecoveryEvent, RecoveryLedger
from repro.service.admission import (
    UNATTRIBUTED,
    AdmissionController,
    FairSharePolicy,
    RejectionRecord,
)
from repro.service.pool import BUSY, OFFLINE, ElasticNodePool
from repro.service.report import (
    SERVICE_TTR_BUCKETS,
    ServedRecord,
    ServiceReport,
)
from repro.service.traffic import TrafficModel
from repro.service.window import MovingWindow, WindowPolicy

#: Same-instant event precedence: capacity first, then completions
#: (free nodes), then control-plane faults (chaos sees the post-
#: completion state), then new work, then retries, then timers.
_EVENT_RANK = {
    "ready": 0,
    "complete": 1,
    "chaos": 2,
    "arrival": 3,
    "release": 4,
    "flush": 5,
    "reclaim": 6,
}

#: Recovery modes for a control-plane crash (in-run ``service_crash``
#: chaos and :meth:`OnlineService.restore` alike): ``resume`` keeps
#: durable state and requeues in-flight work; ``cold`` is the naive
#: restart-from-empty baseline — everything in the system is
#: dead-lettered and the pool reboots at its floor.
RECOVERY_MODES = ("resume", "cold")


@dataclass
class _ReadyBatch:
    """A flushed signature group waiting for nodes."""

    seq: int
    flushed_at: float
    signature_key: str
    requests: List[SimRequest] = field(default_factory=list)


class OnlineService:
    """Serve arriving requests on an elastic pool under one sim clock.

    Parameters
    ----------
    machine:
        The machine whose nodes the pool manages.
    traffic:
        Arrival stream generator (seeded — reruns are byte-identical,
        and a recovered run regenerates the stream to re-derive the
        arrivals the crash never saw).
    window:
        Moving-window flush policy (default: ``WindowPolicy()``).
    max_pending:
        Admission bound on in-system (held + flushed-unplaced)
        requests; ``None`` never sheds.
    weights:
        Tenant fair-share weights (unlisted tenants weigh 1.0).
    default_slo_s:
        Deadline stamped on admitted requests that arrive without one
        (``None`` leaves them deadline-free).
    steps:
        Per-job step override; default is each job's
        ``steps_per_report`` cadence.
    pool:
        An :class:`ElasticNodePool` to use as-is; otherwise one is
        built from ``min_nodes`` / ``max_nodes`` /
        ``provision_delay_s`` / ``idle_reclaim_s``.
    prefer_larger_k:
        Packer sharing mode; ``False`` is the k=1 FIFO baseline.
    spread_domains:
        Interleave grow picks and placements across the machine's
        fault domains (no-op without declared domains); ``False`` is
        the naive pack-a-rack baseline.
    journal:
        Optional :class:`~repro.service.journal.ServiceJournal`; when
        installed every transition is WAL-logged (and a crash injected
        by the journal propagates as
        :class:`~repro.errors.JournalCrash`).
    chaos:
        Optional :class:`~repro.resilience.faults.FaultPlan` whose
        *control-plane* specs fire on the sim clock (data-plane specs
        in the plan are ignored here — route those through
        ``node_faults``).
    recovery:
        How an in-run ``service_crash`` is handled: ``"resume"``
        (durable control plane) or ``"cold"`` (restart-from-empty
        baseline).
    checker_factory:
        Zero-arg callable building a fresh protocol checker per
        dispatch, forwarded to the :class:`CampaignRunner` (chaos
        scenarios run every wave checker-verified).
    cache / use_cache / retry / health / node_faults /
    checkpoint_interval / policy / telemetry:
        Forwarded to the underlying :class:`CampaignRunner` — dispatch
        semantics are identical to the batch path.
    monitor:
        Optional :class:`~repro.obs.monitor.ServiceMonitor` — the live
        monitoring plane (windowed rollups, alert rules, incident
        diagnosis).  Requires ``telemetry``; purely observational, so
        dispositions and clocks are bit-identical with or without it.
    max_dispatches:
        Hard cap on total dispatches, a backstop against a retry
        configuration that never converges.
    """

    def __init__(
        self,
        machine,
        traffic: TrafficModel,
        *,
        window: Optional[WindowPolicy] = None,
        max_pending: Optional[int] = None,
        weights: Optional[Mapping[str, float]] = None,
        default_slo_s: Optional[float] = None,
        steps: Optional[int] = None,
        pool: Optional[ElasticNodePool] = None,
        min_nodes: int = 1,
        max_nodes: Optional[int] = None,
        provision_delay_s: float = 0.0,
        idle_reclaim_s: float = float("inf"),
        prefer_larger_k: bool = True,
        spread_domains: bool = True,
        journal=None,
        chaos: Optional[FaultPlan] = None,
        recovery: str = "resume",
        checker_factory=None,
        cache: Optional[CmatCache] = None,
        use_cache: bool = True,
        retry: Optional[RetryPolicy] = RetryPolicy(),
        health: Optional[NodeHealthTracker] = None,
        node_faults=None,
        checkpoint_interval: int = 1,
        policy=None,
        telemetry=None,
        monitor=None,
        max_dispatches: int = 100_000,
    ) -> None:
        self.machine = machine
        self.traffic = traffic
        self._window_policy = window
        self.window = MovingWindow(window)
        self.admission = AdmissionController(max_pending)
        self.fairness = FairSharePolicy(weights)
        self.default_slo_s = default_slo_s
        self.steps = steps
        self.telemetry = telemetry
        self.monitor = monitor
        if monitor is not None:
            if telemetry is None:
                raise ServiceError(
                    "monitor= requires telemetry= (rollups are windowed "
                    "deltas over its metrics registry)"
                )
            monitor.bind(telemetry)
        self.journal = journal
        self.chaos = chaos
        if recovery not in RECOVERY_MODES:
            raise ServiceError(
                f"recovery must be one of {RECOVERY_MODES}, got {recovery!r}"
            )
        self.recovery = recovery
        if max_dispatches < 1:
            raise ServiceError(
                f"max_dispatches must be >= 1, got {max_dispatches}"
            )
        self.max_dispatches = int(max_dispatches)
        shared_health = health if health is not None else NodeHealthTracker()
        self.health = shared_health
        self.pool = pool if pool is not None else ElasticNodePool(
            machine,
            min_nodes=min_nodes,
            max_nodes=max_nodes,
            provision_delay_s=provision_delay_s,
            idle_reclaim_s=idle_reclaim_s,
            health=shared_health,
            spread_domains=spread_domains,
        )
        if self.pool.machine is not machine:
            raise ServiceError(
                "the pool must manage the same machine the service runs on"
            )
        self.packer = CampaignPacker(
            machine,
            prefer_larger_k=prefer_larger_k,
            health=shared_health,
            spread_domains=spread_domains,
        )
        self.runner = CampaignRunner(
            machine,
            packer=self.packer,
            cache=cache,
            use_cache=use_cache,
            retry=retry,
            health=shared_health,
            node_faults=node_faults,
            checkpoint_interval=checkpoint_interval,
            policy=policy,
            telemetry=telemetry,
            checker_factory=checker_factory,
        )
        self.ledger = RecoveryLedger()
        # mutable run state (reset by run())
        self._heap: List[Tuple[float, int, int, str, object]] = []
        self._seq = 0
        self._now = 0.0
        self._ready: List[_ReadyBatch] = []
        self._running = 0
        self._job_seq = 0
        self._batch_seq = 0
        self._by_id: Dict[str, SimRequest] = {}
        self._served: List[ServedRecord] = []
        self._abandoned: List[AbandonedRecord] = []
        self._jobs: List[JobRecord] = []
        self._flush_timers: set = set()
        self._reclaim_timers: set = set()
        # in-flight wave manifests by job id; the heap's "complete"
        # payload is the job id, so chaos can reconcile a wave (cancel
        # it, kill members) before its completion fires
        self._inflight: Dict[str, Dict[str, object]] = {}
        # retry backoffs awaiting release: request_id -> (request, t)
        self._pending_release: Dict[str, Tuple[SimRequest, float]] = {}
        self._release_cancel: Set[str] = set()
        self._down_until = 0.0
        self._resil: Dict[str, float] = {}
        self._dead_by_cause: Dict[str, int] = {}
        self._consumed_chaos: Set[int] = set()
        self._provision_faults: List[Tuple[int, FaultSpec]] = []
        self._pending_restores: List[Tuple[float, Tuple[int, ...]]] = []
        self._health_mark = 0
        self._recovered: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _push(self, t: float, kind: str, payload: object = None) -> None:
        self._seq += 1
        heapq.heappush(
            self._heap, (float(t), _EVENT_RANK[kind], self._seq, kind, payload)
        )

    def _in_system(self) -> int:
        """Requests admitted but not yet dispatched (the admission
        bound's denominator): window holds plus flushed-unplaced."""
        return len(self.window) + sum(len(b.requests) for b in self._ready)

    # ------------------------------------------------------------------
    # read-only state for the monitoring plane (pure observations; the
    # monitor must never mutate service state)
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched, right now."""
        return self._in_system()

    @property
    def inflight_jobs(self) -> int:
        """Waves dispatched but not yet completed (or canceled)."""
        return sum(
            1 for man in self._inflight.values() if not man["canceled"]
        )

    def resilience_counters(self) -> Dict[str, float]:
        """A copy of the raw resilience tallies (monitor rollups read
        deltas of these; keys as in the report's resilience block)."""
        return {k: float(v) for k, v in self._resil.items()}

    def _log(self, kind: str, payload: Dict[str, object]) -> None:
        """WAL-append one event stamped at the current sim clock (a
        no-op without a journal; an injected crash propagates)."""
        if self.journal is not None:
            self.journal.append(kind, {"t": self._now, **payload})

    def _health_delta(self) -> List[Dict[str, object]]:
        """Incidents recorded since the last delta, as dicts."""
        incidents = self.health.incidents()
        fresh = incidents[self._health_mark:]
        self._health_mark = len(incidents)
        return [i.to_dict() for i in fresh]

    def _bump(self, key: str, amount: float = 1) -> None:
        self._resil[key] = self._resil.get(key, 0) + amount

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self, horizon_s: float) -> ServiceReport:
        """Generate ``horizon_s`` of traffic, serve it to empty, and
        return the service report."""
        requests = self.traffic.generate(horizon_s)
        tele = self.telemetry
        if tele is not None:
            tele.tracer.time_offset = 0.0
            tele.tracer.begin("service", "service", 0.0)
        if self.monitor is not None:
            self.monitor.begin(self, 0.0)
        self._log(
            "begin",
            {
                "horizon_s": float(horizon_s),
                "pool": self.pool.to_dict(),
                "health": self.health.to_dict(),
            },
        )
        for req in requests:
            self._push(req.arrival_s, "arrival", req)
        self._arm_chaos(0.0)
        self._loop()
        return self._finish(horizon_s)

    def _arm_chaos(self, t_floor: float) -> None:
        """Schedule the plan's control-plane specs (skipping consumed
        ones — recovery re-arms only what has not fired)."""
        if self.chaos is None:
            return
        self._provision_faults = []
        for i, spec in enumerate(self.chaos.specs):
            if spec.kind not in CONTROL_KINDS or i in self._consumed_chaos:
                continue
            if spec.kind == "provision_fail":
                self._provision_faults.append((i, spec))
            else:
                self._push(
                    max(spec.at_s, t_floor), "chaos", {"spec_index": i}
                )
        self._provision_faults.sort(key=lambda e: (e[1].at_s, e[0]))

    def _loop(self) -> None:
        while self._heap or self.window or self._ready:
            if not self._heap:
                # nothing scheduled but requests still held: only
                # possible with an infinite hold bound and a group
                # below min_batch — drain it at the current clock
                if self.window:
                    self._force_drain()
                    continue
                raise ServiceError(
                    "service stalled: batches are blocked and no event "
                    "is pending"
                )  # pragma: no cover - _maybe_grow raises first
            t, _, _, kind, payload = heapq.heappop(self._heap)
            self._now = max(self._now, t)
            if self.monitor is not None:
                # before handling: every metric still reflects events
                # strictly earlier than t, so windows ending <= t close
                # on exactly their own events
                self.monitor.advance(self, self._now)
            came_up = self.pool.on_ready(self._now)
            if came_up:
                self._log("pool", {"op": "ready", "nodes": came_up})
                if self.telemetry is not None:
                    self.telemetry.tracer.record(
                        "pool.ready", "marker", self._now, 0.0,
                        nodes=sorted(came_up),
                    )
            if kind == "arrival":
                self._on_arrival(payload)
            elif kind == "complete":
                self._on_complete(payload)
            elif kind == "release":
                self._on_release(payload)
            elif kind == "chaos":
                self._on_chaos(payload)
            elif kind == "flush":
                self._flush_timers.discard(t)
            elif kind == "reclaim":
                self._reclaim_timers.discard(t)
            # "ready" has no payload: on_ready above did the work
            if self._now < self._down_until:
                continue  # control plane is down: no scheduling
            self._schedule()

    def _finish(self, horizon_s: float) -> ServiceReport:
        # close the WAL at the final clock so a replay's pool integral
        # covers the idle tail after the last state transition
        self._log("end", {})
        self.pool.finish(self._now)
        monitoring = (
            self.monitor.finish(self, self._now)
            if self.monitor is not None
            else {}
        )
        tele = self.telemetry
        if tele is not None:
            tele.tracer.time_offset = 0.0
            tele.tracer.end(self._now)
            tele.metrics.gauge("service_pool_peak_nodes").max(
                max((s.provisioned for s in self.pool.timeline), default=0)
            )
            if self.runner.cache is not None:
                for key, val in self.runner.cache.stats().items():
                    tele.metrics.gauge(f"service_cache_{key}").set(val)
        return ServiceReport(
            machine_name=self.machine.name,
            machine_n_nodes=self.machine.n_nodes,
            horizon_s=float(horizon_s),
            duration_s=self._now,
            offered=self.admission.offered,
            served=self._served,
            rejections=list(self.admission.rejections),
            abandoned=self._abandoned,
            jobs=self._jobs,
            cache=(
                self.runner.cache.stats()
                if self.runner.cache is not None
                else {}
            ),
            pool_node_seconds=self.pool.node_seconds,
            pool_timeline=self.pool.timeline_dicts(),
            tenant_node_seconds=self.fairness.served(),
            resilience=self._resilience_summary(),
            monitoring=monitoring,
        )

    def _resilience_summary(self) -> Dict[str, object]:
        """The report's resilience block (empty on a fault-free run)."""
        if not (self._resil or self._dead_by_cause or self.ledger.events):
            return {}
        return {
            "retries": int(self._resil.get("retries", 0)),
            "dead_letters": int(self._resil.get("dead_letters", 0)),
            "dead_letters_by_cause": {
                k: int(v) for k, v in sorted(self._dead_by_cause.items())
            },
            "recovery_seconds": float(
                self._resil.get("recovery_seconds", 0.0)
            ),
            "crashes": int(self._resil.get("crashes", 0)),
            "provision_failures": int(
                self._resil.get("provision_failures", 0)
            ),
            "provision_stall_seconds": float(
                self._resil.get("provision_stall_seconds", 0.0)
            ),
            "domain_losses": int(self._resil.get("domain_losses", 0)),
            "downtime_shed": int(self._resil.get("downtime_shed", 0)),
            "wal_recoveries": int(self._resil.get("wal_recoveries", 0)),
            "data_plane_recoveries": int(
                sum(j.n_recoveries for j in self._jobs)
            ),
            "control_ledger": dict(self.ledger.totals()),
        }

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, req: SimRequest) -> None:
        tenant = req.tenant or UNATTRIBUTED
        tele = self.telemetry
        if tele is not None:
            tele.metrics.counter(
                "service_arrivals_total", tenant=tenant
            ).inc()
        if self._now < self._down_until:
            # the control plane is down: the front door is closed and
            # the arrival is shed by the (conceptual) load balancer —
            # recorded explicitly so request conservation still holds
            self.admission.offered += 1
            rejection = RejectionRecord(
                request_id=req.request_id,
                tenant=tenant,
                arrival_s=req.arrival_s,
                pending=self._in_system(),
                reason=(
                    f"service down until t={self._down_until:.3f} "
                    "(control-plane crash)"
                ),
            )
            self.admission.rejections.append(rejection)
            self._bump("downtime_shed")
            if tele is not None:
                tele.metrics.counter(
                    "service_shed_total", tenant=tenant
                ).inc()
            self._log(
                "arrival",
                {
                    "request": req.to_dict(),
                    "outcome": "shed",
                    "rejection": rejection.to_dict(),
                    "resil": {"downtime_shed": 1},
                },
            )
            return
        rejection = self.admission.try_admit(req, self._in_system())
        if rejection is not None:
            if tele is not None:
                tele.metrics.counter(
                    "service_shed_total", tenant=tenant
                ).inc()
            self._log(
                "arrival",
                {
                    "request": req.to_dict(),
                    "outcome": "shed",
                    "rejection": rejection.to_dict(),
                },
            )
            return
        if req.deadline_s is None and self.default_slo_s is not None:
            req = dataclasses.replace(
                req, deadline_s=req.arrival_s + self.default_slo_s
            )
        self._by_id[req.request_id] = req
        self.window.add(req, self._now)
        self._log(
            "arrival", {"request": req.to_dict(), "outcome": "admit"}
        )

    def _on_release(self, req: SimRequest) -> None:
        """A retry's backoff elapsed: back into the window (admission
        was already paid on first arrival)."""
        if req.request_id in self._release_cancel:
            # the request was dead-lettered by a cold crash while its
            # backoff was pending — the timer fires into the void
            self._release_cancel.discard(req.request_id)
            return
        self._pending_release.pop(req.request_id, None)
        self._by_id[req.request_id] = req
        self.window.add(req, self._now)
        self._log("release", {"request": req.to_dict()})

    def _requeue(
        self, req: SimRequest, release_t: float
    ) -> Dict[str, object]:
        """Schedule ``req`` to re-enter the window at ``release_t`` and
        return the journal entry describing it."""
        self._pending_release[req.request_id] = (req, release_t)
        self._push(release_t, "release", req)
        return {"request": req.to_dict(), "release_t": release_t}

    def _handle_lost(
        self, req: SimRequest, job_id: str, cause: str
    ) -> Tuple[str, Dict[str, object]]:
        """Retry-or-dead-letter one fault-lost member.  Returns
        ``("requeue", entry)`` or ``("dead", entry)`` with the journal
        entry for the outcome."""
        tele = self.telemetry
        retry = self.runner.retry
        attempts_done = req.attempt + 1
        if retry is not None and not retry.allows(attempts_done + 1):
            if tele is not None:
                tele.metrics.counter("service_dead_letters_total").inc()
            self._by_id.pop(req.request_id, None)
            record = AbandonedRecord(
                request_id=req.request_id,
                attempts=attempts_done,
                last_job_id=job_id,
                reason=(
                    f"lost to faults on all {attempts_done} "
                    "dispatch(es); retry policy "
                    f"max_attempts={retry.max_attempts}"
                ),
            )
            self._abandoned.append(record)
            self._bump("dead_letters")
            self._dead_by_cause[cause] = (
                self._dead_by_cause.get(cause, 0) + 1
            )
            return ("dead", {"record": record.to_dict(), "cause": cause})
        backoff = (
            retry.backoff_s(attempts_done, key=req.request_id)
            if retry is not None
            else 0.0
        )
        if tele is not None:
            tele.metrics.counter("service_retries_total").inc()
        self._bump("retries")
        return (
            "requeue",
            self._requeue(req.requeued(), self._now + backoff),
        )

    def _on_complete(self, job_id: str) -> None:
        man = self._inflight.pop(job_id, None)
        if man is None or man["canceled"]:
            return  # the wave was reconciled away by a crash
        self._running -= 1
        job: PackedJob = man["job"]  # type: ignore[assignment]
        live = [n for n in job.nodes if n not in man["dead_nodes"]]  # type: ignore[operator]
        self.pool.release(live, self._now)
        tele = self.telemetry
        served_entries: List[Dict[str, object]] = []
        for rec in man["completed"]:  # type: ignore[union-attr]
            req = self._by_id.pop(rec.request_id)
            served = ServedRecord(
                request_id=rec.request_id,
                tenant=req.tenant or UNATTRIBUTED,
                arrival_s=req.arrival_s,
                start_s=rec.start_s,
                finish_s=rec.finish_s,
                deadline_s=req.deadline_s,
                steps=rec.steps,
                attempts=rec.attempts,
                job_id=rec.job_id,
            )
            self._served.append(served)
            served_entries.append(served.to_dict())
            if tele is not None:
                tele.metrics.counter(
                    "service_completions_total", tenant=served.tenant
                ).inc()
                tele.metrics.histogram(
                    "service_ttr_seconds", buckets=SERVICE_TTR_BUCKETS
                ).observe(served.ttr_s)
                tele.metrics.histogram("service_wait_seconds").observe(
                    served.wait_s
                )
                if not served.slo_met:
                    tele.metrics.counter(
                        "service_slo_miss_total", tenant=served.tenant
                    ).inc()
        requeued: List[Dict[str, object]] = []
        dead: List[Dict[str, object]] = []
        retries_before = self._resil.get("retries", 0)
        deads_before = self._resil.get("dead_letters", 0)
        cause_before = dict(self._dead_by_cause)
        for req, cause in man["lost"]:  # type: ignore[union-attr]
            outcome, entry = self._handle_lost(req, job_id, cause)
            (requeued if outcome == "requeue" else dead).append(entry)
        resil: Dict[str, object] = {}
        if self._resil.get("retries", 0) > retries_before:
            resil["retries"] = self._resil["retries"] - retries_before
        if self._resil.get("dead_letters", 0) > deads_before:
            resil["dead_letters"] = (
                self._resil["dead_letters"] - deads_before
            )
            resil["by_cause"] = {
                k: v - cause_before.get(k, 0)
                for k, v in self._dead_by_cause.items()
                if v > cause_before.get(k, 0)
            }
        self._log(
            "complete",
            {
                "job_id": job_id,
                "served": served_entries,
                "requeued": requeued,
                "dead_letter": dead,
                "released_nodes": sorted(live),
                "resil": resil,
            },
        )

    # ------------------------------------------------------------------
    # control-plane chaos
    # ------------------------------------------------------------------
    def _on_chaos(self, payload: Dict[str, object]) -> None:
        if "restore" in payload:
            self._restore_domain(tuple(payload["restore"]))  # type: ignore[arg-type]
            return
        index = int(payload["spec_index"])  # type: ignore[arg-type]
        if index in self._consumed_chaos:
            return  # already fired before a crash; replay consumed it
        spec = self.chaos.specs[index]
        self._consumed_chaos.add(index)
        if spec.kind == "service_crash":
            self._on_service_crash(index, spec)
        elif spec.kind == "domain_loss":
            self._on_domain_loss(index, spec)

    def _cancel_wave(
        self, job_id: str, man: Dict[str, object]
    ) -> List[int]:
        """Cancel one in-flight wave and release its surviving nodes;
        returns the released node ids."""
        man["canceled"] = True
        self._running -= 1
        job: PackedJob = man["job"]  # type: ignore[assignment]
        live = [n for n in job.nodes if n not in man["dead_nodes"]]  # type: ignore[operator]
        self.pool.release(live, self._now)
        return live

    def _on_service_crash(self, index: int, spec: FaultSpec) -> None:
        """The control plane dies for ``spec.duration_s``: in-flight
        waves are lost (the completion event fires into the void) and
        arrivals shed until the service is back.  What happens to the
        lost work depends on the ``recovery`` mode."""
        down_until = self._now + spec.duration_s
        self._down_until = max(self._down_until, down_until)
        self._bump("crashes")
        self._bump("recovery_seconds", spec.duration_s)
        if self.telemetry is not None:
            self.telemetry.metrics.counter("service_crashes_total").inc()
            self.telemetry.tracer.record(
                "service.crash", "marker", self._now, 0.0,
                down_until=self._down_until,
            )
        inflight = [
            (job_id, man)
            for job_id, man in sorted(self._inflight.items())
            if not man["canceled"]
        ]
        members_before = sum(len(m["job"].requests) for _, m in inflight)  # type: ignore[union-attr]
        lost_work = sum(
            self._now - float(m["start_s"]) for _, m in inflight  # type: ignore[arg-type]
        )
        directives: Dict[str, object] = {
            "spec_index": index,
            "down_until": self._down_until,
            "resil": {"crashes": 1, "recovery_seconds": spec.duration_s},
        }
        if self.recovery == "resume":
            self._crash_resume(inflight, directives)
        else:
            self._crash_cold(spec, directives)
        self.ledger.record(
            RecoveryEvent(
                step=0,
                rolled_back_steps=0,
                detected_at_s=self._now,
                detection_s=spec.duration_s,
                lost_work_s=lost_work,
                reassembly_s=0.0,
                rebuilt_blocks=0,
                failed_ranks=(),
                failed_nodes=(),
                lost_members=(),
                n_members_before=members_before,
                n_members_after=0,
            )
        )
        self._push(self._down_until, "ready")
        self._log("chaos", directives)

    def _crash_resume(self, inflight, directives: Dict[str, object]) -> None:
        """Durable-mode crash: in-flight waves cancel, their members
        requeue at the recovery time *without* an attempt bump (the
        crash was not their fault), and everything queued survives."""
        canceled: List[str] = []
        released: List[int] = []
        requeued: List[Dict[str, object]] = []
        for job_id, man in inflight:
            released.extend(self._cancel_wave(job_id, man))
            canceled.append(job_id)
            for req in man["job"].requests:  # type: ignore[union-attr]
                requeued.append(self._requeue(req, self._down_until))
            del self._inflight[job_id]
        directives.update(
            {
                "cancel_jobs": canceled,
                "drop_jobs": canceled,
                "released_nodes": sorted(released),
                "requeued": requeued,
            }
        )

    def _crash_cold(
        self, spec: FaultSpec, directives: Dict[str, object]
    ) -> None:
        """Naive-restart crash: every request in the system (held,
        flushed, in flight, backing off) is dead-lettered, all online
        capacity is lost, and the pool regrows from its floor after
        the outage."""
        dead: List[Dict[str, object]] = []

        def _abandon(req: SimRequest, attempts: int, job_id: str) -> None:
            record = AbandonedRecord(
                request_id=req.request_id,
                attempts=attempts,
                last_job_id=job_id,
                reason="lost in control-plane crash (cold restart)",
            )
            self._abandoned.append(record)
            self._bump("dead_letters")
            self._dead_by_cause["service_crash"] = (
                self._dead_by_cause.get("service_crash", 0) + 1
            )
            dead.append(
                {"record": record.to_dict(), "cause": "service_crash"}
            )

        canceled: List[str] = []
        for job_id, man in sorted(self._inflight.items()):
            if not man["canceled"]:
                man["canceled"] = True
                self._running -= 1
                canceled.append(job_id)
                for req in man["job"].requests:  # type: ignore[union-attr]
                    _abandon(req, req.attempt + 1, job_id)
        self._inflight.clear()
        for req in self.window.pending():
            _abandon(req, req.attempt, "")
        for rb in self._ready:
            for req in rb.requests:
                _abandon(req, req.attempt, "")
        dropped_releases = sorted(self._pending_release)
        for rid, (req, _) in sorted(self._pending_release.items()):
            self._release_cancel.add(rid)
            _abandon(req, req.attempt, "")
        self._pending_release.clear()
        self.window = MovingWindow(self._window_policy)
        self._ready = []
        self._by_id.clear()
        doomed = [
            n
            for n in range(self.machine.n_nodes)
            if self.pool.state_of(n) != OFFLINE
        ]
        self.pool.fail_nodes(doomed, self._now)
        grow: Optional[Dict[str, object]] = None
        ready_at = self.pool.request_grow(
            self.pool.min_nodes, self._now, extra_delay_s=spec.duration_s
        )
        if ready_at is not None:
            grow = {
                "nodes": sorted(self.pool.last_grown),
                "ready_at": ready_at,
            }
            self._push(ready_at, "ready")
        directives.update(
            {
                "cancel_jobs": canceled,
                "drop_jobs": canceled,
                "dead_letter": dead,
                "drop_pending_release": dropped_releases,
                "clear_window": True,
                "failed_nodes": sorted(doomed),
                "pool_grow": grow,
            }
        )
        resil = directives["resil"]
        resil["dead_letters"] = len(dead)  # type: ignore[index]
        resil["by_cause"] = {"service_crash": len(dead)}  # type: ignore[index]

    def _on_domain_loss(self, index: int, spec: FaultSpec) -> None:
        """A whole fault domain (or single node, without declared
        domains) rips out: its nodes hard-fail, member shards placed
        on them are lost, survivors shrink-and-recover."""
        domains = self.machine.fault_domains
        if domains is not None:
            nodes = [
                n
                for n in domains.nodes_in(spec.node, self.machine.n_nodes)
            ]
        else:
            nodes = (
                [spec.node] if spec.node < self.machine.n_nodes else []
            )
        self._bump("domain_losses")
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "service_domain_losses_total"
            ).inc()
            self.telemetry.tracer.record(
                "service.domain_loss", "marker", self._now, 0.0,
                domain=int(spec.node), nodes=sorted(nodes),
            )
        self.pool.fail_nodes(nodes, self._now)
        for node in nodes:
            self.health.record(
                node,
                "crash",
                at_s=self._now,
                detail=f"fault domain {spec.node} lost",
            )
            self.health.quarantine(node)
        failed = set(nodes)
        directives: Dict[str, object] = {
            "spec_index": index,
            "failed_nodes": sorted(failed),
            "quarantine": sorted(failed),
            "resil": {"domain_losses": 1},
        }
        canceled: List[str] = []
        dropped: List[str] = []
        released: List[int] = []
        requeued: List[Dict[str, object]] = []
        dead: List[Dict[str, object]] = []
        manifest_lost: Dict[str, List[str]] = {}
        update_jobs: Dict[str, Dict[str, object]] = {}
        all_lost_members = []
        retries_before = self._resil.get("retries", 0)
        deads_before = self._resil.get("dead_letters", 0)
        for job_id, man in sorted(self._inflight.items()):
            if man["canceled"]:
                continue
            job: PackedJob = man["job"]  # type: ignore[assignment]
            hit = failed & set(job.nodes)
            if not hit:
                continue
            man["dead_nodes"].update(hit)  # type: ignore[union-attr]
            lost_ids = []
            for m, req in enumerate(job.requests):
                if self._member_nodes(job, m) & failed:
                    lost_ids.append(req.request_id)
            if not lost_ids:
                continue  # rack died under ranks of no whole member
            lost_set = set(lost_ids)
            survivors = [
                rec
                for rec in man["completed"]  # type: ignore[union-attr]
                if rec.request_id not in lost_set
            ]
            newly_lost = [
                req
                for req in job.requests
                if req.request_id in lost_set
                and not any(
                    r.request_id == req.request_id
                    for r, _ in man["lost"]  # type: ignore[union-attr]
                )
            ]
            man["completed"] = survivors
            man["lost"] = list(man["lost"]) + [  # type: ignore[arg-type]
                (req, "domain_loss") for req in newly_lost
            ]
            manifest_lost[job_id] = sorted(lost_set)
            all_lost_members.extend(lost_ids)
            record: JobRecord = man["record"]  # type: ignore[assignment]
            new_record = dataclasses.replace(
                record,
                lost_request_ids=tuple(
                    sorted(set(record.lost_request_ids) | lost_set)
                ),
            )
            man["record"] = new_record
            for i, existing in enumerate(self._jobs):
                if existing.job_id == job_id:
                    self._jobs[i] = new_record
                    break
            update_jobs[job_id] = new_record.to_dict()
            if not survivors:
                # every member lost: the wave dies here, not at its
                # completion event — reconcile its losses immediately
                released.extend(self._cancel_wave(job_id, man))
                canceled.append(job_id)
                dropped.append(job_id)
                del self._inflight[job_id]
                for req, cause in man["lost"]:  # type: ignore[union-attr]
                    outcome, entry = self._handle_lost(
                        req, job_id, cause
                    )
                    (requeued if outcome == "requeue" else dead).append(
                        entry
                    )
        resil = directives["resil"]
        if self._resil.get("retries", 0) > retries_before:
            resil["retries"] = (  # type: ignore[index]
                self._resil["retries"] - retries_before
            )
        if self._resil.get("dead_letters", 0) > deads_before:
            resil["dead_letters"] = (  # type: ignore[index]
                self._resil["dead_letters"] - deads_before
            )
            resil["by_cause"] = {  # type: ignore[index]
                "domain_loss": self._resil["dead_letters"] - deads_before
            }
        directives.update(
            {
                "cancel_jobs": canceled,
                "drop_jobs": dropped,
                "released_nodes": sorted(released),
                "requeued": requeued,
                "dead_letter": dead,
                "manifest_lost": manifest_lost,
                "update_jobs": update_jobs,
                "incidents": self._health_delta(),
            }
        )
        self.ledger.record(
            RecoveryEvent(
                step=0,
                rolled_back_steps=0,
                detected_at_s=self._now,
                detection_s=0.0,
                lost_work_s=sum(
                    self._now - float(self._inflight[j]["start_s"])  # type: ignore[arg-type]
                    for j in manifest_lost
                    if j in self._inflight
                ),
                reassembly_s=0.0,
                rebuilt_blocks=0,
                failed_ranks=(),
                failed_nodes=tuple(sorted(failed)),
                lost_members=(),
                n_members_before=len(all_lost_members)
                + sum(
                    len(m["completed"])  # type: ignore[arg-type]
                    for m in self._inflight.values()
                ),
                n_members_after=sum(
                    len(m["completed"])  # type: ignore[arg-type]
                    for m in self._inflight.values()
                ),
            )
        )
        if spec.duration_s > 0:
            restore_t = self._now + spec.duration_s
            self._pending_restores.append((restore_t, tuple(sorted(failed))))
            self._push(
                restore_t, "chaos", {"restore": sorted(failed)}
            )
            directives["restore_at"] = restore_t
        self._log("chaos", directives)

    def _member_nodes(self, job: PackedJob, member: int) -> set:
        """Physical node ids member ``member``'s ranks occupy."""
        rpm = job.shape.ranks_per_member
        rpn = self.machine.ranks_per_node
        return {
            job.nodes[r // rpn]
            for r in range(member * rpm, (member + 1) * rpm)
        }

    def _restore_domain(self, nodes: Tuple[int, ...]) -> None:
        """A lost domain's hardware comes back: clear its health
        ledger so the pool can provision those nodes again."""
        for node in nodes:
            self.health.reset(node)
        self._health_mark = len(self.health.incidents())
        self._pending_restores = [
            (t, ns)
            for t, ns in self._pending_restores
            if set(ns) != set(nodes)
        ]
        self._log("chaos", {"reset": sorted(nodes)})

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _force_drain(self) -> None:
        """Flush every held group regardless of size/age (end of
        traffic with an infinite hold bound)."""
        for batch in self.window.flush(self._now, force=True):
            self._admit_batch(batch)
        self._schedule()

    def _admit_batch(self, batch) -> None:
        self._batch_seq += 1
        rb = _ReadyBatch(
            seq=self._batch_seq,
            flushed_at=self._now,
            signature_key=batch.signature_key,
            requests=list(batch.requests),
        )
        self._ready.append(rb)
        self._log(
            "flush",
            {
                "seq": rb.seq,
                "signature_key": rb.signature_key,
                "request_ids": [r.request_id for r in rb.requests],
            },
        )

    def _schedule(self) -> None:
        """Flush ready groups, place them fair-share order, grow the
        pool for whatever stays blocked, and (re)arm timers."""
        for batch in self.window.flush(self._now):
            self._admit_batch(batch)
        progress = True
        while progress and self._ready:
            progress = False
            self._ready.sort(
                key=lambda b: self.fairness.batch_key(b.requests, b.seq)
            )
            for rb in self._ready:
                if self._try_place(rb):
                    # placement charged fair-share service: re-sort
                    # before picking the next batch
                    progress = True
                    break
        if self._ready:
            self._maybe_grow()
        else:
            # no blocked work wants the idle capacity: drain whatever
            # is overdue (reclaim deferred while batches were blocked)
            due = self.pool.next_reclaim()
            if due is not None and due <= self._now:
                reclaimed = self.pool.reclaim_idle(self._now)
                if reclaimed:
                    self._log(
                        "pool",
                        {"op": "reclaim", "nodes": sorted(reclaimed)},
                    )
        self._arm_timers()

    def _try_place(self, rb: _ReadyBatch) -> bool:
        """Dispatch the largest feasible prefix of ``rb`` onto free
        nodes; returns True when anything was placed."""
        free = self.pool.free_nodes(self._now)
        if not free:
            return False
        top_k = len(rb.requests) if self.packer.prefer_larger_k else 1
        shape = None
        for k in range(top_k, 0, -1):
            shape = self.packer.shape_for(
                rb.requests[0].input, k, max_nodes=len(free)
            )
            if shape is not None:
                break
        if shape is None:
            return False
        if self._job_seq >= self.max_dispatches:
            raise ServiceError(
                f"service exceeded max_dispatches={self.max_dispatches} "
                "(retry storm or misconfigured window?)"
            )
        members = rb.requests[: shape.k]
        nodes = self.packer.select_nodes(free, shape.n_nodes)
        self.pool.allocate(nodes, self._now)
        job = PackedJob(
            job_id=f"svc{self._job_seq:05d}",
            wave=self._job_seq,
            requests=tuple(members),
            signature_key=rb.signature_key,
            shape=shape,
            nodes=nodes,
        )
        self._job_seq += 1
        record, completed, lost = self.runner.dispatch(
            job, start_s=self._now, steps=self.steps
        )
        self._jobs.append(record)
        self._running += 1
        self.fairness.charge(members, shape.n_nodes * record.elapsed_s)
        if self.telemetry is not None:
            self.telemetry.metrics.counter("service_dispatch_total").inc()
            self.telemetry.metrics.gauge("service_pool_busy_nodes").max(
                float(self.pool.busy)
            )
        self._inflight[job.job_id] = {
            "job": job,
            "record": record,
            "completed": list(completed),
            "lost": [(req, "data_faults") for req in lost],
            "canceled": False,
            "dead_nodes": set(),
            "start_s": self._now,
        }
        self._push(self._now + record.elapsed_s, "complete", job.job_id)
        self._log(
            "dispatch",
            {
                "job_id": job.job_id,
                "wave": job.wave,
                "signature_key": rb.signature_key,
                "nodes": sorted(nodes),
                "elapsed_s": record.elapsed_s,
                "ready_seq": rb.seq,
                "request_ids": [r.request_id for r in members],
                "record": record.to_dict(),
                "incidents": self._health_delta(),
                "tenant_served": self.fairness.served(),
            },
        )
        del rb.requests[: shape.k]
        if not rb.requests:
            self._ready.remove(rb)
        return True

    def _next_provision_fault(self) -> Optional[Tuple[int, FaultSpec]]:
        """The earliest armed ``provision_fail`` whose trigger time has
        passed, or ``None``."""
        for index, spec in self._provision_faults:
            if index in self._consumed_chaos:
                continue
            if spec.at_s <= self._now:
                return (index, spec)
        return None

    def _maybe_grow(self) -> None:
        """Ask the pool for the most underserved blocked batch's
        deficit, or prove the service is stuck and raise."""
        rb = min(
            self._ready,
            key=lambda b: self.fairness.batch_key(b.requests, b.seq),
        )
        top_k = len(rb.requests) if self.packer.prefer_larger_k else 1
        target = None
        for k in range(top_k, 0, -1):
            target = self.packer.shape_for(
                rb.requests[0].input, k, max_nodes=self.pool.max_nodes
            )
            if target is not None:
                break
        if target is None:
            raise ServiceError(
                f"request {rb.requests[0].request_id!r} cannot fit on "
                f"{self.pool.max_nodes} node(s) of {self.machine.name} "
                "at any ensemble size — it would block the service forever"
            )
        free = len(self.pool.free_nodes(self._now))
        provisioning = self.pool.committed - self.pool.provisioned
        deficit = target.n_nodes - free - provisioning
        if deficit > 0:
            fault = self._next_provision_fault()
            if fault is not None:
                index, spec = fault
                self._consumed_chaos.add(index)
                if spec.duration_s <= 0:
                    # the provider refuses outright: charge the
                    # failure and retry the grow a beat later
                    self._bump("provision_failures")
                    if self.telemetry is not None:
                        self.telemetry.metrics.counter(
                            "service_provision_failures_total"
                        ).inc()
                        self.telemetry.tracer.record(
                            "pool.provision_fail", "marker",
                            self._now, 0.0, deficit=int(deficit),
                        )
                    self._log(
                        "pool",
                        {
                            "op": "grow_failed",
                            "nodes": [],
                            "spec_index": index,
                            "resil": {"provision_failures": 1},
                        },
                    )
                    self._push(
                        self._now
                        + max(self.pool.provision_delay_s, 1.0),
                        "ready",
                    )
                    return
                # the grow goes through, late
                self._bump("provision_stall_seconds", spec.duration_s)
                if self.telemetry is not None:
                    self.telemetry.tracer.record(
                        "pool.provision_stall", "marker", self._now, 0.0,
                        stall_s=float(spec.duration_s),
                    )
                ready_at = self.pool.request_grow(
                    deficit, self._now, extra_delay_s=spec.duration_s
                )
                if ready_at is not None:
                    self._log(
                        "pool",
                        {
                            "op": "grow",
                            "nodes": sorted(self.pool.last_grown),
                            "ready_at": ready_at,
                            "stall_s": spec.duration_s,
                            "spec_index": index,
                            "resil": {
                                "provision_stall_seconds": spec.duration_s
                            },
                        },
                    )
                    self._push(ready_at, "ready")
                    return
            else:
                ready_at = self.pool.request_grow(deficit, self._now)
                if ready_at is not None:
                    self._log(
                        "pool",
                        {
                            "op": "grow",
                            "nodes": sorted(self.pool.last_grown),
                            "ready_at": ready_at,
                        },
                    )
                    self._push(ready_at, "ready")
                    return
        if self._running == 0 and provisioning == 0 and deficit > 0:
            if self._pending_restores or self._now < self._down_until:
                # capacity is coming back (a lost domain heals, or the
                # outage ends) — a chaos/ready event is already armed
                return
            raise ServiceError(
                f"service deadlocked: batch of {len(rb.requests)} "
                f"(signature {rb.signature_key}) needs {target.n_nodes} "
                f"node(s), only {free} allocatable, and the pool is at "
                f"its ceiling ({self.pool.max_nodes}) with nothing "
                "running — quarantined nodes?"
            )

    def _arm_timers(self) -> None:
        expiry = self.window.next_expiry()
        if (
            expiry is not None
            and math.isfinite(expiry)
            and expiry > self._now
            and expiry not in self._flush_timers
        ):
            self._flush_timers.add(expiry)
            self._push(expiry, "flush")
        reclaim = self.pool.next_reclaim()
        if (
            reclaim is not None
            and math.isfinite(reclaim)
            and reclaim > self._now
            and reclaim not in self._reclaim_timers
        ):
            self._reclaim_timers.add(reclaim)
            self._push(reclaim, "reclaim")

    # ------------------------------------------------------------------
    # crash recovery (journal replay)
    # ------------------------------------------------------------------
    def restore(
        self,
        state,
        *,
        mode: str = "resume",
        resume_delay_s: float = 0.0,
    ) -> None:
        """Load a :class:`~repro.service.journal.ReplayState` into this
        freshly-constructed service, reconciling whatever the crash
        interrupted.  Follow with :meth:`resume`.

        ``mode`` is ``"resume"`` (exactly-once: keep durable results,
        requeue in-flight) or ``"cold"`` (restart-from-empty baseline);
        ``resume_delay_s`` models detection + restart downtime.
        """
        if mode not in RECOVERY_MODES:
            raise ServiceError(
                f"mode must be one of {RECOVERY_MODES}, got {mode!r}"
            )
        if resume_delay_s < 0:
            raise ServiceError(
                f"resume_delay_s must be >= 0, got {resume_delay_s}"
            )
        if self._now != 0.0 or self._served or self._jobs:
            raise ServiceError(
                "restore() needs a freshly constructed service"
            )
        t_rec = float(state.t) + float(resume_delay_s)
        self._now = t_rec
        # --- bookkeeping that survives any crash mode
        self.admission.offered = int(state.offered)
        self.admission.admitted = int(state.admitted)
        self.admission.rejections = [
            RejectionRecord.from_dict(d) for d in state.rejections
        ]
        self._served = [ServedRecord.from_dict(d) for d in state.served]
        self._abandoned = [
            AbandonedRecord.from_dict(d) for d in state.abandoned
        ]
        self._jobs = [JobRecord.from_dict(d) for d in state.jobs]
        self.fairness.restore_served(state.tenant_served)
        self._job_seq = int(state.job_seq)
        self._batch_seq = int(state.batch_seq)
        self._resil = dict(state.resil)
        self._dead_by_cause = dict(state.dead_by_cause)
        self._consumed_chaos = set(state.consumed_chaos)
        self._down_until = float(state.down_until)
        if state.pool is not None:
            self.pool.restore(state.pool)
        self.health.restore(state.health)
        self._health_mark = len(self.health.incidents())
        self._bump("wal_recoveries")
        self._bump("recovery_seconds", resume_delay_s)
        directives: Dict[str, object] = {
            "mode": mode,
            "resil": {
                "wal_recoveries": 1,
                "recovery_seconds": resume_delay_s,
            },
        }
        if mode == "resume":
            self._restore_resume(state, t_rec, directives)
        else:
            self._restore_cold(state, t_rec, directives)
        # pending provisioning completions become wake-ups again
        for rt in self.pool.ready_times():
            self._push(max(rt, t_rec), "ready")
        # domain restores that had not fired yet
        for entry in state.pending_restores:
            restore_t = max(float(entry["t"]), t_rec)
            nodes = tuple(int(n) for n in entry["nodes"])
            self._pending_restores.append((restore_t, nodes))
            self._push(restore_t, "chaos", {"restore": sorted(nodes)})
        self._arm_chaos(t_rec)
        if self._down_until > t_rec:
            self._push(self._down_until, "ready")
        if self.journal is not None:
            self.journal.seed(state)
            self._log("recover", directives)
        self._recovered = {
            "arrived_ids": set(state.arrived_ids),
            "t_rec": t_rec,
            "horizon_s": float(state.horizon_s),
        }

    def _restore_resume(
        self, state, t_rec: float, directives: Dict[str, object]
    ) -> None:
        """Exactly-once reconciliation: queued work survives, in-flight
        waves requeue without an attempt bump, retry backoffs keep
        their release times."""
        for entry in state.window:
            req = SimRequest.from_dict(entry["request"])
            self._by_id[req.request_id] = req
            self.window.add(req, float(entry["since"]))
        for b in state.ready:
            reqs = [SimRequest.from_dict(d) for d in b["requests"]]
            for r in reqs:
                self._by_id[r.request_id] = r
            self._ready.append(
                _ReadyBatch(
                    seq=int(b["seq"]),
                    flushed_at=float(b["flushed_at"]),
                    signature_key=str(b["signature_key"]),
                    requests=reqs,
                )
            )
        released: List[int] = []
        requeued: List[Dict[str, object]] = []
        dropped: List[str] = []
        for job_id, man in sorted(state.inflight.items()):
            dropped.append(job_id)
            if not man["canceled"]:
                live = [
                    n
                    for n in man["nodes"]
                    if self.pool.state_of(int(n)) == BUSY
                ]
                self.pool.release(live, t_rec)
                released.extend(live)
                # the wave's results were never durable — every member
                # goes back in the window, attempt budget untouched
                for d in man["requests"]:
                    req = SimRequest.from_dict(d)
                    requeued.append(self._requeue(req, t_rec))
        for entry in state.pending_release:
            req = SimRequest.from_dict(entry["request"])
            release_t = max(float(entry["release_t"]), t_rec)
            self._pending_release[req.request_id] = (req, release_t)
            self._push(release_t, "release", req)
        directives.update(
            {
                "drop_jobs": dropped,
                "released_nodes": sorted(released),
                "requeued": requeued,
            }
        )

    def _restore_cold(
        self, state, t_rec: float, directives: Dict[str, object]
    ) -> None:
        """Restart-from-empty reconciliation: nothing in the system
        survives; the pool reboots at its floor."""
        dead: List[Dict[str, object]] = []

        def _abandon(req: SimRequest, attempts: int, job_id: str) -> None:
            record = AbandonedRecord(
                request_id=req.request_id,
                attempts=attempts,
                last_job_id=job_id,
                reason="lost in control-plane crash (cold restart)",
            )
            self._abandoned.append(record)
            self._bump("dead_letters")
            self._dead_by_cause["service_crash"] = (
                self._dead_by_cause.get("service_crash", 0) + 1
            )
            dead.append(
                {"record": record.to_dict(), "cause": "service_crash"}
            )

        for entry in state.window:
            req = SimRequest.from_dict(entry["request"])
            _abandon(req, req.attempt, "")
        for b in state.ready:
            for d in b["requests"]:
                req = SimRequest.from_dict(d)
                _abandon(req, req.attempt, "")
        dropped: List[str] = []
        for job_id, man in sorted(state.inflight.items()):
            dropped.append(job_id)
            if not man["canceled"]:
                for d in man["requests"]:
                    req = SimRequest.from_dict(d)
                    _abandon(req, req.attempt + 1, job_id)
        drop_release = []
        for entry in state.pending_release:
            req = SimRequest.from_dict(entry["request"])
            drop_release.append(req.request_id)
            _abandon(req, req.attempt, "")
        doomed = [
            n
            for n in range(self.machine.n_nodes)
            if self.pool.state_of(n) != OFFLINE
        ]
        self.pool.fail_nodes(doomed, t_rec)
        grow: Optional[Dict[str, object]] = None
        ready_at = self.pool.request_grow(self.pool.min_nodes, t_rec)
        if ready_at is not None:
            grow = {
                "nodes": sorted(self.pool.last_grown),
                "ready_at": ready_at,
            }
            self._push(ready_at, "ready")
        directives.update(
            {
                "drop_jobs": dropped,
                "dead_letter": dead,
                "drop_pending_release": drop_release,
                "clear_window": True,
                "failed_nodes": sorted(doomed),
                "pool_grow": grow,
            }
        )
        resil = directives["resil"]
        resil["dead_letters"] = len(dead)  # type: ignore[index]
        resil["by_cause"] = {"service_crash": len(dead)}  # type: ignore[index]

    def resume(self, horizon_s: float) -> ServiceReport:
        """Finish a restored run: regenerate the traffic horizon, skip
        arrivals the journal already saw, and drive the loop to empty.
        Only valid after :meth:`restore`."""
        if self._recovered is None:
            raise ServiceError("resume() requires restore() first")
        arrived = self._recovered["arrived_ids"]
        t_rec = float(self._recovered["t_rec"])  # type: ignore[arg-type]
        tele = self.telemetry
        if tele is not None:
            tele.tracer.time_offset = 0.0
            tele.tracer.begin("service", "service", t_rec)
        if self.monitor is not None:
            self.monitor.begin(self, t_rec)
        for req in self.traffic.generate(horizon_s):
            if req.request_id in arrived:  # type: ignore[operator]
                continue
            self._push(max(req.arrival_s, t_rec), "arrival", req)
        if self._now >= self._down_until:
            # the crash may have landed between a flush and its
            # dispatch: the restored ready batches have no pending
            # event to place them, so schedule once at recovery time
            self._schedule()
        self._loop()
        return self._finish(horizon_s)
