"""Admission control, load shedding, and tenant-fair batch ordering.

Two small pieces of policy, both deliberately independent of the event
loop that applies them:

- :class:`AdmissionController` — a bounded front door.  The service
  holds at most ``max_pending`` requests that have not yet started
  work (window + flushed-but-unplaced); an arrival beyond that is
  *shed* with an explicit :class:`RejectionRecord` rather than queued
  into unbounded latency.  Shedding at the door is the backpressure
  mechanism: under sustained overload the service degrades to a known
  shed rate instead of an ever-growing backlog.

- :class:`FairSharePolicy` — who goes next.  Dispatch cost (node
  seconds, split evenly over a job's members) is charged to each
  member's tenant, normalised by the tenant's weight; ready batches
  are ordered by the *least-served* tenant among their members, then
  earliest deadline (EDF inside a tenant's share), then flush order.
  A shared batch may span tenants — sharing the tensor is the whole
  point — so the batch inherits its most underserved member's claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ServiceError
from repro.campaign.request import SimRequest

#: Tenant bucket for requests submitted without one.
UNATTRIBUTED = "default"


@dataclass(frozen=True)
class RejectionRecord:
    """One shed request: who, when, and why the door was closed."""

    request_id: str
    tenant: str
    arrival_s: float
    pending: int  # in-system count at the shed decision
    reason: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "arrival_s": self.arrival_s,
            "pending": self.pending,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "RejectionRecord":
        """Rebuild from :meth:`to_dict` output (journal replay)."""
        return cls(
            request_id=str(d["request_id"]),
            tenant=str(d["tenant"]),
            arrival_s=float(d["arrival_s"]),  # type: ignore[arg-type]
            pending=int(d["pending"]),  # type: ignore[arg-type]
            reason=str(d["reason"]),
        )


class AdmissionController:
    """Bounded admission with explicit load shed.

    Parameters
    ----------
    max_pending:
        Most requests allowed in the pending set (window plus flushed
        batches waiting for nodes).  ``None`` disables shedding — the
        legacy unbounded queue.
    """

    def __init__(self, max_pending: "int | None" = None) -> None:
        if max_pending is not None and max_pending < 1:
            raise ServiceError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.max_pending = max_pending
        self.offered = 0
        self.admitted = 0
        self.rejections: List[RejectionRecord] = []

    @property
    def shed(self) -> int:
        """Requests turned away."""
        return len(self.rejections)

    @property
    def shed_rate(self) -> float:
        """Shed over offered (0.0 before any arrival)."""
        return self.shed / self.offered if self.offered else 0.0

    def try_admit(
        self, request: SimRequest, pending: int
    ) -> Optional[RejectionRecord]:
        """Admit ``request`` given ``pending`` in-system requests.

        Returns ``None`` on admission, the shed record otherwise
        (also appended to :attr:`rejections`).
        """
        self.offered += 1
        if self.max_pending is not None and pending >= self.max_pending:
            record = RejectionRecord(
                request_id=request.request_id,
                tenant=request.tenant or UNATTRIBUTED,
                arrival_s=request.arrival_s,
                pending=pending,
                reason=f"pending {pending} >= max_pending {self.max_pending}",
            )
            self.rejections.append(record)
            return record
        self.admitted += 1
        return None


# ----------------------------------------------------------------------
class FairSharePolicy:
    """Weighted fair service accounting with EDF tie-breaking.

    Parameters
    ----------
    weights:
        Tenant name -> relative share; tenants not listed get weight
        1.0.  A tenant's *normalised service* is the node-seconds
        charged to it divided by its weight; the scheduler always
        prefers the batch whose most underserved member tenant has the
        smallest normalised service.
    """

    def __init__(self, weights: Optional[Mapping[str, float]] = None) -> None:
        self._weights: Dict[str, float] = {}
        for name, w in (weights or {}).items():
            if w <= 0:
                raise ServiceError(
                    f"tenant weight must be > 0, got {w} for {name!r}"
                )
            self._weights[str(name)] = float(w)
        self._served: Dict[str, float] = {}

    def weight(self, tenant: "str | None") -> float:
        """The tenant's share weight (1.0 when unlisted)."""
        return self._weights.get(tenant or UNATTRIBUTED, 1.0)

    def normalised_service(self, tenant: "str | None") -> float:
        """Node-seconds served to the tenant, over its weight."""
        name = tenant or UNATTRIBUTED
        return self._served.get(name, 0.0) / self.weight(name)

    def charge(
        self, members: Iterable[SimRequest], node_seconds: float
    ) -> None:
        """Split one dispatch's node-seconds evenly over its members
        and charge each member's tenant."""
        if node_seconds < 0:
            raise ServiceError(
                f"node_seconds must be >= 0, got {node_seconds}"
            )
        members = list(members)
        if not members:
            return
        share = node_seconds / len(members)
        for req in members:
            name = req.tenant or UNATTRIBUTED
            self._served[name] = self._served.get(name, 0.0) + share

    def served(self) -> Dict[str, float]:
        """Raw node-seconds charged per tenant, sorted by name."""
        return dict(sorted(self._served.items()))

    def restore_served(self, served: Mapping[str, float]) -> None:
        """Overwrite the per-tenant service ledger from a
        :meth:`served` snapshot (journal replay)."""
        self._served = {str(k): float(v) for k, v in served.items()}

    # ------------------------------------------------------------------
    def batch_key(
        self,
        members: Iterable[SimRequest],
        seq: int,
        *,
        default_deadline_s: float = float("inf"),
    ) -> Tuple[float, float, int]:
        """Dispatch-order key for one ready batch: least-served member
        tenant first, then earliest deadline, then flush sequence."""
        members = list(members)
        if not members:
            raise ServiceError("cannot key an empty batch")
        service = min(self.normalised_service(r.tenant) for r in members)
        deadline = min(
            r.deadline_s if r.deadline_s is not None else default_deadline_s
            for r in members
        )
        return (service, deadline, seq)
