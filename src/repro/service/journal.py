"""Write-ahead log and replay recovery for the online service.

PRs 1 and 4 made the *data plane* resilient — a job survives losing
ranks.  The control plane stayed a single point of failure: kill the
:class:`~repro.service.loop.OnlineService` loop and the moving window,
ready queue, in-flight wave manifests, pool lifecycle, and retry
bookkeeping all evaporate.  This module makes that state durable:

- :class:`ServiceJournal` — an append-only, byte-stable WAL.  Every
  state transition the loop makes (arrival/shed, window flush,
  dispatch, completion with its requeues and dead-letters, retry
  release, pool grow/ready/reclaim/fail, control-plane chaos) is one
  JSON-safe event, written *atomically*: a crash between events leaves
  a prefix whose replay is a consistent service state.
- :class:`ReplayState` — the event-sourced shadow.  The journal
  applies every appended event to its own shadow state, so replay
  logic is exercised on every journaled run, and a **snapshot** (taken
  every ``snapshot_interval`` events) is nothing more than the shadow
  serialised — by construction identical to replaying the full prefix.
- :func:`recover_service` — replay a (possibly crash-truncated)
  journal into a freshly constructed service and resume the simulated
  clock mid-horizon.  Recovery is **exactly-once**: completed results
  in the WAL are never re-dispatched, requests that were in flight on
  a lost wave are requeued (without charging their retry budget — the
  crash was not their fault), and arrivals are regenerated from the
  seeded traffic model minus the ids the WAL already saw.

Crash injection is first-class: ``crash_at_event=k`` makes the k-th
append raise :class:`~repro.errors.JournalCrash` *without* recording
the event — the property test in ``tests/test_service_journal.py``
sweeps k over every index and asserts the recovered run's per-request
dispositions match the uncrashed run exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import JournalCrash, ServiceError
from repro.service.pool import BUSY, IDLE, OFFLINE, PROVISIONING

#: Event kinds a journal may contain (order here is documentation, not
#: precedence — precedence lives in the service loop's heap).
EVENT_KINDS = (
    "begin",      # run header: horizon, initial pool + health state
    "arrival",    # one traffic arrival: admitted into the window, or shed
    "flush",      # a window batch became ready (dispatchable)
    "dispatch",   # a job was placed and its outcome scheduled
    "complete",   # a job finished: served / requeued / dead-lettered
    "release",    # a retry backoff elapsed: request re-entered the window
    "pool",       # pool lifecycle: grow / ready / reclaim / grow_failed
    "chaos",      # a control-plane fault fired (or a domain restored)
    "recover",    # a crash-recovery reconciliation (requeues, releases)
    "end",        # run finished: closes the pool's node-second integral
    "snapshot",   # full ReplayState dump (replay fast-forward point)
)


def _copy(obj):
    """Deep JSON-safe copy (snapshots must not alias live state)."""
    return json.loads(json.dumps(obj, sort_keys=True))


class ReplayState:
    """Event-sourced mirror of every mutable :class:`OnlineService`
    field the journal can resurrect.

    Everything inside is plain JSON-safe data (request/record dicts,
    node-id keyed string states) — :meth:`to_dict` /
    :meth:`from_dict` round-trip byte-stably, and the service's
    ``restore`` turns the dicts back into live objects.
    """

    def __init__(self) -> None:
        self.t = 0.0
        self.horizon_s = 0.0
        self.offered = 0
        self.admitted = 0
        self.arrived_ids: set = set()
        #: request dicts held in the moving window, with hold-since times
        self.window: List[Dict[str, object]] = []
        #: flushed-but-unplaced batches: {seq, flushed_at, signature_key,
        #: requests (dicts)}
        self.ready: List[Dict[str, object]] = []
        #: in-flight wave manifests by job id: {requests, nodes, start_s,
        #: elapsed_s, lost_ids, canceled}
        self.inflight: Dict[str, Dict[str, object]] = {}
        #: retry backoffs in flight: {request, release_t}
        self.pending_release: List[Dict[str, object]] = []
        self.served: List[Dict[str, object]] = []
        self.rejections: List[Dict[str, object]] = []
        self.abandoned: List[Dict[str, object]] = []
        self.jobs: List[Dict[str, object]] = []
        self.tenant_served: Dict[str, float] = {}
        self.job_seq = 0
        self.batch_seq = 0
        #: pool mirror: {state, ready_at, idle_since, node_seconds, last_t}
        self.pool: Optional[Dict[str, object]] = None
        #: health mirror in NodeHealthTracker.to_dict shape
        self.health: Dict[str, object] = {
            "quarantine_threshold": 2,
            "quarantined": [],
            "incidents": [],
        }
        self.resil: Dict[str, float] = {}
        self.dead_by_cause: Dict[str, int] = {}
        #: chaos spec indices that already fired
        self.consumed_chaos: List[int] = []
        #: pending domain restores: {t, nodes}
        self.pending_restores: List[Dict[str, object]] = []
        self.down_until = 0.0

    # ------------------------------------------------------------------
    # pool mirror
    # ------------------------------------------------------------------
    def _pool_advance(self, t: float) -> None:
        if self.pool is None:
            return
        states = self.pool["state"]
        provisioned = sum(
            1 for s in states.values() if s in (IDLE, BUSY)  # type: ignore[union-attr]
        )
        last = float(self.pool["last_t"])  # type: ignore[arg-type]
        if t > last:
            self.pool["node_seconds"] = (
                float(self.pool["node_seconds"]) + provisioned * (t - last)  # type: ignore[arg-type]
            )
            self.pool["last_t"] = t

    def _pool_set(self, nodes: Iterable[int], state: str, t: float) -> None:
        assert self.pool is not None
        for n in nodes:
            key = str(int(n))
            self.pool["state"][key] = state  # type: ignore[index]
            if state == IDLE:
                self.pool["idle_since"][key] = t  # type: ignore[index]
                self.pool["ready_at"].pop(key, None)  # type: ignore[union-attr]
            else:
                self.pool["idle_since"].pop(key, None)  # type: ignore[union-attr]
                if state != PROVISIONING:
                    self.pool["ready_at"].pop(key, None)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # health mirror
    # ------------------------------------------------------------------
    def _health_add(self, incidents, quarantine) -> None:
        self.health["incidents"].extend(_copy(list(incidents)))  # type: ignore[union-attr]
        for n in quarantine:
            if int(n) not in self.health["quarantined"]:  # type: ignore[operator]
                self.health["quarantined"].append(int(n))  # type: ignore[union-attr]

    def _health_reset(self, nodes) -> None:
        nodes = {int(n) for n in nodes}
        self.health["quarantined"] = [
            n for n in self.health["quarantined"] if n not in nodes  # type: ignore[union-attr]
        ]
        self.health["incidents"] = [
            i
            for i in self.health["incidents"]  # type: ignore[union-attr]
            if int(i["node"]) not in nodes
        ]

    # ------------------------------------------------------------------
    def _bump(self, deltas: Dict[str, object]) -> None:
        for key, val in deltas.items():
            if key == "by_cause":
                for cause, n in val.items():  # type: ignore[union-attr]
                    self.dead_by_cause[cause] = (
                        self.dead_by_cause.get(cause, 0) + int(n)
                    )
            else:
                self.resil[key] = self.resil.get(key, 0) + val  # type: ignore[operator]

    def _window_take(self, request_ids: Sequence[str]) -> List[Dict[str, object]]:
        wanted = set(request_ids)
        taken = {
            e["request"]["request_id"]: e["request"]  # type: ignore[index]
            for e in self.window
            if e["request"]["request_id"] in wanted  # type: ignore[index]
        }
        missing = wanted - set(taken)
        if missing:
            raise ServiceError(
                f"journal flush references requests not in the window: "
                f"{sorted(missing)}"
            )
        self.window = [
            e
            for e in self.window
            if e["request"]["request_id"] not in wanted  # type: ignore[index]
        ]
        return [taken[rid] for rid in request_ids]

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def apply(self, kind: str, payload: Dict[str, object]) -> None:
        """Apply one journal event to the mirror (atomic by design:
        every event carries the complete consequence of its
        transition)."""
        t = float(payload["t"])  # type: ignore[arg-type]
        self._pool_advance(t)
        self.t = max(self.t, t)
        if kind == "begin":
            self.horizon_s = float(payload["horizon_s"])  # type: ignore[arg-type]
            self.pool = _copy(payload["pool"])
            self.health = _copy(payload["health"])
        elif kind == "arrival":
            self.offered += 1
            rid = str(payload["request"]["request_id"])  # type: ignore[index]
            self.arrived_ids.add(rid)
            if payload["outcome"] == "admit":
                self.admitted += 1
                self.window.append(
                    {"request": _copy(payload["request"]), "since": t}
                )
            else:
                self.rejections.append(_copy(payload["rejection"]))
                self._bump(payload.get("resil", {}))  # type: ignore[arg-type]
        elif kind == "flush":
            requests = self._window_take(payload["request_ids"])  # type: ignore[arg-type]
            self.ready.append(
                {
                    "seq": int(payload["seq"]),  # type: ignore[arg-type]
                    "flushed_at": t,
                    "signature_key": str(payload["signature_key"]),
                    "requests": requests,
                }
            )
            self.batch_seq = max(self.batch_seq, int(payload["seq"]))  # type: ignore[arg-type]
        elif kind == "dispatch":
            self._apply_dispatch(payload, t)
        elif kind == "complete":
            self._apply_complete(payload, t)
        elif kind == "release":
            req = _copy(payload["request"])
            rid = str(req["request_id"])
            self.pending_release = [
                e
                for e in self.pending_release
                if e["request"]["request_id"] != rid  # type: ignore[index]
            ]
            self.window.append({"request": req, "since": t})
        elif kind == "pool":
            self._apply_pool(payload, t)
        elif kind in ("chaos", "recover"):
            self._apply_directives(payload, t)
        elif kind == "end":
            pass  # the header's _pool_advance covered the idle tail
        elif kind == "snapshot":
            pass  # the shadow IS the snapshot; replay() fast-forwards
        else:
            raise ServiceError(f"unknown journal event kind {kind!r}")

    def _apply_dispatch(self, payload: Dict[str, object], t: float) -> None:
        seq = int(payload["ready_seq"])  # type: ignore[arg-type]
        request_ids = [str(r) for r in payload["request_ids"]]  # type: ignore[union-attr]
        batch = next((b for b in self.ready if b["seq"] == seq), None)
        if batch is None:
            raise ServiceError(
                f"journal dispatch references unknown ready batch {seq}"
            )
        have = [r["request_id"] for r in batch["requests"]]  # type: ignore[index]
        if have[: len(request_ids)] != request_ids:
            raise ServiceError(
                f"journal dispatch members {request_ids} are not the "
                f"head of ready batch {seq} ({have})"
            )
        members = batch["requests"][: len(request_ids)]  # type: ignore[index]
        del batch["requests"][: len(request_ids)]  # type: ignore[union-attr]
        if not batch["requests"]:
            self.ready.remove(batch)
        nodes = [int(n) for n in payload["nodes"]]  # type: ignore[union-attr]
        self._pool_set(nodes, BUSY, t)
        record = _copy(payload["record"])
        self.jobs.append(record)
        self.job_seq = max(self.job_seq, int(payload["wave"]) + 1)  # type: ignore[arg-type]
        self.inflight[str(payload["job_id"])] = {
            "requests": _copy(members),
            "nodes": nodes,
            "start_s": t,
            "elapsed_s": float(payload["elapsed_s"]),  # type: ignore[arg-type]
            "lost_ids": [],
            "canceled": False,
        }
        self.tenant_served = _copy(payload["tenant_served"])
        self._health_add(payload.get("incidents", ()), ())

    def _apply_complete(self, payload: Dict[str, object], t: float) -> None:
        job_id = str(payload["job_id"])
        if job_id not in self.inflight:
            raise ServiceError(
                f"journal completion for unknown in-flight job {job_id!r}"
            )
        del self.inflight[job_id]
        self._pool_set(payload.get("released_nodes", ()), IDLE, t)  # type: ignore[arg-type]
        self.served.extend(_copy(list(payload.get("served", ()))))  # type: ignore[arg-type]
        for entry in payload.get("requeued", ()):  # type: ignore[union-attr]
            self.pending_release.append(_copy(entry))
        for entry in payload.get("dead_letter", ()):  # type: ignore[union-attr]
            self.abandoned.append(_copy(entry["record"]))
        self._bump(payload.get("resil", {}))  # type: ignore[arg-type]

    def _apply_pool(self, payload: Dict[str, object], t: float) -> None:
        op = str(payload["op"])
        nodes = [int(n) for n in payload.get("nodes", ())]  # type: ignore[union-attr]
        if op == "grow":
            self._pool_set(nodes, PROVISIONING, t)
            for n in nodes:
                self.pool["ready_at"][str(n)] = float(payload["ready_at"])  # type: ignore[index,arg-type]
        elif op == "ready":
            self._pool_set(nodes, IDLE, t)
        elif op == "reclaim":
            self._pool_set(nodes, OFFLINE, t)
        elif op == "grow_failed":
            pass  # nothing changed; the resil/consumed bookkeeping below
        else:
            raise ServiceError(f"unknown journal pool op {op!r}")
        if payload.get("spec_index") is not None:
            self.consumed_chaos.append(int(payload["spec_index"]))  # type: ignore[arg-type]
        self._bump(payload.get("resil", {}))  # type: ignore[arg-type]

    def _apply_directives(self, payload: Dict[str, object], t: float) -> None:
        """Chaos / recovery events are bags of uniform directives —
        one code path applies them all."""
        if payload.get("spec_index") is not None:
            self.consumed_chaos.append(int(payload["spec_index"]))  # type: ignore[arg-type]
        if payload.get("down_until") is not None:
            self.down_until = float(payload["down_until"])  # type: ignore[arg-type]
        for job_id in payload.get("cancel_jobs", ()):  # type: ignore[union-attr]
            man = self.inflight.get(str(job_id))
            if man is not None:
                man["canceled"] = True
        for job_id, lost_ids in dict(
            payload.get("manifest_lost", {})  # type: ignore[arg-type]
        ).items():
            man = self.inflight.get(str(job_id))
            if man is not None:
                man["lost_ids"] = sorted(
                    set(man["lost_ids"]) | {str(r) for r in lost_ids}  # type: ignore[arg-type]
                )
        for job_id, record in dict(
            payload.get("update_jobs", {})  # type: ignore[arg-type]
        ).items():
            for i, existing in enumerate(self.jobs):
                if existing["job_id"] == job_id:
                    self.jobs[i] = _copy(record)
                    break
        # canceled manifests whose jobs were reconciled are dropped
        for job_id in payload.get("drop_jobs", ()):  # type: ignore[union-attr]
            self.inflight.pop(str(job_id), None)
        self._pool_set(payload.get("released_nodes", ()), IDLE, t)  # type: ignore[arg-type]
        self._pool_set(payload.get("failed_nodes", ()), OFFLINE, t)  # type: ignore[arg-type]
        grow = payload.get("pool_grow")
        if grow:
            nodes = [int(n) for n in grow["nodes"]]  # type: ignore[index]
            self._pool_set(nodes, PROVISIONING, t)
            for n in nodes:
                self.pool["ready_at"][str(n)] = float(grow["ready_at"])  # type: ignore[index]
        self._health_add(
            payload.get("incidents", ()), payload.get("quarantine", ())
        )
        if payload.get("reset"):
            self._health_reset(payload["reset"])  # type: ignore[arg-type]
            self.pending_restores = [
                e
                for e in self.pending_restores
                if set(e["nodes"]) != {int(n) for n in payload["reset"]}  # type: ignore[arg-type]
            ]
        if payload.get("restore_at") is not None:
            self.pending_restores.append(
                {
                    "t": float(payload["restore_at"]),  # type: ignore[arg-type]
                    "nodes": [int(n) for n in payload.get("quarantine", ())],  # type: ignore[union-attr]
                }
            )
        for entry in payload.get("requeued", ()):  # type: ignore[union-attr]
            self.pending_release.append(_copy(entry))
        for entry in payload.get("dead_letter", ()):  # type: ignore[union-attr]
            self.abandoned.append(_copy(entry["record"]))
        for rid in payload.get("drop_pending_release", ()):  # type: ignore[union-attr]
            self.pending_release = [
                e
                for e in self.pending_release
                if e["request"]["request_id"] != rid  # type: ignore[index]
            ]
        if payload.get("clear_window"):
            self.window = []
            self.ready = []
        self._bump(payload.get("resil", {}))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Byte-stable JSON-safe dump of the whole mirror."""
        return _copy(
            {
                "t": self.t,
                "horizon_s": self.horizon_s,
                "offered": self.offered,
                "admitted": self.admitted,
                "arrived_ids": sorted(self.arrived_ids),
                "window": self.window,
                "ready": self.ready,
                "inflight": self.inflight,
                "pending_release": self.pending_release,
                "served": self.served,
                "rejections": self.rejections,
                "abandoned": self.abandoned,
                "jobs": self.jobs,
                "tenant_served": self.tenant_served,
                "job_seq": self.job_seq,
                "batch_seq": self.batch_seq,
                "pool": self.pool,
                "health": self.health,
                "resil": self.resil,
                "dead_by_cause": self.dead_by_cause,
                "consumed_chaos": sorted(self.consumed_chaos),
                "pending_restores": self.pending_restores,
                "down_until": self.down_until,
            }
        )

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ReplayState":
        """Inverse of :meth:`to_dict`."""
        state = cls()
        data = _copy(d)
        for key, val in data.items():
            if key == "arrived_ids":
                state.arrived_ids = set(val)
            elif hasattr(state, key):
                setattr(state, key, val)
        return state


class ServiceJournal:
    """Append-only WAL with a continuously-validated replay shadow.

    Parameters
    ----------
    snapshot_interval:
        Append a full-state snapshot event after every this many
        regular events; ``0`` disables snapshots (replay starts from
        the beginning).
    crash_at_event:
        Fault-injection hook: the append that would write event index
        ``crash_at_event`` raises :class:`~repro.errors.JournalCrash`
        instead (the event is *lost*, exactly like a process dying
        before the write hit disk).  ``None`` never crashes.
    """

    def __init__(
        self,
        *,
        snapshot_interval: int = 0,
        crash_at_event: Optional[int] = None,
    ) -> None:
        if snapshot_interval < 0:
            raise ServiceError(
                f"snapshot_interval must be >= 0, got {snapshot_interval}"
            )
        self.snapshot_interval = int(snapshot_interval)
        self.crash_at_event = crash_at_event
        self._events: List[Tuple[str, Dict[str, object]]] = []
        self.shadow = ReplayState()
        self._since_snapshot = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[Tuple[str, Dict[str, object]]]:
        """The journaled events, in append order."""
        return list(self._events)

    def append(self, kind: str, payload: Dict[str, object]) -> None:
        """Durably record one event (and advance the shadow).

        Raises :class:`JournalCrash` when the injected crash index
        comes due — the event is NOT recorded.
        """
        if (
            self.crash_at_event is not None
            and len(self._events) >= self.crash_at_event
        ):
            raise JournalCrash(
                f"injected control-plane crash at WAL event "
                f"{len(self._events)} ({kind})"
            )
        self._events.append((kind, _copy(payload)))
        if kind == "snapshot":
            self._since_snapshot = 0
            return
        self.shadow.apply(kind, payload)
        self._since_snapshot += 1
        if (
            self.snapshot_interval
            and self._since_snapshot >= self.snapshot_interval
        ):
            self.append(
                "snapshot",
                {"t": self.shadow.t, "state": self.shadow.to_dict()},
            )

    def seed(self, state: ReplayState) -> None:
        """Start this journal from a recovered state instead of an
        empty service: the recovered run's first event is a snapshot
        of where it resumed."""
        self._events = []
        self.shadow = ReplayState.from_dict(state.to_dict())
        self._since_snapshot = 0
        self.append("snapshot", {"t": state.t, "state": state.to_dict()})

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    @staticmethod
    def replay(
        events: Sequence[Tuple[str, Dict[str, object]]]
    ) -> Optional[ReplayState]:
        """Fold ``events`` into the state they describe, fast-forwarding
        from the latest snapshot.  ``None`` for an empty journal (the
        crash predated the first write — recovery is a cold start)."""
        if not events:
            return None
        start = 0
        state = ReplayState()
        for i, (kind, payload) in enumerate(events):
            if kind == "snapshot":
                state = ReplayState.from_dict(payload["state"])  # type: ignore[arg-type]
                start = i + 1
        for kind, payload in list(events)[start:]:
            state.apply(kind, payload)
        return state

    # ------------------------------------------------------------------
    # persistence (byte-stable JSONL)
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One sorted-keys JSON line per event."""
        return "\n".join(
            json.dumps({"kind": k, "payload": p}, sort_keys=True)
            for k, p in self._events
        )

    @classmethod
    def from_jsonl(cls, text: str, **kwargs) -> "ServiceJournal":
        """Rebuild a journal (and its shadow) from :meth:`to_jsonl`."""
        journal = cls(**kwargs)
        events: List[Tuple[str, Dict[str, object]]] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            events.append((str(obj["kind"]), obj["payload"]))
        journal._events = events
        state = cls.replay(events)
        if state is not None:
            journal.shadow = state
        return journal

    def to_file(self, path: Union[str, Path]) -> Path:
        """Write the JSONL journal to ``path``."""
        path = Path(path)
        path.write_text(self.to_jsonl() + "\n")
        return path

    @classmethod
    def from_file(cls, path: Union[str, Path], **kwargs) -> "ServiceJournal":
        """Read a JSONL journal back from ``path``."""
        return cls.from_jsonl(Path(path).read_text(), **kwargs)


# ----------------------------------------------------------------------
def recover_service(
    service,
    journal: Union[ServiceJournal, Sequence[Tuple[str, Dict[str, object]]]],
    *,
    horizon_s: Optional[float] = None,
    mode: str = "resume",
    resume_delay_s: float = 0.0,
):
    """Resurrect a crashed service run and drive it to completion.

    Parameters
    ----------
    service:
        A *freshly constructed* :class:`~repro.service.loop.OnlineService`
        with the same configuration (machine, traffic seed, window,
        pool knobs) as the run that crashed.
    journal:
        The surviving :class:`ServiceJournal` (or its raw event list) —
        typically truncated mid-run by the crash.
    horizon_s:
        Traffic horizon of the original run; defaults to the horizon
        recorded in the journal's ``begin`` event.
    mode:
        ``"resume"`` — exactly-once recovery: durable results are kept,
        lost in-flight waves are requeued (no retry-budget charge), and
        the window/ready backlog continues where it stood.  ``"cold"``
        — the naive restart-from-empty baseline: everything in flight
        or queued is dead-lettered and the pool reboots at its floor.
    resume_delay_s:
        Simulated downtime between the crash and the recovered loop
        taking over (detection + restart).

    Returns the final :class:`~repro.service.report.ServiceReport`.
    """
    events = journal.events if isinstance(journal, ServiceJournal) else list(
        journal
    )
    state = ServiceJournal.replay(events)
    if state is None:
        # the crash predated the first write: nothing to recover
        if horizon_s is None:
            raise ServiceError(
                "cannot recover from an empty journal without horizon_s"
            )
        return service.run(horizon_s)
    if horizon_s is None:
        horizon_s = state.horizon_s
    service.restore(state, mode=mode, resume_delay_s=resume_delay_s)
    return service.resume(horizon_s)
