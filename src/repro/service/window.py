"""Signature batching over a moving window of pending requests.

The batch campaign could hand the :class:`SignatureBatcher` a *drained*
queue — every request it would ever see — and emit maximal groups.  A
service never has that luxury: requests trickle in, and holding one
back to wait for share-mates trades its latency for the ensemble's
efficiency.  :class:`MovingWindow` makes that trade explicit with a
two-knob policy:

- a candidate signature group flushes as soon as it reaches
  ``min_batch`` members (enough sharing to be worth a dispatch), and
- *any* held request flushes its group once it has waited
  ``max_hold_s`` — the hold-time guarantee: batching may delay a
  request, but never beyond the policy bound.

Grouping itself is delegated to the same
:class:`~repro.campaign.batcher.SignatureBatcher` the batch campaign
uses (so the moving-window law — a flushed window yields exactly the
:func:`~repro.xgyro.validate.group_by_signature` partition of its
flushed members — holds by construction, and is property-tested in
``tests/test_service_window.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.campaign.batcher import CandidateBatch, SignatureBatcher
from repro.campaign.request import SimRequest


@dataclass(frozen=True)
class WindowPolicy:
    """When a held signature group becomes a dispatchable batch.

    Parameters
    ----------
    max_hold_s:
        Longest any request may sit in the window; its group flushes
        (whatever its size) once the oldest member reaches this age.
        ``0`` degenerates to flush-on-arrival.
    min_batch:
        Group size that triggers an immediate flush — the "enough
        sharing" threshold.  ``1`` flushes every request immediately
        (the FIFO baseline).
    max_batch:
        Optional cap on members per emitted batch; an oversized group
        flushes as several batches and any sub-``min_batch`` remainder
        keeps waiting under the hold clock.
    """

    max_hold_s: float = 30.0
    min_batch: int = 4
    max_batch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_hold_s < 0:
            raise ServiceError(
                f"max_hold_s must be >= 0, got {self.max_hold_s}"
            )
        if self.min_batch < 1:
            raise ServiceError(f"min_batch must be >= 1, got {self.min_batch}")
        if self.max_batch is not None and self.max_batch < 1:
            raise ServiceError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )


class MovingWindow:
    """The service's holding pen: admitted, not yet dispatched.

    Requests enter with :meth:`add` at their admission time and leave
    in :meth:`flush` batches.  The window never reorders a group's
    members (queue order in, queue order out) and never mixes
    signatures or cadences in one batch — both inherited from
    :class:`SignatureBatcher`.
    """

    def __init__(self, policy: Optional[WindowPolicy] = None) -> None:
        self.policy = policy or WindowPolicy()
        self._batcher = SignatureBatcher(max_batch=self.policy.max_batch)
        self._held: List[SimRequest] = []
        self._since: Dict[str, float] = {}  # request_id -> held-since

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._held)

    def __bool__(self) -> bool:
        return bool(self._held)

    def pending(self) -> Tuple[SimRequest, ...]:
        """Held requests, in admission order."""
        return tuple(self._held)

    def held_since(self, request_id: str) -> float:
        """When ``request_id`` entered the window."""
        try:
            return self._since[request_id]
        except KeyError:
            raise ServiceError(
                f"request {request_id!r} is not held in the window"
            ) from None

    def add(self, request: SimRequest, now: float) -> None:
        """Hold ``request`` from time ``now``."""
        if request.request_id in self._since:
            raise ServiceError(
                f"request {request.request_id!r} is already in the window"
            )
        self._held.append(request)
        self._since[request.request_id] = float(now)

    # ------------------------------------------------------------------
    def next_expiry(self) -> Optional[float]:
        """Earliest time a held request hits its hold bound (the
        service schedules its flush timer here); ``None`` when empty."""
        if not self._since:
            return None
        return min(self._since.values()) + self.policy.max_hold_s

    def flush(self, now: float, *, force: bool = False) -> List[CandidateBatch]:
        """Remove and return every batch that is ready at ``now``.

        A candidate batch is ready when it has ``min_batch`` members,
        when its oldest member has been held ``max_hold_s``, or when
        ``force`` is set (service drain).  Returned batches preserve
        the batcher's emission order; unready groups stay held.
        """
        if not self._held:
            return []
        ready: List[CandidateBatch] = []
        flushed_ids: set = set()
        for batch in self._batcher.batch(self._held):
            oldest = min(self._since[r.request_id] for r in batch.requests)
            # ``oldest + max_hold_s`` mirrors :meth:`next_expiry` exactly,
            # so a flush at the advertised expiry always fires (the
            # algebraically equal ``now - oldest >= max_hold_s`` can be
            # false at that instant under float rounding)
            if (
                force
                or batch.size >= self.policy.min_batch
                or now >= oldest + self.policy.max_hold_s
            ):
                ready.append(batch)
                flushed_ids.update(r.request_id for r in batch.requests)
        if flushed_ids:
            self._held = [
                r for r in self._held if r.request_id not in flushed_ids
            ]
            for rid in flushed_ids:
                del self._since[rid]
        return ready
