"""The online campaign service: traffic, windowed batching, elastic
pool, fair-share scheduling, and the service-level report.

The batch :mod:`repro.campaign` answered "how fast can one machine
drain a fixed queue of ensemble requests".  This package answers the
production question behind the ROADMAP's north star — requests
*arrive*, continuously, from many tenants, and the service must decide
on-line how long to hold each one for signature share-mates, how many
nodes to keep provisioned, and who gets the next free node — all on
one deterministic simulated clock so every run is replayable.

Entry point: :class:`OnlineService` (``repro serve`` on the CLI).
"""

from repro.service.admission import (
    UNATTRIBUTED,
    AdmissionController,
    FairSharePolicy,
    RejectionRecord,
)
from repro.service.journal import (
    EVENT_KINDS,
    ReplayState,
    ServiceJournal,
    recover_service,
)
from repro.service.loop import RECOVERY_MODES, OnlineService
from repro.service.pool import ElasticNodePool, PoolSample
from repro.service.report import (
    SERVICE_TTR_BUCKETS,
    ServedRecord,
    ServiceReport,
    render_service_report,
)
from repro.service.traffic import (
    DEFAULT_TENANTS,
    BurstyTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    ReplayTraffic,
    TenantSpec,
    TrafficModel,
    replay,
)
from repro.service.window import MovingWindow, WindowPolicy

__all__ = [
    "AdmissionController",
    "BurstyTraffic",
    "DEFAULT_TENANTS",
    "DiurnalTraffic",
    "EVENT_KINDS",
    "ElasticNodePool",
    "FairSharePolicy",
    "MovingWindow",
    "OnlineService",
    "PoissonTraffic",
    "PoolSample",
    "RECOVERY_MODES",
    "RejectionRecord",
    "ReplayState",
    "ReplayTraffic",
    "SERVICE_TTR_BUCKETS",
    "ServedRecord",
    "ServiceJournal",
    "ServiceReport",
    "TenantSpec",
    "TrafficModel",
    "UNATTRIBUTED",
    "WindowPolicy",
    "recover_service",
    "render_service_report",
    "replay",
]
