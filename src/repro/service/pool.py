"""The elastic node pool: grow under load, drain-and-reclaim on idle.

The batch campaign owned the whole machine for its lifetime.  A
service that holds 32 Frontier-class nodes through every quiet hour
has terrible economics; one that cannot borrow nodes back under a
burst has terrible latency.  :class:`ElasticNodePool` models the
middle ground over the *same* :class:`~repro.machine.model.MachineModel`
the packer and ledgers use:

- nodes are ``offline`` until provisioned; provisioning takes
  ``provision_delay_s`` of simulated time (allocation + boot + image),
  after which the node is ``idle`` and placeable;
- dispatches ``busy`` specific node ids; completions return them to
  ``idle``;
- an ``idle`` node that nobody touches for ``idle_reclaim_s`` is
  *drained and reclaimed* — returned to ``offline`` — but never below
  ``min_nodes``, and a busy node is never reclaimed (the drain
  guarantee: reclaim waits for work to finish, it does not kill it);
- nodes the shared :class:`~repro.resilience.health.NodeHealthTracker`
  quarantines stop being allocatable even while provisioned.

Every transition is appended to a timeline, so reports can plot pool
size against offered load, and provisioned node-seconds (the cost
integral) are accumulated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.machine.model import MachineModel

#: Node lifecycle states.
OFFLINE, PROVISIONING, IDLE, BUSY = "offline", "provisioning", "idle", "busy"


@dataclass(frozen=True)
class PoolSample:
    """One pool-size timeline entry (written on every change)."""

    t_s: float
    provisioned: int  # idle + busy (online capacity)
    busy: int
    provisioning: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "t_s": self.t_s,
            "provisioned": self.provisioned,
            "busy": self.busy,
            "provisioning": self.provisioning,
        }


class ElasticNodePool:
    """Node lifecycle manager over one machine.

    Parameters
    ----------
    machine:
        The machine whose node ids ``0..n_nodes-1`` the pool manages.
    min_nodes:
        Floor the pool never reclaims below; these are provisioned
        (idle) at construction, at time 0, with no delay.
    max_nodes:
        Ceiling on provisioned + provisioning nodes (default: the
        whole machine).
    provision_delay_s:
        Simulated seconds between a grow request and the node coming
        online.
    idle_reclaim_s:
        Idle time after which a node above the floor is reclaimed.
    health:
        Optional :class:`~repro.resilience.health.NodeHealthTracker`;
        quarantined nodes are excluded from :meth:`free_nodes` and
        skipped when growing.
    spread_domains:
        When the machine declares
        :class:`~repro.machine.topology.FaultDomains`, grow requests
        provision offline nodes round-robin across domains, so online
        capacity (and hence every placement drawn from it) straddles
        racks.  Without domains the pick is the historical
        lowest-id-first one.
    """

    def __init__(
        self,
        machine: MachineModel,
        *,
        min_nodes: int = 1,
        max_nodes: Optional[int] = None,
        provision_delay_s: float = 0.0,
        idle_reclaim_s: float = float("inf"),
        health: "object | None" = None,
        spread_domains: bool = True,
    ) -> None:
        max_nodes = machine.n_nodes if max_nodes is None else max_nodes
        if not 1 <= min_nodes <= max_nodes <= machine.n_nodes:
            raise ServiceError(
                f"need 1 <= min_nodes ({min_nodes}) <= max_nodes "
                f"({max_nodes}) <= machine nodes ({machine.n_nodes})"
            )
        if provision_delay_s < 0:
            raise ServiceError(
                f"provision_delay_s must be >= 0, got {provision_delay_s}"
            )
        if idle_reclaim_s <= 0:
            raise ServiceError(
                f"idle_reclaim_s must be > 0, got {idle_reclaim_s}"
            )
        self.machine = machine
        self.min_nodes = int(min_nodes)
        self.max_nodes = int(max_nodes)
        self.provision_delay_s = float(provision_delay_s)
        self.idle_reclaim_s = float(idle_reclaim_s)
        self.health = health
        self.spread_domains = spread_domains
        self._state: Dict[int, str] = {
            n: OFFLINE for n in range(machine.n_nodes)
        }
        #: node ids the most recent :meth:`request_grow` started
        self.last_grown: Tuple[int, ...] = ()
        self._ready_at: Dict[int, float] = {}  # provisioning -> online time
        self._idle_since: Dict[int, float] = {}
        self.timeline: List[PoolSample] = []
        self.node_seconds = 0.0  # provisioned-capacity cost integral
        self._last_t = 0.0
        for n in range(self.min_nodes):
            self._state[n] = IDLE
            self._idle_since[n] = 0.0
        self._sample(0.0)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _advance_cost(self, now: float) -> None:
        if now < self._last_t:
            raise ServiceError(
                f"pool clock moved backwards: {now} < {self._last_t}"
            )
        self.node_seconds += self.provisioned * (now - self._last_t)
        self._last_t = now

    def _sample(self, now: float) -> None:
        self.timeline.append(
            PoolSample(
                t_s=float(now),
                provisioned=self.provisioned,
                busy=self._count(BUSY),
                provisioning=self._count(PROVISIONING),
            )
        )

    def _count(self, state: str) -> int:
        return sum(1 for s in self._state.values() if s == state)

    @property
    def provisioned(self) -> int:
        """Online capacity: idle + busy nodes."""
        return self._count(IDLE) + self._count(BUSY)

    @property
    def busy(self) -> int:
        """Nodes currently running a job."""
        return self._count(BUSY)

    @property
    def committed(self) -> int:
        """Capacity already paid for or en route: provisioned plus
        provisioning."""
        return self.provisioned + self._count(PROVISIONING)

    def state_of(self, node: int) -> str:
        """The node's lifecycle state."""
        try:
            return self._state[node]
        except KeyError:
            raise ServiceError(f"node {node} is not in the pool") from None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_ready(self, now: float) -> List[int]:
        """Bring provisioning nodes whose delay elapsed online (idle)."""
        self._advance_cost(now)
        came_up = sorted(
            n for n, t in self._ready_at.items() if t <= now
        )
        for n in came_up:
            del self._ready_at[n]
            self._state[n] = IDLE
            self._idle_since[n] = now
        if came_up:
            self._sample(now)
        return came_up

    def next_ready(self) -> Optional[float]:
        """Earliest pending provisioning completion, or ``None``."""
        return min(self._ready_at.values()) if self._ready_at else None

    def ready_times(self) -> List[float]:
        """Distinct pending provisioning-completion times, sorted —
        a recovered service re-arms one wake-up per entry."""
        return sorted(set(self._ready_at.values()))

    def request_grow(
        self, n_nodes: int, now: float, *, extra_delay_s: float = 0.0
    ) -> Optional[float]:
        """Start provisioning up to ``n_nodes`` more nodes.

        Returns the time they come online, or ``None`` when the pool
        is already at ``max_nodes`` (nothing started).  Quarantined
        offline nodes are never provisioned.  ``extra_delay_s`` stalls
        this particular grow beyond the nominal delay (the
        ``provision_fail`` fault charges its stall here).
        """
        if n_nodes < 1:
            raise ServiceError(f"n_nodes must be >= 1, got {n_nodes}")
        if extra_delay_s < 0:
            raise ServiceError(
                f"extra_delay_s must be >= 0, got {extra_delay_s}"
            )
        self._advance_cost(now)
        headroom = self.max_nodes - self.committed
        take = min(n_nodes, headroom)
        if take <= 0:
            return None
        ready_at = now + self.provision_delay_s + extra_delay_s
        candidates = [
            n
            for n in sorted(self._state)
            if self._state[n] == OFFLINE
            and not (
                self.health is not None and self.health.is_quarantined(n)
            )
        ]
        domains = self.machine.fault_domains
        if domains is not None and self.spread_domains:
            candidates = domains.interleave(candidates)
        grown: List[int] = []
        for n in candidates:
            if len(grown) == take:
                break
            self._state[n] = PROVISIONING
            self._ready_at[n] = ready_at
            grown.append(n)
        if not grown:
            return None
        self.last_grown = tuple(grown)
        self._sample(now)
        return ready_at

    def free_nodes(self, now: float) -> List[int]:
        """Allocatable node ids: idle and not quarantined, sorted."""
        idle = [n for n, s in sorted(self._state.items()) if s == IDLE]
        if self.health is None:
            return idle
        return [n for n in idle if not self.health.is_quarantined(n)]

    def allocate(self, nodes: Sequence[int], now: float) -> None:
        """Mark ``nodes`` busy (they must all be idle)."""
        self._advance_cost(now)
        for n in nodes:
            if self._state.get(n) != IDLE:
                raise ServiceError(
                    f"cannot allocate node {n}: state "
                    f"{self._state.get(n, 'absent')!r}"
                )
        for n in nodes:
            self._state[n] = BUSY
            self._idle_since.pop(n, None)
        self._sample(now)

    def release(self, nodes: Sequence[int], now: float) -> None:
        """Return busy ``nodes`` to idle at ``now``."""
        self._advance_cost(now)
        for n in nodes:
            if self._state.get(n) != BUSY:
                raise ServiceError(
                    f"cannot release node {n}: state "
                    f"{self._state.get(n, 'absent')!r}"
                )
        for n in nodes:
            self._state[n] = IDLE
            self._idle_since[n] = now
        self._sample(now)

    def reclaim_idle(self, now: float) -> List[int]:
        """Drain-and-reclaim: offline every node idle for
        ``idle_reclaim_s``, newest-id first, keeping ``min_nodes`` of
        online capacity.  Returns the reclaimed ids."""
        self._advance_cost(now)
        reclaimed: List[int] = []
        candidates = sorted(
            (
                n
                for n, s in self._state.items()
                if s == IDLE
                and now - self._idle_since[n] >= self.idle_reclaim_s
            ),
            reverse=True,
        )
        for n in candidates:
            if self.provisioned <= self.min_nodes:
                break
            self._state[n] = OFFLINE
            del self._idle_since[n]
            reclaimed.append(n)
        if reclaimed:
            self._sample(now)
        return reclaimed

    def next_reclaim(self) -> Optional[float]:
        """Earliest time an idle node becomes reclaimable (the service
        schedules its reclaim timer here); ``None`` when no idle node
        is above the floor or reclaim is disabled."""
        if (
            self.idle_reclaim_s == float("inf")
            or self.provisioned <= self.min_nodes
            or not self._idle_since
        ):
            return None
        return min(self._idle_since.values()) + self.idle_reclaim_s

    def fail_nodes(self, nodes: Sequence[int], now: float) -> List[int]:
        """Hard-fail ``nodes``: force them offline from *any* state at
        ``now`` (a ``domain_loss`` rips a rack out regardless of what
        each node was doing).  Returns the subset that was busy, so the
        caller can reconcile in-flight jobs."""
        self._advance_cost(now)
        was_busy: List[int] = []
        changed = False
        for n in nodes:
            state = self._state.get(n)
            if state is None:
                raise ServiceError(f"node {n} is not in the pool")
            if state == OFFLINE:
                continue
            if state == BUSY:
                was_busy.append(n)
            self._state[n] = OFFLINE
            self._ready_at.pop(n, None)
            self._idle_since.pop(n, None)
            changed = True
        if changed:
            self._sample(now)
        return was_busy

    # ------------------------------------------------------------------
    def finish(self, now: float) -> None:
        """Close the cost integral at the service end time."""
        self._advance_cost(now)
        self._sample(now)

    def timeline_dicts(self) -> List[Dict[str, object]]:
        """JSON-safe pool timeline."""
        return [s.to_dict() for s in self.timeline]

    # ------------------------------------------------------------------
    # snapshot / restore (service journal)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of every mutable field the journal needs
        to resurrect the pool mid-horizon (timeline excluded — the
        recovered service restarts it at the restore time)."""
        return {
            "state": {str(n): s for n, s in sorted(self._state.items())},
            "ready_at": {
                str(n): t for n, t in sorted(self._ready_at.items())
            },
            "idle_since": {
                str(n): t for n, t in sorted(self._idle_since.items())
            },
            "node_seconds": self.node_seconds,
            "last_t": self._last_t,
        }

    def restore(self, snap: Dict[str, object]) -> None:
        """Overwrite this pool's mutable state from :meth:`to_dict`
        output (configuration — floors, delays, machine — comes from
        the constructor, not the snapshot)."""
        state = {int(n): s for n, s in snap["state"].items()}  # type: ignore[union-attr]
        if set(state) != set(self._state):
            raise ServiceError(
                "pool snapshot node set does not match this machine"
            )
        self._state = state
        self._ready_at = {
            int(n): float(t)
            for n, t in snap["ready_at"].items()  # type: ignore[union-attr]
        }
        self._idle_since = {
            int(n): float(t)
            for n, t in snap["idle_since"].items()  # type: ignore[union-attr]
        }
        self.node_seconds = float(snap["node_seconds"])  # type: ignore[arg-type]
        self._last_t = float(snap["last_t"])  # type: ignore[arg-type]
        self.timeline = []
        self._sample(self._last_t)
