"""Numerical verification utilities.

Order-of-accuracy checks for the time integrators — the standard
"verify before you validate" tooling of a simulation code:

- the streaming phase uses RK4 and must converge at 4th order in dt;
- the full operator-split step (RK4 streaming + backward-Euler-style
  implicit collisions via the precomputed propagator) is 1st order in
  the splitting;

both measured by Richardson-style self-convergence against a
fine-step reference.  The observed order is returned so tests can
assert it (see ``tests/test_verification.py``), and studies can use
the same helpers to pick dt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.errors import InputError
from repro.cgyro.params import CgyroInput
from repro.cgyro.reference import SerialReference, initial_condition


@dataclass(frozen=True)
class ConvergenceResult:
    """Self-convergence study outcome."""

    dts: List[float]
    errors: List[float]
    observed_order: float

    def render(self) -> str:
        lines = [f"{'dt':>12s} {'error':>14s}"]
        for dt, err in zip(self.dts, self.errors):
            lines.append(f"{dt:>12.3e} {err:>14.6e}")
        lines.append(f"observed order: {self.observed_order:.2f}")
        return "\n".join(lines)


def _advance(inp: CgyroInput, t_final: float, *, collisions: bool) -> np.ndarray:
    dt = inp.delta_t
    n_steps = round(t_final / dt)
    if abs(n_steps * dt - t_final) > 1e-12 * t_final:
        raise InputError(f"t_final={t_final} is not a multiple of dt={dt}")
    ref = SerialReference(inp)
    h = initial_condition(inp)
    for _ in range(n_steps):
        h = ref.streaming_step(h)
        if collisions:
            h = ref.collision_step(h)
    return h


def _observed_order(dts: Sequence[float], errors: Sequence[float]) -> float:
    logs = np.polyfit(np.log(np.asarray(dts)), np.log(np.asarray(errors)), 1)
    return float(logs[0])


def _self_convergence(
    inp: CgyroInput,
    *,
    t_final: float,
    dts: Sequence[float],
    collisions: bool,
) -> ConvergenceResult:
    if len(dts) < 2:
        raise InputError("need at least two step sizes")
    if any(b >= a for a, b in zip(dts, dts[1:])):
        raise InputError("step sizes must be strictly decreasing")
    fine_dt = dts[-1] / 4.0
    reference = _advance(
        inp.with_updates(delta_t=fine_dt), t_final, collisions=collisions
    )
    ref_norm = np.linalg.norm(reference)
    errors = []
    for dt in dts:
        h = _advance(inp.with_updates(delta_t=dt), t_final, collisions=collisions)
        errors.append(float(np.linalg.norm(h - reference) / ref_norm))
    return ConvergenceResult(
        dts=list(dts), errors=errors, observed_order=_observed_order(dts, errors)
    )


def streaming_convergence(
    inp: CgyroInput,
    *,
    t_final: float = 0.08,
    dts: Sequence[float] = (0.02, 0.01, 0.005),
) -> ConvergenceResult:
    """Temporal self-convergence of the streaming phase alone.

    Collisions are excluded, so the exact solution of the semi-discrete
    system is smooth in dt and the RK4 order (4) should be observed.
    """
    return _self_convergence(inp, t_final=t_final, dts=dts, collisions=False)


def split_step_convergence(
    inp: CgyroInput,
    *,
    t_final: float = 0.08,
    dts: Sequence[float] = (0.02, 0.01, 0.005),
) -> ConvergenceResult:
    """Temporal self-convergence of the full split step.

    The Lie (first-order) splitting between the explicit streaming
    advance and the implicit collision propagator limits the full step
    to order ~1 — the documented accuracy trade the implicit-propagator
    design makes.
    """
    return _self_convergence(inp, t_final=t_final, dts=dts, collisions=True)
