"""Velocity-space moment diagnostics.

Post-processing of the distribution function into the fluid-like
perturbations a physics analysis reads off — per species ``s``,
configuration point and toroidal mode:

    density        dn_s   = sum_iv w J h                (iv in s)
    parallel flow  du_s   = sum_iv w J vpar h / <w vpar^2>_s
    temperature    dT_s   = sum_iv w J (2/3)(e - 3/2) h

The weights reuse the field solver's FLR factor so these are the
*gyro-fluid* moments consistent with the solved fields.  Works on the
global tensor (serial analysis) or on any (iv, nt) block — partial
results over a velocity partition sum to the full moment, which is the
property a distributed reduction needs and the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InputError
from repro.cgyro.fields import FieldSolver


@dataclass(frozen=True)
class FluidMoments:
    """Per-species gyro-fluid perturbations.

    Arrays have shape ``(n_species, nc, n_modes)``.
    """

    density: np.ndarray
    parallel_flow: np.ndarray
    temperature: np.ndarray

    @property
    def n_species(self) -> int:
        """Number of species."""
        return self.density.shape[0]

    def __add__(self, other: "FluidMoments") -> "FluidMoments":
        return FluidMoments(
            density=self.density + other.density,
            parallel_flow=self.parallel_flow + other.parallel_flow,
            temperature=self.temperature + other.temperature,
        )


class MomentCalculator:
    """Computes :class:`FluidMoments` from distribution blocks."""

    def __init__(self, fields: FieldSolver) -> None:
        self.fields = fields
        self.dims = fields.dims
        vgrid = fields.vgrid
        w = vgrid.flat_weights()
        self._species = vgrid.flat_species()
        vpar = vgrid.flat_vpar()
        energy = vgrid.flat_energy()
        #: per-iv weights for each moment (FLR applied per mode below)
        self._w_dens = w
        self._w_flow = np.zeros_like(w)
        for s in range(self.dims.n_species):
            mask = self._species == s
            norm = float((w[mask] * vpar[mask] ** 2).sum())
            self._w_flow[mask] = w[mask] * vpar[mask] / norm
        self._w_temp = w * (2.0 / 3.0) * (energy - 1.5)

    def partial(
        self,
        h: np.ndarray,
        iv_idx: Sequence[int],
        nt_idx: Sequence[int],
    ) -> FluidMoments:
        """Moment contributions of an (iv, nt) block.

        Partial results over a partition of velocity space sum to the
        full moments.
        """
        iv = np.asarray(iv_idx)
        nt = np.asarray(nt_idx)
        if h.shape != (self.dims.nc, iv.size, nt.size):
            raise InputError(
                f"h shape {h.shape} != ({self.dims.nc}, {iv.size}, {nt.size})"
            )
        j = self.fields.j_table[np.ix_(iv, nt)]
        spec = self._species[iv]
        out = {
            name: np.zeros((self.dims.n_species, self.dims.nc, nt.size), complex)
            for name in ("density", "parallel_flow", "temperature")
        }
        weights = {
            "density": self._w_dens[iv],
            "parallel_flow": self._w_flow[iv],
            "temperature": self._w_temp[iv],
        }
        for s in range(self.dims.n_species):
            mask = spec == s
            if not mask.any():
                continue
            jm = j[mask]
            hm = h[:, mask, :]
            for name, wv in weights.items():
                out[name][s] = np.einsum(
                    "cvt,vt->ct", hm, wv[mask][:, None] * jm, optimize=True
                )
        return FluidMoments(**out)

    def compute(self, h_global: np.ndarray) -> FluidMoments:
        """Moments of the full ``(nc, nv, nt)`` tensor."""
        d = self.dims
        if h_global.shape != (d.nc, d.nv, d.nt):
            raise InputError(f"expected global shape, got {h_global.shape}")
        return self.partial(h_global, range(d.nv), range(d.nt))
