"""Checkpoint / restart.

CGYRO runs are long; production studies checkpoint the distribution
function and resume across job allocations.  The reproduction mirrors
that: a checkpoint stores the *global* state tensor plus enough
metadata to refuse a resume against a different physics configuration
(the cmat signature and step/time counters).

Checkpoints are ``.npz`` files.  A distributed simulation gathers its
state before writing and re-scatters on load, so checkpoints are
portable across rank counts — a run saved from 256 ranks restarts on
8, exactly like the real code's restart files.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.errors import InputError
from repro.cgyro.params import CgyroInput

#: Format version written into every checkpoint.
CHECKPOINT_VERSION = 1


def _signature_digest(inp: CgyroInput) -> str:
    """Stable digest of the cmat signature (physics compatibility key)."""
    sig = inp.cmat_signature()
    payload = json.dumps(asdict(sig), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def save_checkpoint(
    path: Union[str, Path],
    h_global: np.ndarray,
    inp: CgyroInput,
    *,
    step: int,
    time: float,
) -> None:
    """Write a checkpoint of the global state tensor."""
    d = inp.grid_dims()
    if h_global.shape != (d.nc, d.nv, d.nt):
        raise InputError(
            f"state shape {h_global.shape} does not match grid "
            f"({d.nc}, {d.nv}, {d.nt})"
        )
    if step < 0 or time < 0:
        raise InputError("step and time must be >= 0")
    np.savez_compressed(
        path,
        version=np.int64(CHECKPOINT_VERSION),
        h=h_global,
        step=np.int64(step),
        time=np.float64(time),
        signature=np.bytes_(_signature_digest(inp).encode()),
        name=np.bytes_(inp.name.encode()),
    )


def load_checkpoint(
    path: Union[str, Path], inp: CgyroInput
) -> Tuple[np.ndarray, int, float]:
    """Load a checkpoint, validating physics compatibility.

    Returns ``(h_global, step, time)``.  Raises
    :class:`~repro.errors.InputError` when the file is missing, from a
    different format version, or was written by a run whose
    cmat-relevant parameters differ (sweep parameters may differ — a
    restart with a new gradient is a legitimate continuation study).
    """
    path = Path(path)
    if not path.exists():
        raise InputError(f"checkpoint not found: {path}")
    with np.load(path) as data:
        version = int(data["version"])
        if version != CHECKPOINT_VERSION:
            raise InputError(
                f"checkpoint {path} has version {version}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        digest = bytes(data["signature"]).decode()
        if digest != _signature_digest(inp):
            raise InputError(
                f"checkpoint {path} is physics-incompatible with this "
                "input: its cmat signature differs (grid/collision/dt "
                "changed since the checkpoint was written)"
            )
        h = np.array(data["h"])
        step = int(data["step"])
        time = float(data["time"])
    d = inp.grid_dims()
    if h.shape != (d.nc, d.nv, d.nt):
        raise InputError(
            f"checkpoint state shape {h.shape} does not match grid"
        )
    return h, step, time
