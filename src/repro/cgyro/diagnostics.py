"""Physics diagnostics: flux spectrum and field amplitudes.

The turbulent flux proxy per toroidal mode,

    Q(n) = n k_theta_rho * sum_{ic, iv} w(iv) J(iv, n) Im[ phi*(ic,n) h(ic,iv,n) ],

is the quantity a fusion study actually extracts from a run (the paper's
"fusion studies composed of ensembles of simulations" vary gradients
and read off fluxes).  The distributed solver accumulates it with one
small AllReduce per report — CGYRO's diagnostics/io cadence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InputError
from repro.cgyro.fields import FieldSolver


def flux_spectrum(
    h: np.ndarray,
    phi: np.ndarray,
    fields: FieldSolver,
    iv_idx: Sequence[int],
    nt_idx: Sequence[int],
    *,
    k_theta_rho: float,
) -> np.ndarray:
    """Partial flux spectrum of an (iv, nt) block.

    ``h`` has shape ``(nc, len(iv_idx), len(nt_idx))``, ``phi``
    ``(nc, len(nt_idx))``.  Returns ``Q`` of shape ``(len(nt_idx),)``.
    Summing the results over a partition of velocity space yields the
    full spectrum — the property the distributed reduction relies on.
    """
    iv = np.asarray(iv_idx)
    nt = np.asarray(nt_idx)
    if h.shape[1] != iv.size or h.shape[2] != nt.size:
        raise InputError(f"h shape {h.shape} inconsistent with index sets")
    if phi.shape != (h.shape[0], nt.size):
        raise InputError(f"phi shape {phi.shape} inconsistent with h {h.shape}")
    w = fields.vgrid.flat_weights()[iv]
    j = fields.j_table[np.ix_(iv, nt)]
    weighted = np.einsum("cvt,v,vt->ct", h, w, j, optimize=True)
    q = np.einsum("ct,ct->t", np.conj(phi), weighted, optimize=True).imag
    return k_theta_rho * nt * q
