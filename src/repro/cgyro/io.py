"""Input-file and timing-output formats.

Mirrors the ergonomics of the real code: a simulation directory holds
an ``input.cgyro`` of ``KEY=VALUE`` lines (``#`` comments), and a run
appends per-report timing rows to ``out.cgyro.timing`` (CSV).  The
XGYRO ensemble format lives in :mod:`repro.xgyro.input`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.errors import InputError
from repro.cgyro.params import CgyroInput
from repro.cgyro.timing import CATEGORY_ORDER, ReportRow
from repro.collision.params import SpeciesParams

#: scalar input keys <-> CgyroInput field names
_SCALAR_KEYS: Dict[str, str] = {
    "N_RADIAL": "n_radial",
    "N_THETA": "n_theta",
    "N_ENERGY": "n_energy",
    "N_XI": "n_xi",
    "N_SPECIES": "n_species",
    "N_TOROIDAL": "n_toroidal",
    "NU": "nu",
    "ENERGY_DIFF_COEFF": "energy_diff_coeff",
    "FLR_COEFF": "flr_coeff",
    "NU_PROFILE_EPS": "nu_profile_eps",
    "CONSERVE_MOMENTUM": "conserve_momentum",
    "CONSERVE_ENERGY": "conserve_energy",
    "DELTA_T": "delta_t",
    "GAMMA_E": "gamma_e",
    "NONADIABATIC_DELTA": "nonadiabatic_delta",
    "K_THETA_RHO": "k_theta_rho",
    "DRIFT_COEFF": "drift_coeff",
    "DRIFT_R_COEFF": "drift_r_coeff",
    "BETA_E": "beta_e",
    "UPWIND_COEFF": "upwind_coeff",
    "UPWIND_FIELD_COEFF": "upwind_field_coeff",
    "NL_COEFF": "nl_coeff",
    "LAMBDA_DEBYE": "lambda_debye",
    "BOX_LENGTH": "box_length",
    "NONLINEAR_FLAG": "nonlinear",
    "STEPS_PER_REPORT": "steps_per_report",
    "AMP": "amp",
    "SEED": "seed",
    "NAME": "name",
}

_INT_FIELDS = {
    "n_radial", "n_theta", "n_energy", "n_xi", "n_species", "n_toroidal",
    "steps_per_report", "seed",
}
_BOOL_FIELDS = {"conserve_momentum", "conserve_energy", "nonlinear"}


def write_input_file(inp: CgyroInput, path: Union[str, Path]) -> None:
    """Write ``inp`` as an ``input.cgyro``-style file."""
    lines = [f"# repro input file for {inp.name}"]
    for key, field in _SCALAR_KEYS.items():
        value = getattr(inp, field)
        if field in _BOOL_FIELDS:
            value = int(value)
        lines.append(f"{key}={value}")
    for s, sp in enumerate(inp.species, start=1):
        lines.append(f"NAME_{s}={sp.name}")
        lines.append(f"Z_{s}={sp.z}")
        lines.append(f"MASS_{s}={sp.mass}")
        lines.append(f"DENS_{s}={sp.dens}")
        lines.append(f"TEMP_{s}={sp.temp}")
        lines.append(f"DLNNDR_{s}={inp.dlnndr[s - 1]}")
        lines.append(f"DLNTDR_{s}={inp.dlntdr[s - 1]}")
    Path(path).write_text("\n".join(lines) + "\n")


def parse_input_file(path: Union[str, Path]) -> CgyroInput:
    """Parse an ``input.cgyro``-style file into a validated input."""
    path = Path(path)
    if not path.exists():
        raise InputError(f"input file not found: {path}")
    scalars: Dict[str, str] = {}
    per_species: Dict[str, Dict[int, str]] = {}
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise InputError(f"{path}:{lineno}: expected KEY=VALUE, got {raw!r}")
        key, value = (part.strip() for part in line.split("=", 1))
        prefix, _, suffix = key.rpartition("_")
        if prefix in ("NAME", "Z", "MASS", "DENS", "TEMP", "DLNNDR", "DLNTDR") and suffix.isdigit():
            per_species.setdefault(prefix, {})[int(suffix)] = value
        elif key in _SCALAR_KEYS:
            scalars[key] = value
        else:
            raise InputError(f"{path}:{lineno}: unknown key {key!r}")

    kwargs: Dict[str, object] = {}
    for key, value in scalars.items():
        field = _SCALAR_KEYS[key]
        if field == "name":
            kwargs[field] = value
        elif field in _BOOL_FIELDS:
            kwargs[field] = bool(int(value))
        elif field in _INT_FIELDS:
            kwargs[field] = int(value)
        else:
            kwargs[field] = float(value)

    n_species = int(kwargs.get("n_species", 2))
    if per_species:
        species: List[SpeciesParams] = []
        dlnndr: List[float] = []
        dlntdr: List[float] = []
        for s in range(1, n_species + 1):
            try:
                species.append(
                    SpeciesParams(
                        name=per_species.get("NAME", {}).get(s, f"s{s}"),
                        z=float(per_species["Z"][s]),
                        mass=float(per_species["MASS"][s]),
                        dens=float(per_species["DENS"][s]),
                        temp=float(per_species["TEMP"][s]),
                    )
                )
                dlnndr.append(float(per_species.get("DLNNDR", {}).get(s, 1.0)))
                dlntdr.append(float(per_species.get("DLNTDR", {}).get(s, 3.0)))
            except KeyError as exc:
                raise InputError(
                    f"{path}: species {s} is missing field {exc.args[0]}"
                ) from None
        kwargs["species"] = tuple(species)
        kwargs["dlnndr"] = tuple(dlnndr)
        kwargs["dlntdr"] = tuple(dlntdr)
    return CgyroInput(**kwargs)


def write_timing_csv(rows: Sequence[ReportRow], path: Union[str, Path]) -> None:
    """Write report rows as an ``out.cgyro.timing``-style CSV."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["step", "time", "wall_s", *CATEGORY_ORDER])
        for r in rows:
            writer.writerow(
                [r.step, f"{r.time:.6f}", f"{r.wall_s:.6f}"]
                + [f"{r.categories.get(c, 0.0):.6f}" for c in CATEGORY_ORDER]
            )


def read_timing_csv(path: Union[str, Path]) -> List[ReportRow]:
    """Read rows written by :func:`write_timing_csv`."""
    import numpy as np

    rows: List[ReportRow] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        for rec in reader:
            rows.append(
                ReportRow(
                    step=int(rec["step"]),
                    time=float(rec["time"]),
                    wall_s=float(rec["wall_s"]),
                    categories={
                        c: float(rec[c]) for c in CATEGORY_ORDER if c in rec
                    },
                    flux=np.zeros(0),
                    phi2=np.zeros(0),
                )
            )
    return rows
