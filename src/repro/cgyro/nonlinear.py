"""Nonlinear phase: the quadratic toroidal bracket.

A reduced ExB bracket coupling toroidal modes,

    NL(h, phi)_n = c_nl * [ (i n' k_th phi) *conv* (i k_r h)
                          - (i k_r phi)    *conv* (i n' k_th h) ]_n ,

evaluated pseudo-spectrally: both factors are zero-padded to at least
``3/2 * nt`` (de-aliasing), FFT'd along the toroidal axis, multiplied
pointwise in toroidal angle, and transformed back — which is why the
nl phase needs the *complete* nt dimension locally (the NL layout),
reached via the comm_2 AllToAll.

Radial coupling is reduced to the local ``k_r(ic)`` factor (no radial
convolution); the paper "mostly ignores the nl phase", so structure —
tensor shapes, transpose pattern, FFT cost scaling — is what matters
here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError


def padded_length(nt: int) -> int:
    """De-aliased transform length: next power of two >= 3*nt/2."""
    target = max(1, (3 * nt + 1) // 2)
    length = 1
    while length < target:
        length *= 2
    return length


def _conv(a: np.ndarray, b: np.ndarray, m: int, nt: int) -> np.ndarray:
    """Zero-padded circular convolution along the last axis."""
    fa = np.fft.fft(a, n=m, axis=-1)
    fb = np.fft.fft(b, n=m, axis=-1)
    return np.fft.ifft(fa * fb, axis=-1)[..., :nt]


def toroidal_bracket(
    h: np.ndarray,
    phi: np.ndarray,
    k_radial: np.ndarray,
    *,
    k_theta_rho: float,
    nl_coeff: float,
) -> np.ndarray:
    """Evaluate the bracket on an NL-layout block.

    Parameters
    ----------
    h:
        State block with complete toroidal axis,
        shape ``(n_conf, n_iv, nt)``.
    phi:
        Potential on the same configuration slice, ``(n_conf, nt)``.
    k_radial:
        Radial wavenumber of each local configuration point,
        ``(n_conf,)``.
    k_theta_rho, nl_coeff:
        Model coefficients from the input.

    Returns
    -------
    Bracket contribution, same shape as ``h``.
    """
    if h.ndim != 3:
        raise InputError(f"h must be 3D (n_conf, n_iv, nt), got {h.shape}")
    n_conf, n_iv, nt = h.shape
    if phi.shape != (n_conf, nt):
        raise InputError(f"phi shape {phi.shape} != ({n_conf}, {nt})")
    if k_radial.shape != (n_conf,):
        raise InputError(f"k_radial shape {k_radial.shape} != ({n_conf},)")
    if nl_coeff == 0.0:
        return np.zeros_like(h)
    m = padded_length(nt)
    n_modes = np.arange(nt)
    dphi_alpha = (1j * k_theta_rho * n_modes)[None, :] * phi  # (n_conf, nt)
    dphi_rad = (1j * k_radial)[:, None] * phi
    dh_alpha = (1j * k_theta_rho * n_modes)[None, None, :] * h
    dh_rad = (1j * k_radial)[:, None, None] * h
    term1 = _conv(dphi_alpha[:, None, :], dh_rad, m, nt)
    term2 = _conv(dphi_rad[:, None, :], dh_alpha, m, nt)
    return nl_coeff * (term1 - term2)
