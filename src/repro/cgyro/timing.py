"""Per-phase timing, CGYRO-style.

CGYRO prints a timing line per reporting step with one column per
phase; Figure 2 of the paper is built from exactly those columns.  The
reproduction mirrors this: the virtual world accumulates simulated time
under the category labels below, and :class:`ReportRow` captures the
per-interval deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Optional

import numpy as np

#: Canonical phase categories, in CGYRO timing-output order.
CATEGORY_ORDER = (
    "str_comm",
    "str_compute",
    "nl_comm",
    "nl_compute",
    "coll_comm",
    "coll_compute",
    "diag",
    "cmat_build",
)

#: Categories counted as communication.
COMM_CATEGORIES = ("str_comm", "nl_comm", "coll_comm")


def snapshot(world, ranks: Iterable[int]) -> Dict[str, float]:
    """Current per-category times (max over ``ranks``) plus elapsed."""
    ranks = list(ranks)
    out = {c: world.category_time(c, ranks) for c in CATEGORY_ORDER}
    out["elapsed"] = world.elapsed(ranks)
    return out


def delta(after: Dict[str, float], before: Dict[str, float]) -> Dict[str, float]:
    """Per-category difference of two snapshots."""
    return {k: after[k] - before.get(k, 0.0) for k in after}


@dataclass
class ReportRow:
    """One reporting interval of one simulation (or ensemble member)."""

    step: int
    time: float
    wall_s: float
    categories: Dict[str, float]
    flux: np.ndarray = dc_field(default_factory=lambda: np.zeros(0))
    phi2: np.ndarray = dc_field(default_factory=lambda: np.zeros(0))

    @property
    def comm_s(self) -> float:
        """Total communication time in the interval."""
        return sum(self.categories.get(c, 0.0) for c in COMM_CATEGORIES)

    @property
    def str_comm_s(self) -> float:
        """Streaming-phase communication time (the paper's key column)."""
        return self.categories.get("str_comm", 0.0)


def render_report(rows: List[ReportRow], *, label: str = "") -> str:
    """CGYRO-style timing table for a list of report rows."""
    cols = [c for c in CATEGORY_ORDER if any(r.categories.get(c, 0.0) > 0 for r in rows)]
    header = f"{'step':>6s} {'time':>9s} " + " ".join(f"{c:>12s}" for c in cols)
    header += f" {'TOTAL':>12s}"
    lines = [f"timing [{label}]" if label else "timing", header]
    for r in rows:
        line = f"{r.step:>6d} {r.time:>9.4f} " + " ".join(
            f"{r.categories.get(c, 0.0):>12.4f}" for c in cols
        )
        line += f" {r.wall_s:>12.4f}"
        lines.append(line)
    return "\n".join(lines)


def sum_rows(rows: List[ReportRow]) -> Optional[ReportRow]:
    """Aggregate rows by summing wall time and categories.

    Used for the "sum of 8 independent CGYRO simulations" side of
    Figure 2 (sequential runs: wall times add).
    """
    if not rows:
        return None
    cats: Dict[str, float] = {}
    for r in rows:
        for k, v in r.categories.items():
            cats[k] = cats.get(k, 0.0) + v
    return ReportRow(
        step=rows[-1].step,
        time=rows[-1].time,
        wall_s=sum(r.wall_s for r in rows),
        categories=cats,
        flux=rows[-1].flux,
        phi2=rows[-1].phi2,
    )
