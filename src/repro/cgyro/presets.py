"""Input presets.

``nl03c_scaled`` is the reproduction's stand-in for the paper's *nl03c*
benchmark input, dimensionally scaled so the full cmat is
materialisable on a workstation while preserving the properties the
paper's arithmetic rests on (see DESIGN.md section 2):

- cmat is ~10x the size of all other per-rank buffers combined
  (``nv = 256`` against ~12 complex state buffers:
  ``nv * 8 / (16 * 12) = 10.7``);
- the processor grid of the headline run is P1=32 x P2=8 = 256 ranks =
  32 Frontier-like nodes, matching "a single CGYRO simulation does
  require at least 32 nodes" once the machine's per-rank memory budget
  is scaled alongside (:func:`nl03c_machine_mem_per_rank`).
"""

from __future__ import annotations

from repro.cgyro.params import CgyroInput

#: Scaled per-rank memory budget (bytes) that preserves the paper's
#: node arithmetic for ``nl03c_scaled``: one private-cmat simulation
#: needs >= 32 Frontier-like nodes (16 nodes OOM), while 8 members
#: sharing cmat fit on the same 32.
NL03C_SCALED_MEM_PER_RANK = 4.0 * 1024**2


def small_test(**overrides) -> CgyroInput:
    """Tiny input for unit tests: nc=16, nv=16, nt=4."""
    defaults = dict(
        name="small-test",
        n_radial=4,
        n_theta=4,
        n_energy=2,
        n_xi=4,
        n_species=2,
        n_toroidal=4,
        nu=0.1,
        delta_t=0.02,
        steps_per_report=5,
    )
    defaults.update(overrides)
    return CgyroInput(**defaults)


def linear_benchmark(**overrides) -> CgyroInput:
    """Medium linear case: nc=64, nv=64, nt=8 (example-sized)."""
    defaults = dict(
        name="linear-benchmark",
        n_radial=8,
        n_theta=8,
        n_energy=4,
        n_xi=8,
        n_species=2,
        n_toroidal=8,
        nu=0.05,
        delta_t=0.01,
        steps_per_report=20,
    )
    defaults.update(overrides)
    return CgyroInput(**defaults)


def nl03c_scaled(**overrides) -> CgyroInput:
    """Scaled-down *nl03c*: nc=128, nv=256, nt=8.

    cmat totals ``256^2 * 128 * 8 * 8 B = 512 MiB`` — 10.7x the ~12
    complex state buffers, reproducing the paper's "10x all other
    buffers combined".
    """
    defaults = dict(
        name="nl03c-scaled",
        n_radial=16,
        n_theta=8,
        n_energy=8,
        n_xi=16,
        n_species=2,
        n_toroidal=8,
        nu=0.1,
        delta_t=0.01,
        nonlinear=True,
        steps_per_report=100,
    )
    defaults.update(overrides)
    return CgyroInput(**defaults)
