"""The CGYRO-like solver substrate.

A reduced-physics but complete-in-structure spectral drift-kinetic
solver with CGYRO's three phases (streaming / nonlinear / collisional),
tensor layouts, communicator structure and timing categories.  See
DESIGN.md section 2 for exactly what is preserved relative to the real
code and why it suffices for the paper's claims.

Entry points:

- :class:`CgyroInput` + presets — validated inputs;
- :class:`CgyroSimulation` — the distributed solver (lockstep SPMD on
  a :class:`~repro.vmpi.VirtualWorld`);
- :class:`SerialReference` — single-array reference implementation;
- :class:`PrivateCollisionScheme` — stock cmat placement (the thing
  XGYRO swaps out).
"""

from repro.cgyro.collision_scheme import CollisionScheme, PrivateCollisionScheme
from repro.cgyro.history import TimeHistory
from repro.cgyro.io import parse_input_file, write_input_file, write_timing_csv
from repro.cgyro.linear import LinearSolver, ModeResult
from repro.cgyro.moments import FluidMoments, MomentCalculator
from repro.cgyro.params import CgyroInput
from repro.cgyro.presets import linear_benchmark, nl03c_scaled, small_test
from repro.cgyro.reference import SerialReference, initial_condition
from repro.cgyro.restart import load_checkpoint, save_checkpoint
from repro.cgyro.solver import CgyroSimulation
from repro.cgyro.timing import (
    CATEGORY_ORDER,
    COMM_CATEGORIES,
    ReportRow,
    render_report,
    sum_rows,
)

__all__ = [
    "CgyroInput",
    "CgyroSimulation",
    "SerialReference",
    "initial_condition",
    "CollisionScheme",
    "PrivateCollisionScheme",
    "small_test",
    "linear_benchmark",
    "nl03c_scaled",
    "ReportRow",
    "CATEGORY_ORDER",
    "COMM_CATEGORIES",
    "render_report",
    "sum_rows",
    "LinearSolver",
    "ModeResult",
    "FluidMoments",
    "MomentCalculator",
    "TimeHistory",
    "save_checkpoint",
    "load_checkpoint",
    "parse_input_file",
    "write_input_file",
    "write_timing_csv",
]
