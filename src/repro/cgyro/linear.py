"""Linear (initial-value eigenmode) solver mode.

Gyrokinetic codes are routinely run in *linear* mode to extract the
growth rate gamma and real frequency omega of each toroidal mode —
the quantities physics papers quote and parameter scans map out.  With
the nonlinear bracket disabled, one full time step of this solver
(RK4 streaming with its field solves + the implicit collision
propagator) is an exactly linear map ``h -> M_n h`` per toroidal mode
``n``; the dominant eigenvalue ``lambda`` of ``M_n`` gives

    gamma = ln|lambda| / dt,        omega = -arg(lambda) / dt .

Two extraction methods are provided: deterministic power iteration on
the matrix-free step map, and implicitly-restarted Arnoldi
(``scipy.sparse.linalg.eigs``) on the same operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy.sparse.linalg import LinearOperator, eigs

from repro.errors import InputError
from repro.cgyro.fields import FieldSolver
from repro.cgyro.params import CgyroInput
from repro.cgyro.streaming import StreamingOperator
from repro.collision import CmatPropagator, CollisionOperator, apply_propagator
from repro.grid import ConfigGrid, VelocityGrid


@dataclass(frozen=True)
class ModeResult:
    """Linear result for one toroidal mode."""

    n_mode: int
    gamma: float
    omega: float
    eigenvalue: complex
    iterations: int

    @property
    def unstable(self) -> bool:
        """Whether the mode grows (gamma > 0)."""
        return self.gamma > 0.0


class LinearSolver:
    """Per-toroidal-mode linear analysis of the full step map."""

    def __init__(self, inp: CgyroInput) -> None:
        if inp.nonlinear:
            raise InputError(
                "linear analysis requires nonlinear=False (the step map "
                "must be linear)"
            )
        self.inp = inp
        self.dims = inp.grid_dims()
        self.vgrid = VelocityGrid.build(self.dims)
        self.cgrid = ConfigGrid.build(self.dims, box_length=inp.box_length)
        self.fields = FieldSolver(inp, self.dims, self.vgrid)
        self.streaming = StreamingOperator(inp, self.dims, self.vgrid, self.cgrid)
        operator = CollisionOperator(
            self.dims, self.vgrid, self.cgrid, inp.collision_params()
        )
        self._propagator = CmatPropagator(operator, dt=inp.delta_t)
        self._cmat_cache: dict = {}

    # ------------------------------------------------------------------
    # the per-mode step map
    # ------------------------------------------------------------------
    def _mode_cmat(self, n_mode: int) -> np.ndarray:
        if n_mode not in self._cmat_cache:
            self._cmat_cache[n_mode] = self._propagator.build(
                range(self.dims.nc), [n_mode]
            )
        return self._cmat_cache[n_mode]

    def _rhs_mode(self, h: np.ndarray, n_mode: int) -> np.ndarray:
        """Streaming RHS restricted to one toroidal mode.

        ``h`` has shape ``(nc, nv, 1)``.
        """
        iv_idx = range(self.dims.nv)
        moments = self.fields.partial_moments(h, iv_idx, [n_mode])
        f = self.fields.assemble(moments, [n_mode])
        return self.streaming.rhs(
            h, f.phi, f.psi_u, iv_idx, [n_mode], apar=f.apar
        )

    def step_mode(self, h: np.ndarray, n_mode: int) -> np.ndarray:
        """One full (streaming RK4 + collision) step of mode ``n``."""
        if h.shape != (self.dims.nc, self.dims.nv, 1):
            raise InputError(
                f"mode state must have shape ({self.dims.nc}, {self.dims.nv}, 1)"
            )
        if not 0 <= n_mode < self.dims.nt:
            raise InputError(f"mode {n_mode} out of range [0, {self.dims.nt})")
        dt = self.inp.delta_t
        k1 = self._rhs_mode(h, n_mode)
        k2 = self._rhs_mode(h + 0.5 * dt * k1, n_mode)
        k3 = self._rhs_mode(h + 0.5 * dt * k2, n_mode)
        k4 = self._rhs_mode(h + dt * k3, n_mode)
        out = h + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        return apply_propagator(self._mode_cmat(n_mode), out)

    def step_operator(self, n_mode: int) -> LinearOperator:
        """The mode-``n`` step map as a scipy LinearOperator."""
        size = self.dims.nc * self.dims.nv
        shape3 = (self.dims.nc, self.dims.nv, 1)

        def matvec(v: np.ndarray) -> np.ndarray:
            h = np.asarray(v, dtype=np.complex128).reshape(shape3)
            return self.step_mode(h, n_mode).ravel()

        return LinearOperator((size, size), matvec=matvec, dtype=np.complex128)

    # ------------------------------------------------------------------
    # eigenvalue extraction
    # ------------------------------------------------------------------
    def _result(self, n_mode: int, lam: complex, iterations: int) -> ModeResult:
        dt = self.inp.delta_t
        gamma = float(np.log(np.abs(lam)) / dt)
        omega = float(-np.angle(lam) / dt)
        return ModeResult(
            n_mode=n_mode,
            gamma=gamma,
            omega=omega,
            eigenvalue=complex(lam),
            iterations=iterations,
        )

    def growth_rate_power(
        self,
        n_mode: int,
        *,
        tol: float = 1e-6,
        max_iter: int = 3000,
        seed: int = 0,
    ) -> ModeResult:
        """Dominant-eigenvalue *estimate* by deterministic power iteration.

        The physical operator has an exact theta-parity symmetry
        (``k_r <-> -k_r``), so its dominant eigenvalue is typically a
        degenerate pair with further eigenvalues clustered close by;
        power iteration converges on the modulus (which is what gamma
        needs) but only slowly through the cluster.  Use it as a cheap
        estimator; :meth:`growth_rate_arnoldi` (the default) resolves
        the cluster properly.
        """
        rng = np.random.default_rng(seed)
        shape = (self.dims.nc, self.dims.nv, 1)
        v = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        v /= np.linalg.norm(v)
        modulus_old = 0.0
        lam = 0.0 + 0.0j
        for it in range(1, max_iter + 1):
            w = self.step_mode(v, n_mode)
            lam = np.vdot(v, w)  # Rayleigh quotient, carries the phase
            modulus = float(np.linalg.norm(w))  # growth factor -> |lambda|
            if modulus == 0.0:
                return self._result(n_mode, 0.0, it)
            v = w / modulus
            # converge on the modulus: it is well-defined even when the
            # dominant eigenvalue is (near-)degenerate, where the
            # Rayleigh quotient keeps rotating within the subspace
            if abs(modulus - modulus_old) <= tol * modulus and it > 1:
                lam = modulus * np.exp(1j * np.angle(lam))
                return self._result(n_mode, lam, it)
            modulus_old = modulus
        raise InputError(
            f"power iteration did not converge for mode {n_mode} in "
            f"{max_iter} iterations; try method='arnoldi'"
        )

    def growth_rate_arnoldi(
        self, n_mode: int, *, tol: float = 1e-8, seed: int = 0
    ) -> ModeResult:
        """Dominant eigenvalue by implicitly-restarted Arnoldi.

        The theta-parity symmetry makes the dominant eigenvalue a
        degenerate pair, which ARPACK cannot converge with ``k=1``; a
        small cluster is requested and the largest modulus returned.
        """
        rng = np.random.default_rng(seed)
        size = self.dims.nc * self.dims.nv
        v0 = rng.standard_normal(size) + 1j * rng.standard_normal(size)
        k = min(6, size - 2)
        vals = eigs(
            self.step_operator(n_mode),
            k=k,
            ncv=min(size, max(4 * k, 20)),
            which="LM",
            v0=v0,
            tol=tol,
            return_eigenvectors=False,
        )
        lam = vals[np.argmax(np.abs(vals))]
        return self._result(n_mode, lam, 0)

    def growth_rate(
        self, n_mode: int, *, method: str = "arnoldi", tol: float = 1e-8
    ) -> ModeResult:
        """Dominant-mode growth rate by the chosen method."""
        if method == "power":
            return self.growth_rate_power(n_mode, tol=tol)
        if method == "arnoldi":
            return self.growth_rate_arnoldi(n_mode, tol=tol)
        raise InputError(f"unknown method {method!r}; use 'power' or 'arnoldi'")

    def spectrum(
        self,
        *,
        modes: Optional[List[int]] = None,
        method: str = "arnoldi",
        tol: float = 1e-8,
    ) -> List[ModeResult]:
        """Growth rates of the requested modes (default: all n > 0).

        Mode 0 is excluded by default: without a drive it is neutrally
        stable and its eigenvalue cluster slows power iteration.
        """
        if modes is None:
            modes = list(range(1, self.dims.nt))
        return [self.growth_rate(n, method=method, tol=tol) for n in modes]
