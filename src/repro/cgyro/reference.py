"""Serial reference solver.

A single-array implementation of exactly the same mathematics as the
distributed solver — same RK4 staging, same chunk-free field solve,
same bracket, same implicit collision step.  It exists so that the
distributed code paths (CGYRO's layouts/transposes, and XGYRO's shared
cmat distribution) can be verified to numerical round-off:

    gather(distributed step) == reference step      (tests)

It is also a perfectly usable small-scale solver in its own right (see
``examples/quickstart.py``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import InputError
from repro.cgyro.fields import FieldSolver
from repro.cgyro.nonlinear import toroidal_bracket
from repro.cgyro.params import CgyroInput
from repro.cgyro.streaming import StreamingOperator
from repro.collision import CmatPropagator, CollisionOperator, apply_propagator
from repro.grid import ConfigGrid, VelocityGrid


def initial_condition(inp: CgyroInput) -> np.ndarray:
    """Deterministic random initial state, shape ``(nc, nv, nt)``.

    Used by both the serial reference and the distributed solver (which
    scatters it), so equivalence tests start from identical data.
    """
    d = inp.grid_dims()
    rng = np.random.default_rng(inp.seed)
    shape = (d.nc, d.nv, d.nt)
    return inp.amp * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))


class SerialReference:
    """Full-tensor solver advancing one simulation in place."""

    def __init__(self, inp: CgyroInput) -> None:
        self.inp = inp
        self.dims = inp.grid_dims()
        self.vgrid = VelocityGrid.build(self.dims)
        self.cgrid = ConfigGrid.build(self.dims, box_length=inp.box_length)
        self.fields = FieldSolver(inp, self.dims, self.vgrid)
        self.streaming = StreamingOperator(inp, self.dims, self.vgrid, self.cgrid)
        operator = CollisionOperator(
            self.dims, self.vgrid, self.cgrid, inp.collision_params()
        )
        propagator = CmatPropagator(operator, dt=inp.delta_t)
        #: full cmat, shape (nc, nt, nv, nv) — feasible at test scale only
        self.cmat = propagator.build(range(self.dims.nc), range(self.dims.nt))
        self.h = initial_condition(inp)
        self.time = 0.0
        self.step_count = 0

    # ------------------------------------------------------------------
    # phase operators (exposed individually for phase-level testing)
    # ------------------------------------------------------------------
    def _rhs(self, state: np.ndarray) -> np.ndarray:
        f = self.fields.solve_serial(state)
        return self.streaming.rhs(
            state,
            f.phi,
            f.psi_u,
            range(self.dims.nv),
            range(self.dims.nt),
            apar=f.apar,
        )

    def streaming_step(self, h: Optional[np.ndarray] = None) -> np.ndarray:
        """One RK4 advance of the streaming phase."""
        if h is None:
            h = self.h
        dt = self.inp.delta_t
        k1 = self._rhs(h)
        k2 = self._rhs(h + 0.5 * dt * k1)
        k3 = self._rhs(h + 0.5 * dt * k2)
        k4 = self._rhs(h + dt * k3)
        return h + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)

    def nonlinear_step(self, h: Optional[np.ndarray] = None) -> np.ndarray:
        """Split-step explicit advance of the toroidal bracket."""
        if h is None:
            h = self.h
        phi = self.fields.solve_serial(h).phi
        bracket = toroidal_bracket(
            h,
            phi,
            self.cgrid.flat_k_radial(),
            k_theta_rho=self.inp.k_theta_rho,
            nl_coeff=self.inp.nl_coeff,
        )
        return h + self.inp.delta_t * bracket

    def collision_step(self, h: Optional[np.ndarray] = None) -> np.ndarray:
        """Implicit collisional advance via the precomputed propagator."""
        if h is None:
            h = self.h
        # cmat is (nc, nt, nv, nv); apply expects h as (nc, nv, nt)
        return apply_propagator(self.cmat, h)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one full time step (str -> nl -> coll) in place."""
        h = self.streaming_step(self.h)
        if self.inp.nonlinear:
            h = self.nonlinear_step(h)
        self.h = self.collision_step(h)
        self.time += self.inp.delta_t
        self.step_count += 1

    def run(self, n_steps: int) -> None:
        """Advance ``n_steps`` time steps."""
        if n_steps < 0:
            raise InputError(f"n_steps must be >= 0, got {n_steps}")
        for _ in range(n_steps):
            self.step()

    # ------------------------------------------------------------------
    # checkpoint / restart
    # ------------------------------------------------------------------
    def save_checkpoint(self, path) -> None:
        """Write a checkpoint (interchangeable with the distributed one)."""
        from repro.cgyro.restart import save_checkpoint

        save_checkpoint(path, self.h, self.inp, step=self.step_count, time=self.time)

    def load_checkpoint(self, path) -> None:
        """Resume from a checkpoint (validates physics compatibility)."""
        from repro.cgyro.restart import load_checkpoint

        self.h, self.step_count, self.time = load_checkpoint(path, self.inp)

    # ------------------------------------------------------------------
    def diagnostics(self) -> Dict[str, np.ndarray]:
        """Flux spectrum and field amplitude per toroidal mode."""
        phi = self.fields.solve_serial(self.h).phi
        from repro.cgyro.diagnostics import flux_spectrum

        q = flux_spectrum(
            self.h,
            phi,
            self.fields,
            range(self.dims.nv),
            range(self.dims.nt),
            k_theta_rho=self.inp.k_theta_rho,
        )
        return {"flux": q, "phi2": (np.abs(phi) ** 2).sum(axis=0)}
