"""Flop-count conventions for charging simulated compute time.

The virtual world charges compute as ``flops / machine.flops_per_rank``.
These constants make the per-kernel accounting explicit and testable;
absolute realism is not required (the machine's effective rate is a
calibrated quantity), but *relative* costs between kernels and their
scaling with local block sizes must be right, because they determine
how compute time redistributes when XGYRO shrinks the per-member rank
count.
"""

from __future__ import annotations

import math

#: Streaming RHS: theta stencils, drift/drive multiplies, FLR factors —
#: roughly 20 complex ops per element per stage.
RHS_FLOPS_PER_ELEMENT = 120.0

#: Velocity-space moment accumulation: two moments (field + upwind),
#: one complex multiply-add each.
MOMENT_FLOPS_PER_ELEMENT = 16.0

#: Field assembly (divide by dielectric, small).
FIELD_SOLVE_FLOPS_PER_ELEMENT = 8.0

#: RK4 linear combination work per element per step.
RK_COMBINE_FLOPS_PER_ELEMENT = 24.0

#: Diagnostics (flux spectrum accumulation).
DIAG_FLOPS_PER_ELEMENT = 12.0


def fft_flops(batch: int, length: int) -> float:
    """Split-radix-style estimate: ``5 N log2 N`` per transform."""
    if length <= 1:
        return 0.0
    return 5.0 * batch * length * math.log2(length)


def bracket_flops(n_conf: int, n_iv: int, nt: int, padded: int) -> float:
    """Nonlinear toroidal bracket: 8 padded FFTs + pointwise products."""
    batch = n_conf * n_iv
    transforms = 8.0 * fft_flops(batch, padded)
    pointwise = 6.0 * 2.0 * batch * padded
    return transforms + pointwise
