"""Field solve: gyro-averaged velocity moments and the dielectrics.

The electrostatic potential per configuration point and toroidal mode,

    phi(ic, n) = sum_iv  A(iv, n) h(ic, iv, n)  /  D(n),

with gyro-average weight ``A = w * z * dens * J`` and FLR factor
``J(iv, n) = exp(-(n k_theta_rho)^2 e / 2)``; the dielectric ``D(n)``
is the Debye-regularised quasineutrality response.  A second moment —
the *upwind field* ``psi_u = sum_iv w |vpar| J h`` — feeds the upwind
dissipation correction.  With ``beta_e > 0`` (electromagnetic runs,
per the Sugama theory CGYRO implements) a third moment — the parallel
current ``sum_iv w z dens vth vpar J h`` — yields A_parallel through
Ampere's law, ``D_A(n) = 2 (n k_theta_rho)^2 / beta_e + lambda_D``.

The velocity sums are what force the str-phase AllReduce over the nv
communicator: in the STR layout each rank holds only ``nv_loc`` of the
``nv`` points.  :meth:`FieldSolver.partial_moments` computes one
rank's (or one chunk's) contribution; summing the partials — serially
or via AllReduce — and calling :meth:`FieldSolver.assemble` yields a
:class:`FieldState`.  Serial reference and distributed solver share
this code path, which is what makes their equivalence testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import InputError
from repro.cgyro.params import CgyroInput
from repro.grid.dims import GridDims
from repro.grid.velocity import VelocityGrid


@dataclass
class FieldState:
    """Solved fields on a (nc, nt-subset) slab.

    ``apar`` is ``None`` for electrostatic runs (``beta_e == 0``).
    """

    phi: np.ndarray
    psi_u: np.ndarray
    apar: Optional[np.ndarray] = None


def flr_table(vgrid: VelocityGrid, k_theta_rho: float, nt: int) -> np.ndarray:
    """FLR reduction factor ``J(iv, n)``, shape ``(nv, nt)``."""
    e = vgrid.flat_energy()
    n = np.arange(nt)
    b = (k_theta_rho * n) ** 2
    return np.exp(-0.5 * np.outer(e, b))


class FieldSolver:
    """Precomputed moment weights and dielectric for one input."""

    def __init__(self, inp: CgyroInput, dims: GridDims, vgrid: VelocityGrid) -> None:
        self.inp = inp
        self.dims = dims
        self.vgrid = vgrid
        nt = dims.nt
        self.j_table = flr_table(vgrid, inp.k_theta_rho, nt)  # (nv, nt)
        w = vgrid.flat_weights()
        spec = vgrid.flat_species()
        z = np.array([inp.species[s].z for s in spec])
        dens = np.array([inp.species[s].dens for s in spec])
        vth = np.array([inp.species[s].vth for s in spec])
        #: field moment weight, shape (nv, nt)
        self.field_weight = (w * z * dens)[:, None] * self.j_table
        #: upwind moment weight, shape (nv, nt)
        self.upwind_weight = (w * np.abs(vgrid.flat_vpar()))[:, None] * self.j_table
        #: parallel-current moment weight (EM only), shape (nv, nt)
        self.current_weight = (
            (w * z * dens * vth * vgrid.flat_vpar())[:, None] * self.j_table
        )
        #: dielectric, shape (nt,)
        self.dielectric = self._build_dielectric()
        #: Ampere dielectric for A_parallel (EM only), shape (nt,)
        self.apar_dielectric = self._build_apar_dielectric()

    @property
    def electromagnetic(self) -> bool:
        """Whether the run solves for A_parallel."""
        return self.inp.beta_e > 0.0

    @property
    def n_moments(self) -> int:
        """Moments accumulated per field solve (2 ES, 3 EM)."""
        return 3 if self.electromagnetic else 2

    def _build_dielectric(self) -> np.ndarray:
        d = np.full(self.dims.nt, self.inp.lambda_debye)
        w = self.vgrid.flat_weights()
        spec = self.vgrid.flat_species()
        for s, sp in enumerate(self.inp.species):
            mask = spec == s
            gamma_n = (w[mask, None] * self.j_table[mask, :] ** 2).sum(axis=0)
            d += sp.z**2 * sp.dens / sp.temp * (1.0 - gamma_n)
        if np.any(d <= 0):
            raise InputError("dielectric must be positive; increase lambda_debye")
        # i-delta model of non-adiabatic electrons: a phase shift in the
        # field response that opens the resistive-drift-wave growth
        # channel for n > 0 (a sweep parameter — not in the cmat
        # signature)
        delta = self.inp.nonadiabatic_delta
        if delta != 0.0:
            n_modes = np.arange(self.dims.nt)
            return d * (1.0 - 1j * delta * np.sign(n_modes))
        return d

    def _build_apar_dielectric(self) -> np.ndarray:
        """Ampere's-law response ``2 k_perp^2 / beta_e`` (+ Debye floor).

        Returns ones for electrostatic runs (never used there).
        """
        if not self.electromagnetic:
            return np.ones(self.dims.nt)
        n_modes = np.arange(self.dims.nt)
        k_perp2 = (self.inp.k_theta_rho * n_modes) ** 2
        return 2.0 * k_perp2 / self.inp.beta_e + self.inp.lambda_debye

    # ------------------------------------------------------------------
    def partial_moments(
        self,
        h: np.ndarray,
        iv_idx: Sequence[int],
        nt_idx: Sequence[int],
    ) -> np.ndarray:
        """Moment contributions of a velocity subset.

        Parameters
        ----------
        h:
            Field block, shape ``(nc, len(iv_idx), len(nt_idx))``.
        iv_idx, nt_idx:
            Global velocity / toroidal indices of the block's axes.

        Returns
        -------
        Stacked partial moments, shape ``(n_moments, nc, len(nt_idx))``
        — row 0 the field moment, row 1 the upwind moment, row 2 (EM
        runs only) the parallel current.
        """
        iv_idx = np.asarray(iv_idx)
        nt_idx = np.asarray(nt_idx)
        if h.shape[1] != iv_idx.size or h.shape[2] != nt_idx.size:
            raise InputError(
                f"block shape {h.shape} inconsistent with {iv_idx.size} iv / "
                f"{nt_idx.size} nt indices"
            )
        sel = np.ix_(iv_idx, nt_idx)
        rows = [
            np.einsum("cvt,vt->ct", h, self.field_weight[sel], optimize=True),
            np.einsum("cvt,vt->ct", h, self.upwind_weight[sel], optimize=True),
        ]
        if self.electromagnetic:
            rows.append(
                np.einsum("cvt,vt->ct", h, self.current_weight[sel], optimize=True)
            )
        return np.stack(rows)

    def assemble(
        self, summed_moments: np.ndarray, nt_idx: Sequence[int]
    ) -> FieldState:
        """Fields from fully-summed moments.

        ``summed_moments`` is the sum of :meth:`partial_moments` over
        the *complete* velocity space, shape ``(n_moments, nc,
        len(nt_idx))``.
        """
        nt_idx = np.asarray(nt_idx)
        if summed_moments.shape[0] != self.n_moments:
            raise InputError(
                f"expected {self.n_moments} moment rows, got "
                f"{summed_moments.shape[0]}"
            )
        phi = summed_moments[0] / self.dielectric[nt_idx][None, :]
        psi_u = summed_moments[1]
        apar = None
        if self.electromagnetic:
            apar = summed_moments[2] / self.apar_dielectric[nt_idx][None, :]
        return FieldState(phi=phi, psi_u=psi_u, apar=apar)

    def solve_serial(self, h_global: np.ndarray) -> FieldState:
        """Reference field solve on the full ``(nc, nv, nt)`` tensor."""
        d = self.dims
        if h_global.shape != (d.nc, d.nv, d.nt):
            raise InputError(f"expected global shape, got {h_global.shape}")
        moments = self.partial_moments(h_global, range(d.nv), range(d.nt))
        return self.assemble(moments, range(d.nt))
