"""Time-history recording of run diagnostics.

Collects the per-report physics (flux spectrum, field amplitudes) and
timing of a run into arrays — the ``out.cgyro.*`` time series a study
actually post-processes — with save/load to ``.npz`` and simple
analysis helpers (saturation detection, time averages).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.errors import InputError
from repro.cgyro.timing import ReportRow


class TimeHistory:
    """Accumulates report rows into analysable time series."""

    def __init__(self) -> None:
        self._rows: List[ReportRow] = []

    def append(self, row: ReportRow) -> None:
        """Record one reporting interval."""
        if self._rows and row.step <= self._rows[-1].step:
            raise InputError(
                f"non-monotonic report steps: {row.step} after "
                f"{self._rows[-1].step}"
            )
        if self._rows and row.flux.shape != self._rows[-1].flux.shape:
            raise InputError("flux spectrum shape changed mid-history")
        self._rows.append(row)

    def extend(self, rows: "List[ReportRow]") -> None:
        """Record several intervals."""
        for row in rows:
            self.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    # array views
    # ------------------------------------------------------------------
    @property
    def steps(self) -> np.ndarray:
        """Report step numbers, shape ``(n_reports,)``."""
        return np.array([r.step for r in self._rows], dtype=int)

    @property
    def times(self) -> np.ndarray:
        """Simulation times, shape ``(n_reports,)``."""
        return np.array([r.time for r in self._rows])

    @property
    def walls(self) -> np.ndarray:
        """Simulated wall seconds per interval."""
        return np.array([r.wall_s for r in self._rows])

    @property
    def flux(self) -> np.ndarray:
        """Flux spectra, shape ``(n_reports, nt)``."""
        if not self._rows:
            return np.zeros((0, 0))
        return np.stack([r.flux for r in self._rows])

    @property
    def phi2(self) -> np.ndarray:
        """Field amplitudes, shape ``(n_reports, nt)``."""
        if not self._rows:
            return np.zeros((0, 0))
        return np.stack([r.phi2 for r in self._rows])

    def category_series(self, category: str) -> np.ndarray:
        """Per-interval time of one phase category."""
        return np.array([r.categories.get(category, 0.0) for r in self._rows])

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def total_flux(self) -> np.ndarray:
        """Mode-summed flux per report, shape ``(n_reports,)``."""
        return self.flux.sum(axis=1)

    def mean_flux(self, *, last: int = 0) -> np.ndarray:
        """Time-averaged flux spectrum over the last ``last`` reports
        (0 = all)."""
        f = self.flux
        if f.shape[0] == 0:
            raise InputError("empty history")
        window = f[-last:] if last else f
        return window.mean(axis=0)

    def is_saturated(self, *, window: int = 3, rel_tol: float = 0.5) -> bool:
        """Heuristic saturation check on the total field amplitude.

        True when the relative spread of ``sum_n |phi|^2`` over the
        last ``window`` reports is below ``rel_tol``.
        """
        if len(self._rows) < window:
            return False
        tail = self.phi2.sum(axis=1)[-window:]
        mean = tail.mean()
        if mean == 0.0:
            return True
        return float(np.ptp(tail)) / mean < rel_tol

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the history to ``.npz``."""
        if not self._rows:
            raise InputError("refusing to save an empty history")
        categories = sorted({c for r in self._rows for c in r.categories})
        cat_matrix = np.array(
            [[r.categories.get(c, 0.0) for c in categories] for r in self._rows]
        )
        np.savez_compressed(
            path,
            steps=self.steps,
            times=self.times,
            walls=self.walls,
            flux=self.flux,
            phi2=self.phi2,
            categories=np.array(categories, dtype=object),
            category_times=cat_matrix,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TimeHistory":
        """Read a history written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise InputError(f"history file not found: {path}")
        hist = cls()
        with np.load(path, allow_pickle=True) as data:
            categories = [str(c) for c in data["categories"]]
            for i in range(len(data["steps"])):
                hist.append(
                    ReportRow(
                        step=int(data["steps"][i]),
                        time=float(data["times"][i]),
                        wall_s=float(data["walls"][i]),
                        categories={
                            c: float(data["category_times"][i, j])
                            for j, c in enumerate(categories)
                        },
                        flux=np.array(data["flux"][i]),
                        phi2=np.array(data["phi2"][i]),
                    )
                )
        return hist
