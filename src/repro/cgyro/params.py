"""Validated solver input (the ``input.cgyro`` equivalent).

:class:`CgyroInput` is the complete parameter set of one simulation.
It cleanly separates the two classes of inputs the paper's argument
rests on:

- **cmat-relevant** parameters (grid resolution, collision model, time
  step) — exposed via :meth:`CgyroInput.cmat_signature`;
- **sweep** parameters (gradient drives, ExB shear, box length,
  nonlinear flag, initial condition, drive coefficients) — changing
  these between ensemble members leaves the shared cmat valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import InputError
from repro.collision.params import DEFAULT_SPECIES, CollisionParams, SpeciesParams
from repro.collision.signature import CmatSignature
from repro.grid.dims import GridDims


@dataclass(frozen=True)
class CgyroInput:
    """All inputs of one simulation.

    Grid resolution
    ---------------
    ``n_radial, n_theta, n_energy, n_xi, n_species, n_toroidal`` as in
    :class:`~repro.grid.dims.GridDims`.

    Collision model (cmat-relevant)
    -------------------------------
    ``nu, energy_diff_coeff, flr_coeff, nu_profile_eps,
    conserve_momentum, species`` as in
    :class:`~repro.collision.params.CollisionParams`; plus ``delta_t``
    (baked into the implicit propagator).

    Physics drives (sweep parameters; cmat-irrelevant)
    --------------------------------------------------
    dlnndr, dlntdr:
        Per-species density/temperature gradient drives.
    gamma_e:
        ExB shear Doppler shift.
    nonadiabatic_delta:
        i-delta phase shift of the non-adiabatic electron response
        (resistive-drift-wave destabilisation knob).
    k_theta_rho:
        Poloidal wavenumber spacing per toroidal mode.
    drift_r_coeff:
        Radial component of the curvature drift (couples the drift to
        ``k_r sin(theta)``; breaks the radial-wavenumber degeneracy of
        the linear operator).
    beta_e:
        Electron plasma beta; 0 (default) runs electrostatic, > 0
        adds the A_parallel field via Ampere's law (electromagnetic
        runs, per the Sugama theory).  A sweep parameter: it does not
        enter cmat.
    drift_coeff, upwind_coeff, upwind_field_coeff, nl_coeff,
    lambda_debye, box_length:
        Model coefficients of the reduced solver.

    Numerics / run control
    ----------------------
    nonlinear:
        Enable the nl phase (quadratic toroidal bracket).
    steps_per_report:
        Time steps in one reporting interval (CGYRO's report cadence).
    amp, seed:
        Initial-condition amplitude and RNG seed.
    """

    name: str = "cgyro"
    # grid
    n_radial: int = 4
    n_theta: int = 8
    n_energy: int = 4
    n_xi: int = 8
    n_species: int = 2
    n_toroidal: int = 4
    # collision model (cmat-relevant)
    nu: float = 0.1
    energy_diff_coeff: float = 0.5
    flr_coeff: float = 0.01
    nu_profile_eps: float = 0.2
    conserve_momentum: bool = True
    conserve_energy: bool = False
    species: Tuple[SpeciesParams, ...] = field(default=DEFAULT_SPECIES)
    delta_t: float = 0.01
    # drives and model coefficients (sweep parameters)
    dlnndr: Tuple[float, ...] = (1.0, 1.0)
    dlntdr: Tuple[float, ...] = (3.0, 3.0)
    gamma_e: float = 0.0
    nonadiabatic_delta: float = 0.0
    k_theta_rho: float = 0.3
    drift_r_coeff: float = 0.25
    beta_e: float = 0.0
    drift_coeff: float = 0.5
    upwind_coeff: float = 0.5
    upwind_field_coeff: float = 0.02
    nl_coeff: float = 1.0
    lambda_debye: float = 1.0
    box_length: float = 1.0
    # numerics / run control
    nonlinear: bool = False
    steps_per_report: int = 10
    amp: float = 1e-3
    seed: int = 1

    def __post_init__(self) -> None:
        self.grid_dims()  # validates resolutions
        if len(self.species) != self.n_species:
            raise InputError(
                f"{len(self.species)} species defined but n_species={self.n_species}"
            )
        if len(self.dlnndr) != self.n_species or len(self.dlntdr) != self.n_species:
            raise InputError(
                "dlnndr/dlntdr must provide one value per species "
                f"(n_species={self.n_species})"
            )
        if self.delta_t <= 0:
            raise InputError(f"delta_t must be > 0, got {self.delta_t}")
        if self.steps_per_report < 1:
            raise InputError("steps_per_report must be >= 1")
        if self.k_theta_rho < 0:
            raise InputError("k_theta_rho must be >= 0")
        if self.lambda_debye <= 0:
            raise InputError("lambda_debye must be > 0")
        if self.upwind_coeff < 0 or self.upwind_field_coeff < 0:
            raise InputError("upwind coefficients must be >= 0")
        if self.beta_e < 0:
            raise InputError(f"beta_e must be >= 0, got {self.beta_e}")
        if self.amp <= 0:
            raise InputError("amp must be > 0")
        # CollisionParams re-validates its own fields:
        self.collision_params()

    # ------------------------------------------------------------------
    # derived objects
    # ------------------------------------------------------------------
    def grid_dims(self) -> GridDims:
        """Grid dimensions of this input."""
        return GridDims(
            n_radial=self.n_radial,
            n_theta=self.n_theta,
            n_energy=self.n_energy,
            n_xi=self.n_xi,
            n_species=self.n_species,
            n_toroidal=self.n_toroidal,
        )

    def collision_params(self) -> CollisionParams:
        """Collision-model parameters of this input."""
        return CollisionParams(
            nu=self.nu,
            energy_diff_coeff=self.energy_diff_coeff,
            flr_coeff=self.flr_coeff,
            nu_profile_eps=self.nu_profile_eps,
            conserve_momentum=self.conserve_momentum,
            conserve_energy=self.conserve_energy,
            species=self.species,
        )

    def cmat_signature(self) -> CmatSignature:
        """Fingerprint of every input influencing cmat."""
        return CmatSignature.from_parts(
            self.grid_dims(), self.collision_params(), self.delta_t
        )

    def with_updates(self, **overrides) -> "CgyroInput":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **overrides)
