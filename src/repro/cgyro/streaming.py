"""Streaming-phase right-hand side.

The str phase advances, per toroidal mode ``n`` and velocity point
``iv`` (species s, energy e, pitch xi):

    dh/dt = - vth_s vpar * d/dtheta [ h + (z_s/T_s) J phi ]      (parallel streaming)
            + c_up vth_s |vpar| * D2_theta h                     (upwind dissipation)
            - c_uf vth_s |vpar| J * D2_theta psi_u               (upwind field corr.)
            + i omega_star(iv, n) J phi                          (gradient drive)
            - i [ omega_d(ic, iv, n) + gamma_e n ] h             (drift + ExB shear)

with ``omega_star = (T_s/z_s) n k_theta_rho (dlnn_s + dlnt_s (e - 3/2))``
and the curvature drift
``omega_d = e [ c_d n k_theta_rho cos(theta) + c_r k_r sin(theta) ]``.
The theta derivative is why the str layout keeps nc complete;
everything else is pointwise.

The operator acts on arbitrary (iv, nt) index subsets so the serial
reference and every distributed rank run literally the same code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InputError
from repro.cgyro.fields import flr_table
from repro.cgyro.params import CgyroInput
from repro.grid.config_space import ConfigGrid
from repro.grid.dims import GridDims
from repro.grid.velocity import VelocityGrid


class StreamingOperator:
    """Precomputed per-(iv, n) tables and the RHS evaluation."""

    def __init__(
        self,
        inp: CgyroInput,
        dims: GridDims,
        vgrid: VelocityGrid,
        cgrid: ConfigGrid,
    ) -> None:
        self.inp = inp
        self.dims = dims
        self.vgrid = vgrid
        self.cgrid = cgrid
        spec = vgrid.flat_species()
        self.vth = np.array([inp.species[s].vth for s in spec])  # (nv,)
        self.vpar = vgrid.flat_vpar()
        self.abs_vpar = np.abs(self.vpar)
        self.zt = np.array(
            [inp.species[s].z / inp.species[s].temp for s in spec]
        )  # (nv,)
        self.energy = vgrid.flat_energy()
        self.j_table = flr_table(vgrid, inp.k_theta_rho, dims.nt)  # (nv, nt)
        n_modes = np.arange(dims.nt)
        dlnn = np.array([inp.dlnndr[s] for s in spec])
        dlnt = np.array([inp.dlntdr[s] for s in spec])
        # diamagnetic T/z factor: keeps ion and electron contributions to
        # the phi feedback loop from cancelling (z enters the field
        # moment weight, so omega_star must carry 1/z)
        t_over_z = np.array(
            [inp.species[s].temp / inp.species[s].z for s in spec]
        )
        #: omega_star drive table, shape (nv, nt)
        self.omega_star = np.outer(
            t_over_z * (dlnn + dlnt * (self.energy - 1.5)),
            inp.k_theta_rho * n_modes,
        )
        #: drift frequency radial profile factor cos(theta), shape (nc,)
        self.cos_theta = np.cos(cgrid.flat_theta())
        #: per-(iv, n) drift prefactor, shape (nv, nt)
        self.drift_vn = inp.drift_coeff * np.outer(
            self.energy, inp.k_theta_rho * n_modes
        )
        #: radial curvature-drift profile k_r * sin(theta), shape (nc,)
        self.drift_radial = (
            inp.drift_r_coeff
            * cgrid.flat_k_radial()
            * np.sin(cgrid.flat_theta())
        )
        #: ExB shear Doppler shift per mode, shape (nt,)
        self.shear_n = inp.gamma_e * n_modes

    def rhs(
        self,
        h: np.ndarray,
        phi: np.ndarray,
        psi_u: np.ndarray,
        iv_idx: Sequence[int],
        nt_idx: Sequence[int],
        apar: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Streaming RHS on an (iv, nt) subset.

        Parameters
        ----------
        h:
            State block, shape ``(nc, len(iv_idx), len(nt_idx))``.
        phi, psi_u:
            Fields from the solve, shape ``(nc, len(nt_idx))``.
        iv_idx, nt_idx:
            Global indices of the block's velocity / toroidal axes.
        apar:
            A_parallel field for electromagnetic runs (``None`` =
            electrostatic).  Enters through the generalised potential
            ``pot = phi - vth vpar apar`` in both the streamed
            ``chi`` and the gradient drive.
        """
        iv = np.asarray(iv_idx)
        nt = np.asarray(nt_idx)
        if h.shape != (self.dims.nc, iv.size, nt.size):
            raise InputError(
                f"h shape {h.shape} != ({self.dims.nc}, {iv.size}, {nt.size})"
            )
        if phi.shape != (self.dims.nc, nt.size) or psi_u.shape != phi.shape:
            raise InputError("phi/psi_u must have shape (nc, len(nt_idx))")
        if apar is not None and apar.shape != phi.shape:
            raise InputError("apar must have shape (nc, len(nt_idx))")
        inp = self.inp
        j = self.j_table[np.ix_(iv, nt)]  # (niv, nnt)
        vth = self.vth[iv][None, :, None]
        vpar = self.vpar[iv][None, :, None]
        avpar = self.abs_vpar[iv][None, :, None]

        # generalised potential: phi - vth vpar A_par (EM runs)
        if apar is not None:
            pot = phi[:, None, :] - vth * vpar * apar[:, None, :]
        else:
            pot = phi[:, None, :]

        # parallel streaming of chi = h + (z/T) J pot
        chi = h + self.zt[iv][None, :, None] * j[None, :, :] * pot
        out = -vth * vpar * self.cgrid.d_dtheta_centered(chi)
        # upwind dissipation on h
        out += inp.upwind_coeff * vth * avpar * self.cgrid.d_dtheta_upwind_diss(h)
        # upwind field correction (exercises the second str AllReduce)
        if inp.upwind_field_coeff != 0.0:
            diss_u = self.cgrid.d_dtheta_upwind_diss(psi_u)
            out -= (
                inp.upwind_field_coeff
                * vth
                * avpar
                * j[None, :, :]
                * diss_u[:, None, :]
            )
        # gradient drive (acts on the generalised potential)
        out += 1j * (self.omega_star[np.ix_(iv, nt)] * j)[None, :, :] * pot
        # drift (toroidal + radial curvature components) + ExB shear
        omega = (
            self.cos_theta[:, None, None] * self.drift_vn[np.ix_(iv, nt)][None, :, :]
            + self.drift_radial[:, None, None] * self.energy[iv][None, :, None]
            + self.shear_n[nt][None, None, :]
        )
        out -= 1j * omega * h
        return out
