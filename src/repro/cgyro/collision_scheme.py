"""Collision schemes: where cmat lives and how the coll phase runs.

The paper's change is architecturally small but precise: stock CGYRO
*reuses* the str-phase nv communicator (comm_1) for the coll phase —
same processes transpose, same processes hold cmat slices — while
XGYRO must *separate* the two, because the ensemble-wide coll
communicator contains more processes than any member's str
communicator (Figures 1 vs 3).

That separation is this interface.  A :class:`CollisionScheme` decides
(a) which ranks hold which cmat blocks, and (b) which communicator the
str<->coll transposes run on:

- :class:`PrivateCollisionScheme` — stock CGYRO: cmat distributed over
  the simulation's own comm_1 groups (``nc_loc = nc / P1`` per rank).
- ``repro.xgyro.shared_cmat.SharedCmatScheme`` — the paper's
  optimisation: one cmat distributed over *all* ensemble ranks
  (``nc / (k * P1')`` per rank), coll transposes on the ensemble-wide
  communicator.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict

import numpy as np

from repro.collision.cmat import (
    CmatPropagator,
    apply_flops,
    apply_propagator,
    cmat_block_bytes,
)
from repro.grid.transpose import transpose_coll_to_str, transpose_str_to_coll

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cgyro.solver import CgyroSimulation


class CollisionScheme(abc.ABC):
    """Strategy object for cmat placement and the coll phase."""

    @abc.abstractmethod
    def setup(self, sim: "CgyroSimulation") -> None:
        """Build/allocate this simulation's cmat share (called once)."""

    @abc.abstractmethod
    def step(self, sim: "CgyroSimulation") -> None:
        """Advance the collisional phase of ``sim`` in place."""

    @abc.abstractmethod
    def cmat_bytes_per_rank(self, sim: "CgyroSimulation") -> int:
        """Per-rank cmat footprint under this scheme."""


class PrivateCollisionScheme(CollisionScheme):
    """Stock CGYRO: per-simulation cmat on the comm_1 groups."""

    def __init__(self) -> None:
        self._cmat: Dict[int, np.ndarray] = {}

    def cmat_bytes_per_rank(self, sim: "CgyroSimulation") -> int:
        return cmat_block_bytes(sim.dims, sim.decomp.nc_loc, sim.decomp.nt_loc)

    def setup(self, sim: "CgyroSimulation") -> None:
        prop = CmatPropagator(sim.collision_operator, dt=sim.inp.delta_t)
        nbytes = self.cmat_bytes_per_rank(sim)
        for local_rank, world_rank in enumerate(sim.ranks):
            i1, i2 = sim.decomp.coords_of(local_rank)
            ic_idx = range(*sim.decomp.nc_slice(i1).indices(sim.dims.nc))
            n_idx = range(*sim.decomp.nt_slice(i2).indices(sim.dims.nt))
            sim.world.ledgers[world_rank].alloc("cmat", nbytes)
            self._cmat[world_rank] = prop.build(ic_idx, n_idx)
            sim.world.charge_compute(
                world_rank,
                flops=prop.build_flops(len(ic_idx), len(n_idx)),
                category="cmat_build",
            )

    def step(self, sim: "CgyroSimulation") -> None:
        decomp = sim.decomp
        # str -> coll on each comm_1 group (the reused communicator)
        coll_blocks: Dict[int, np.ndarray] = {}
        with sim.world.phase("coll_comm"):
            for comm in sim.comm1.values():
                coll_blocks.update(
                    transpose_str_to_coll(
                        comm, {r: sim.h[r] for r in comm.ranks}, decomp
                    )
                )
        # implicit collisional advance
        for world_rank in sim.ranks:
            coll_blocks[world_rank] = apply_propagator(
                self._cmat[world_rank], coll_blocks[world_rank]
            )
        sim.world.charge_compute(
            sim.ranks,
            flops=apply_flops(decomp.nc_loc, decomp.nt_loc, sim.dims.nv),
            category="coll_compute",
        )
        # coll -> str back on the same communicator
        with sim.world.phase("coll_comm"):
            for comm in sim.comm1.values():
                back = transpose_coll_to_str(
                    comm, {r: coll_blocks[r] for r in comm.ranks}, decomp
                )
                for r in comm.ranks:
                    sim.h[r] = back[r]
