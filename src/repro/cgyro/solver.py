"""The distributed CGYRO-like solver.

:class:`CgyroSimulation` runs one simulation on an ordered set of
world ranks in lockstep SPMD: per-rank STR-layout blocks are held in
``self.h`` (keyed by world rank), phases advance them through the
communicator structure of Figure 1:

- **str**: RK4 with a field solve per stage.  Velocity moments are
  accumulated in *chunks* of the local velocity space, with one
  AllReduce over the comm_1 group per chunk (pipelined partial-
  transform aggregation — CGYRO's ``field``/``upwind`` reductions).
  The per-rank call count therefore scales with ``nv_loc``, and each
  call's cost with the comm_1 group size — the interplay the paper's
  Figure 2 turns on (DESIGN.md section 5).
- **nl** (optional): str->nl AllToAll on comm_2, toroidal bracket,
  back.
- **coll**: delegated to the installed
  :class:`~repro.cgyro.collision_scheme.CollisionScheme` — the seam
  XGYRO replaces.

All per-rank buffers are registered in the machine's memory ledgers,
so memory questions ("does this fit on N nodes?") are measured, not
estimated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InputError, VmpiError
from repro.cgyro import costs
from repro.cgyro.collision_scheme import CollisionScheme, PrivateCollisionScheme
from repro.cgyro.diagnostics import flux_spectrum
from repro.cgyro.fields import FieldSolver, FieldState
from repro.cgyro.nonlinear import padded_length, toroidal_bracket
from repro.cgyro.params import CgyroInput
from repro.cgyro.reference import initial_condition
from repro.cgyro.streaming import StreamingOperator
from repro.cgyro.timing import ReportRow, delta, snapshot
from repro.collision import CollisionOperator
from repro.grid import (
    ConfigGrid,
    Decomposition,
    Layout,
    VelocityGrid,
    gather_global,
    scatter_global,
    transpose_nl_to_str,
    transpose_str_to_nl,
)
from repro.grid.layouts import block_nbytes, nc_nl_slice
from repro.vmpi import Communicator, VirtualWorld

#: Valid compute/comm overlap modes.  ``off`` is bit-identical to the
#: historical blocking schedule; ``str`` pipelines the field-solve
#: AllReduces (posted nonblocking, waited one chunk later); ``coll``
#: pipelines the ensemble collision AllToAlls against the propagator
#: applies (XGYRO only); ``full`` enables both.
OVERLAP_MODES = ("off", "str", "coll", "full")


class CgyroSimulation:
    """One simulation distributed over a set of world ranks.

    Parameters
    ----------
    world:
        The virtual world (shared with other ensemble members under
        XGYRO).
    ranks:
        Ordered world ranks of this simulation; local rank ``lr`` maps
        to ``ranks[lr]`` with the P1-fastest CGYRO ordering.
    inp:
        The validated input.
    collision_scheme:
        cmat placement/coll-phase strategy; defaults to the stock
        per-simulation :class:`PrivateCollisionScheme`.
    label:
        Communicator/report label; defaults to ``inp.name``.
    overlap:
        One of :data:`OVERLAP_MODES`.  ``"str"``/``"full"`` switch the
        field solve to the nonblocking pipelined schedule (one
        aggregated iallreduce per comm_1 group per chunk, posted before
        the next chunk's moment computation and waited at first use).
        Physics is bit-identical in every mode; only the modeled
        schedule (and hence cost attribution) changes.
    """

    def __init__(
        self,
        world: VirtualWorld,
        ranks: Sequence[int],
        inp: CgyroInput,
        *,
        collision_scheme: Optional[CollisionScheme] = None,
        label: Optional[str] = None,
        overlap: str = "off",
    ) -> None:
        if overlap not in OVERLAP_MODES:
            raise InputError(
                f"overlap must be one of {OVERLAP_MODES}, got {overlap!r}"
            )
        self.overlap = overlap
        self.world = world
        self.ranks: Tuple[int, ...] = tuple(int(r) for r in ranks)
        if len(set(self.ranks)) != len(self.ranks):
            raise VmpiError(f"duplicate ranks in simulation: {self.ranks}")
        self.inp = inp
        self.label = label or inp.name
        self.dims = inp.grid_dims()
        self.decomp = Decomposition.choose(self.dims, len(self.ranks))
        self.vgrid = VelocityGrid.build(self.dims)
        self.cgrid = ConfigGrid.build(self.dims, box_length=inp.box_length)
        self.fields = FieldSolver(inp, self.dims, self.vgrid)
        self.streaming = StreamingOperator(inp, self.dims, self.vgrid, self.cgrid)
        self.collision_operator = CollisionOperator(
            self.dims, self.vgrid, self.cgrid, inp.collision_params()
        )
        # communicators (Figure 1)
        self.comm_sim = Communicator(world, self.ranks, label=f"{self.label}.sim")
        self.comm1: Dict[int, Communicator] = {
            i2: self.comm_sim.sub(
                [self.ranks[lr] for lr in self.decomp.group_ranks(i2)],
                label=f"{self.label}.comm1.g{i2}",
            )
            for i2 in range(self.decomp.n_proc_2)
        }
        self.comm2: Dict[int, Communicator] = {
            i1: self.comm_sim.sub(
                [self.ranks[lr] for lr in self.decomp.cross_group_ranks(i1)],
                label=f"{self.label}.comm2.c{i1}",
            )
            for i1 in range(self.decomp.n_proc_1)
        }
        self._allocate_buffers()
        self.scheme: CollisionScheme = collision_scheme or PrivateCollisionScheme()
        self.scheme.setup(self)
        # initial state: scatter the deterministic global condition
        blocks = scatter_global(initial_condition(inp), Layout.STR, self.decomp)
        self.h: Dict[int, np.ndarray] = {
            self.ranks[lr]: blocks[lr] for lr in range(self.decomp.n_proc)
        }
        self.time = 0.0
        self.step_count = 0

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    def local_coords(self, world_rank: int) -> Tuple[int, int]:
        """Grid coordinates (i1, i2) of a member world rank."""
        return self.decomp.coords_of(self.comm_sim.comm_rank(world_rank))

    def iv_idx(self, world_rank: int) -> range:
        """Global velocity indices owned by ``world_rank`` (STR layout)."""
        i1, _ = self.local_coords(world_rank)
        return range(*self.decomp.nv_slice(i1).indices(self.dims.nv))

    def nt_idx(self, world_rank: int) -> range:
        """Global toroidal indices owned by ``world_rank``."""
        _, i2 = self.local_coords(world_rank)
        return range(*self.decomp.nt_slice(i2).indices(self.dims.nt))

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def _allocate_buffers(self) -> None:
        """Register the solver's per-rank state buffers in the ledgers.

        The buffer set mirrors CGYRO's: state, four RK stages, stage
        scratch, previous-step copy (error control), field arrays,
        moment accumulators, streaming factor tables, upwind scratch,
        the coll-layout workspace, and (nonlinear only) two NL-layout
        workspaces.
        """
        d, dec = self.dims, self.decomp
        str_bytes = block_nbytes(Layout.STR, dec)
        coll_bytes = block_nbytes(Layout.COLL, dec)
        # phi + psi_u (+ apar for electromagnetic runs)
        n_field_arrays = 3 if self.inp.beta_e > 0 else 2
        field_bytes = n_field_arrays * d.nc * dec.nt_loc * 16
        table_bytes = d.nc * dec.nv_loc * dec.nt_loc * 8
        sizes = {
            "h": str_bytes,
            "rk_stages": 4 * str_bytes,
            "stage_state": str_bytes,
            "h_prev": str_bytes,
            "fields": field_bytes,
            "moment_work": field_bytes,
            "stream_tables": table_bytes,
            "upwind_work": str_bytes,
            "coll_work": coll_bytes,
        }
        if self.inp.nonlinear:
            sizes["nl_work"] = 2 * block_nbytes(Layout.NL, dec)
        for world_rank in self.ranks:
            ledger = self.world.ledgers[world_rank]
            for name, nbytes in sizes.items():
                ledger.alloc(f"{self.label}.{name}", nbytes)

    def state_bytes_per_rank(self) -> int:
        """Non-cmat per-rank footprint (sum of registered state buffers)."""
        ledger = self.world.ledgers[self.ranks[0]]
        return sum(
            nbytes
            for name, nbytes in ledger.breakdown().items()
            if name.startswith(f"{self.label}.")
        )

    # ------------------------------------------------------------------
    # str phase
    # ------------------------------------------------------------------
    def _field_chunks(self) -> List[range]:
        """Local velocity-chunk index ranges for pipelined aggregation."""
        nv_loc = self.decomp.nv_loc
        chunk = min(nv_loc, self.dims.n_xi)
        return [range(lo, min(lo + chunk, nv_loc)) for lo in range(0, nv_loc, chunk)]

    def _solve_fields(
        self,
        state: Dict[int, np.ndarray],
        *,
        comm_category: str = "str_comm",
        compute_category: str = "str_compute",
    ) -> Dict[int, FieldState]:
        """Chunked, AllReduced field solve on the given STR-layout state.

        Returns a per-rank :class:`FieldState` (identical within each
        comm_1 group).  The category overrides let once-per-interval
        callers (diagnostics) attribute their charges outside the
        per-step phase timers.
        """
        d, dec = self.dims, self.decomp
        n_mom = self.fields.n_moments
        acc: Dict[int, np.ndarray] = {
            r: np.zeros((n_mom, d.nc, dec.nt_loc), dtype=np.complex128)
            for r in self.ranks
        }
        chunks = self._field_chunks()
        overlapped = self.overlap in ("str", "full")
        pending: List = []

        def drain() -> None:
            for req in pending:
                summed = req.wait()
                for r in summed:
                    acc[r] += summed[r]
            pending.clear()

        for chunk in chunks:
            partials: Dict[int, np.ndarray] = {}
            for r in self.ranks:
                iv_global = self.iv_idx(r)
                iv_sel = [iv_global[i] for i in chunk]
                partials[r] = self.fields.partial_moments(
                    state[r][:, chunk.start : chunk.stop, :], iv_sel, self.nt_idx(r)
                )
            self.world.charge_compute(
                self.ranks,
                flops=costs.MOMENT_FLOPS_PER_ELEMENT * d.nc * len(chunk) * dec.nt_loc,
                category=compute_category,
            )
            if overlapped:
                # wait the previous chunk's reductions (their cost has
                # been accruing under this chunk's moment compute), then
                # post this chunk's — one aggregated iallreduce per
                # comm_1 group carrying all moments at once.  The sum is
                # bit-identical: elementwise over ranks either way.
                drain()
                with self.world.phase(comm_category):
                    pending.extend(
                        comm.iallreduce({r: partials[r] for r in comm.ranks})
                        for comm in self.comm1.values()
                    )
            else:
                # each moment is reduced separately, as in CGYRO
                with self.world.phase(comm_category):
                    for moment in range(n_mom):
                        for comm in self.comm1.values():
                            summed = comm.allreduce(
                                {r: partials[r][moment] for r in comm.ranks}
                            )
                            for r in comm.ranks:
                                acc[r][moment] += summed[r]
        drain()
        fields: Dict[int, FieldState] = {}
        for r in self.ranks:
            fields[r] = self.fields.assemble(acc[r], self.nt_idx(r))
        self.world.charge_compute(
            self.ranks,
            flops=costs.FIELD_SOLVE_FLOPS_PER_ELEMENT * d.nc * dec.nt_loc,
            category=compute_category,
        )
        return fields

    def _streaming_rhs(
        self, state: Dict[int, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """Field solve + RHS evaluation for one RK stage."""
        fields = self._solve_fields(state)
        rhs: Dict[int, np.ndarray] = {}
        for r in self.ranks:
            f = fields[r]
            rhs[r] = self.streaming.rhs(
                state[r],
                f.phi,
                f.psi_u,
                self.iv_idx(r),
                self.nt_idx(r),
                apar=f.apar,
            )
        d, dec = self.dims, self.decomp
        self.world.charge_compute(
            self.ranks,
            flops=costs.RHS_FLOPS_PER_ELEMENT * d.nc * dec.nv_loc * dec.nt_loc,
            category="str_compute",
        )
        return rhs

    def streaming_phase(self) -> None:
        """RK4 advance of the streaming phase (in place)."""
        dt = self.inp.delta_t
        h = self.h
        k1 = self._streaming_rhs(h)
        k2 = self._streaming_rhs({r: h[r] + 0.5 * dt * k1[r] for r in self.ranks})
        k3 = self._streaming_rhs({r: h[r] + 0.5 * dt * k2[r] for r in self.ranks})
        k4 = self._streaming_rhs({r: h[r] + dt * k3[r] for r in self.ranks})
        for r in self.ranks:
            self.h[r] = h[r] + (dt / 6.0) * (
                k1[r] + 2.0 * k2[r] + 2.0 * k3[r] + k4[r]
            )
        d, dec = self.dims, self.decomp
        self.world.charge_compute(
            self.ranks,
            flops=costs.RK_COMBINE_FLOPS_PER_ELEMENT
            * d.nc
            * dec.nv_loc
            * dec.nt_loc
            * 4,
            category="str_compute",
        )

    # ------------------------------------------------------------------
    # nl phase
    # ------------------------------------------------------------------
    def nonlinear_phase(self) -> None:
        """Split-step toroidal bracket via the comm_2 transposes."""
        if not self.inp.nonlinear:
            return
        d, dec = self.dims, self.decomp
        fields = self._solve_fields(self.h)
        # move h and phi to the NL layout (nt complete)
        with self.world.phase("nl_comm"):
            h_nl: Dict[int, np.ndarray] = {}
            phi_nl: Dict[int, np.ndarray] = {}
            for comm in self.comm2.values():
                h_nl.update(
                    transpose_str_to_nl(comm, {r: self.h[r] for r in comm.ranks}, dec)
                )
                send = {
                    r: [
                        fields[r].phi[nc_nl_slice(dec, j), :]
                        for j in range(comm.size)
                    ]
                    for r in comm.ranks
                }
                recv = comm.alltoall(send)
                for r in comm.ranks:
                    phi_nl[r] = np.concatenate(recv[r], axis=1)
        k_r = self.cgrid.flat_k_radial()
        dt = self.inp.delta_t
        padded = padded_length(d.nt)
        for r in self.ranks:
            _, i2 = self.local_coords(r)
            sl = nc_nl_slice(dec, i2)
            bracket = toroidal_bracket(
                h_nl[r],
                phi_nl[r],
                k_r[sl],
                k_theta_rho=self.inp.k_theta_rho,
                nl_coeff=self.inp.nl_coeff,
            )
            h_nl[r] = h_nl[r] + dt * bracket
        self.world.charge_compute(
            self.ranks,
            flops=costs.bracket_flops(
                d.nc // dec.n_proc_2, dec.nv_loc, d.nt, padded
            ),
            category="nl_compute",
        )
        with self.world.phase("nl_comm"):
            for comm in self.comm2.values():
                back = transpose_nl_to_str(
                    comm, {r: h_nl[r] for r in comm.ranks}, dec
                )
                for r in comm.ranks:
                    self.h[r] = back[r]

    # ------------------------------------------------------------------
    # full step and reporting
    # ------------------------------------------------------------------
    def collision_phase(self) -> None:
        """Advance the collisional phase via the installed scheme."""
        self.scheme.step(self)

    def step(self) -> None:
        """One full time step: str -> nl -> coll."""
        with self.world.span(
            f"{self.label}.str", "phase", ranks=self.ranks, category="str_compute"
        ):
            self.streaming_phase()
        if self.inp.nonlinear:
            with self.world.span(
                f"{self.label}.nl", "phase", ranks=self.ranks, category="nl_compute"
            ):
                self.nonlinear_phase()
        with self.world.span(
            f"{self.label}.coll", "phase", ranks=self.ranks, category="coll_compute"
        ):
            self.collision_phase()
        self.time += self.inp.delta_t
        self.step_count += 1

    def diagnostics(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flux spectrum Q(n) and field amplitude |phi|^2(n), global.

        One small AllReduce over the whole simulation communicator
        (CGYRO's per-report diagnostics cadence).
        """
        d, dec = self.dims, self.decomp
        fields = self._solve_fields(
            self.h, comm_category="diag", compute_category="diag"
        )
        partials: Dict[int, np.ndarray] = {}
        for r in self.ranks:
            nt_sel = self.nt_idx(r)
            phi_r = fields[r].phi
            q_local = flux_spectrum(
                self.h[r],
                phi_r,
                self.fields,
                self.iv_idx(r),
                nt_sel,
                k_theta_rho=self.inp.k_theta_rho,
            )
            # phi is replicated across the P1 group: weight it down
            p2_local = (np.abs(phi_r) ** 2).sum(axis=0) / dec.n_proc_1
            padded = np.zeros((2, d.nt))
            padded[0, nt_sel.start : nt_sel.stop] = q_local
            padded[1, nt_sel.start : nt_sel.stop] = p2_local
            partials[r] = padded
        self.world.charge_compute(
            self.ranks,
            flops=costs.DIAG_FLOPS_PER_ELEMENT * d.nc * dec.nv_loc * dec.nt_loc,
            category="diag",
        )
        with self.world.phase("diag"):
            summed = self.comm_sim.allreduce(partials)
        result = summed[self.ranks[0]]
        return result[0], result[1]

    def run_report_interval(self) -> ReportRow:
        """Advance ``steps_per_report`` steps and report timings + physics."""
        before = snapshot(self.world, self.ranks)
        for _ in range(self.inp.steps_per_report):
            with self.world.span(
                f"{self.label}.step{self.step_count}",
                "step",
                ranks=self.ranks,
            ):
                self.step()
        with self.world.span(
            f"{self.label}.diag", "phase", ranks=self.ranks, category="diag"
        ):
            flux, phi2 = self.diagnostics()
        after = snapshot(self.world, self.ranks)
        diff = delta(after, before)
        wall = diff.pop("elapsed")
        return ReportRow(
            step=self.step_count,
            time=self.time,
            wall_s=wall,
            categories=diff,
            flux=flux,
            phi2=phi2,
        )

    def run(self, n_reports: int) -> List[ReportRow]:
        """Run ``n_reports`` reporting intervals."""
        if n_reports < 0:
            raise InputError(f"n_reports must be >= 0, got {n_reports}")
        return [self.run_report_interval() for _ in range(n_reports)]

    # ------------------------------------------------------------------
    # checkpoint / restart
    # ------------------------------------------------------------------
    def save_checkpoint(self, path) -> None:
        """Write a rank-count-portable checkpoint of this simulation."""
        from repro.cgyro.restart import save_checkpoint

        save_checkpoint(
            path, self.gather_h(), self.inp, step=self.step_count, time=self.time
        )

    def load_checkpoint(self, path) -> None:
        """Resume from a checkpoint (validates physics compatibility)."""
        from repro.cgyro.restart import load_checkpoint

        h_global, step, time = load_checkpoint(path, self.inp)
        blocks = scatter_global(h_global, Layout.STR, self.decomp)
        for lr in range(self.decomp.n_proc):
            self.h[self.ranks[lr]] = blocks[lr]
        self.step_count = step
        self.time = time

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def gather_h(self) -> np.ndarray:
        """Assemble the global ``(nc, nv, nt)`` state (test/diagnostic)."""
        blocks = [self.h[self.ranks[lr]] for lr in range(self.decomp.n_proc)]
        return gather_global(blocks, Layout.STR, self.decomp)

    def memory_report(self) -> str:
        """Memory breakdown of this simulation's first rank."""
        return self.world.ledgers[self.ranks[0]].report()
