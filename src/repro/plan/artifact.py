"""The ``Plan`` artifact: a tuned job geometry, serialisable byte-stably.

A plan is the autotuner's output contract: everything the campaign
layer needs to launch the tuned job —

- the ensemble size ``k`` and node geometry (count *and* the specific
  physical node ids, because on a heterogeneous machine *which* nodes
  matters as much as how many);
- the collective algorithms to pin on the job world;
- the (possibly unbalanced) ``CollShard`` nc split of the shared
  tensor, or ``None`` for the balanced default.

Serialisation is byte-stable: ``to_json`` sorts keys, uses a fixed
indent, and contains no timestamps or environment-dependent values, so
re-running the planner with the same seed reproduces the file exactly
(asserted by a hypothesis test).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.errors import PlanError

#: Format tag stamped into every plan file.
PLAN_FORMAT = "repro-plan-v1"


@dataclass(frozen=True)
class PlanChoice:
    """One point of the autotuner's design space — a launchable geometry.

    ``nodes`` are *physical* node ids on the planning machine, in the
    order member rank blocks are laid onto them (block placement).
    ``nc_counts`` is the per-coll-comm-rank shard-size vector (length
    ``k * P1``) or ``None`` for the balanced split.  ``overlap`` is the
    step schedule (one of :data:`~repro.cgyro.solver.OVERLAP_MODES`):
    ``"off"`` is the blocking schedule, the pipelined modes hide
    collective cost under compute — physics-neutral either way, so the
    autotuner is free to search over it.
    """

    k: int
    n_nodes: int
    nodes: Tuple[int, ...]
    ranks_per_member: int
    allreduce: str = "ring"
    alltoall: str = "pairwise"
    nc_counts: Optional[Tuple[int, ...]] = None
    overlap: str = "off"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise PlanError(f"k must be >= 1, got {self.k}")
        if self.n_nodes < 1:
            raise PlanError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if len(self.nodes) != self.n_nodes:
            raise PlanError(
                f"nodes list has {len(self.nodes)} entries, expected "
                f"n_nodes={self.n_nodes}"
            )
        if len(set(self.nodes)) != len(self.nodes):
            raise PlanError(f"plan nodes must be distinct, got {self.nodes}")
        if self.ranks_per_member < 1:
            raise PlanError(
                f"ranks_per_member must be >= 1, got {self.ranks_per_member}"
            )
        from repro.cgyro.solver import OVERLAP_MODES

        if self.overlap not in OVERLAP_MODES:
            raise PlanError(
                f"overlap must be one of {OVERLAP_MODES}, got {self.overlap!r}"
            )
        if self.nc_counts is not None:
            object.__setattr__(
                self, "nc_counts", tuple(int(c) for c in self.nc_counts)
            )
        object.__setattr__(self, "nodes", tuple(int(n) for n in self.nodes))

    @property
    def n_ranks(self) -> int:
        """Total ranks of the planned job."""
        return self.k * self.ranks_per_member

    @property
    def is_unbalanced(self) -> bool:
        """True when the nc split deviates from the balanced one."""
        if self.nc_counts is None:
            return False
        return max(self.nc_counts) - min(self.nc_counts) > 1

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form."""
        return {
            "k": self.k,
            "n_nodes": self.n_nodes,
            "nodes": list(self.nodes),
            "ranks_per_member": self.ranks_per_member,
            "allreduce": self.allreduce,
            "alltoall": self.alltoall,
            "nc_counts": None if self.nc_counts is None else list(self.nc_counts),
            "overlap": self.overlap,
        }

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "PlanChoice":
        """Inverse of :meth:`to_dict`."""
        try:
            counts = d.get("nc_counts")
            return PlanChoice(
                k=int(d["k"]),
                n_nodes=int(d["n_nodes"]),
                nodes=tuple(int(n) for n in d["nodes"]),
                ranks_per_member=int(d["ranks_per_member"]),
                allreduce=str(d.get("allreduce", "ring")),
                alltoall=str(d.get("alltoall", "pairwise")),
                nc_counts=None if counts is None else tuple(int(c) for c in counts),
                overlap=str(d.get("overlap", "off")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanError(f"malformed plan choice: {exc}") from exc


@dataclass(frozen=True)
class Plan:
    """The full autotuner artifact: choice + provenance + predictions.

    ``signature_key`` is the content hash of the shared tensor the plan
    was tuned for (``CmatSignature.content_hash()``); the packer only
    applies the plan to batches with a matching key.  ``rounds`` is how
    many sequential jobs of ``choice.k`` members serve the
    ``n_members`` originally requested.
    """

    machine_name: str
    input_name: str
    signature_key: str
    n_members: int
    steps_per_report: int
    choice: PlanChoice
    predicted_s: float
    default_predicted_s: float
    predicted_breakdown: Dict[str, float] = field(default_factory=dict)
    seed: int = 0
    method: str = "exhaustive"
    n_evaluated: int = 0

    @property
    def rounds(self) -> int:
        """Sequential jobs needed to serve all requested members."""
        return -(-self.n_members // self.choice.k)

    @property
    def predicted_speedup(self) -> float:
        """Tuned-over-default predicted makespan ratio (>1 = faster)."""
        if self.predicted_s <= 0:
            return float("inf")
        return self.default_predicted_s / self.predicted_s

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (sorted breakdown, format-tagged)."""
        return {
            "format": PLAN_FORMAT,
            "machine_name": self.machine_name,
            "input_name": self.input_name,
            "signature_key": self.signature_key,
            "n_members": self.n_members,
            "steps_per_report": self.steps_per_report,
            "choice": self.choice.to_dict(),
            "predicted_s": float(self.predicted_s),
            "default_predicted_s": float(self.default_predicted_s),
            "predicted_breakdown": {
                k: float(v) for k, v in sorted(self.predicted_breakdown.items())
            },
            "seed": self.seed,
            "method": self.method,
            "n_evaluated": self.n_evaluated,
        }

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "Plan":
        """Inverse of :meth:`to_dict`, validating the format tag."""
        if d.get("format") != PLAN_FORMAT:
            raise PlanError(
                f"not a {PLAN_FORMAT} document (format={d.get('format')!r})"
            )
        try:
            return Plan(
                machine_name=str(d["machine_name"]),
                input_name=str(d["input_name"]),
                signature_key=str(d["signature_key"]),
                n_members=int(d["n_members"]),
                steps_per_report=int(d["steps_per_report"]),
                choice=PlanChoice.from_dict(d["choice"]),
                predicted_s=float(d["predicted_s"]),
                default_predicted_s=float(d["default_predicted_s"]),
                predicted_breakdown={
                    str(k): float(v)
                    for k, v in d.get("predicted_breakdown", {}).items()
                },
                seed=int(d.get("seed", 0)),
                method=str(d.get("method", "exhaustive")),
                n_evaluated=int(d.get("n_evaluated", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanError(f"malformed plan document: {exc}") from exc

    def to_json(self) -> str:
        """Byte-stable JSON (sorted keys, fixed indent, no timestamps)."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def save(self, path: Union[str, Path]) -> None:
        """Write the plan file."""
        Path(path).write_text(self.to_json())


def load_plan(path: Union[str, Path]) -> Plan:
    """Load a plan file, validating format and structure."""
    p = Path(path)
    if not p.is_file():
        raise PlanError(f"plan file not found: {p}")
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise PlanError(f"{p}: not valid JSON ({exc})") from exc
    return Plan.from_dict(doc)
