"""Heterogeneity- and unbalance-aware makespan prediction for a plan.

The closed-form predictor :mod:`repro.perf.analytic` assumes identical
members and a balanced shard map, which is exact on a homogeneous
machine.  The planner needs the generalisation: members sit on node
sets with different compute speeds, the shared tensor's shards may be
deliberately unequal, and the collective algorithms are themselves
knobs.  This module mirrors the executed solver's charging structure
(same collective counts, message sizes, and flop formulas) but
evaluates it per member / per toroidal group / per shard on the
:meth:`~repro.machine.model.MachineModel.submachine` of the plan's
nodes:

    interval ≈ steps x [ max_m (str_m + nl_m)           (member phases)
                         + max_g coll_comm_g            (ensemble sync)
                         + max_j coll_compute_j ]       (shard apply)
               + max_m diag_m                           (once/interval)

On a homogeneous machine with balanced counts every max degenerates to
the common value and the prediction coincides with
:func:`repro.perf.analytic.predict_xgyro_interval` (tested).  On a
heterogeneous machine the maxima express the straggler effects the
tuner exploits: a slow node gates ``str``, and a balanced shard map
makes its shard gate ``coll_compute`` — unless the plan shrinks it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cgyro import costs
from repro.cgyro.nonlinear import padded_length
from repro.cgyro.params import CgyroInput
from repro.collision.cmat import apply_flops
from repro.errors import PlanError
from repro.grid.decomp import Decomposition
from repro.machine.model import MachineModel
from repro.machine.placement import BlockPlacement
from repro.plan.artifact import PlanChoice
from repro.vmpi.algorithms import AllreduceAlgorithm, AlltoallAlgorithm
from repro.vmpi.cost import CommCostModel
from repro.xgyro.partition import ensemble_nc_counts


@dataclass
class PlanPrediction:
    """Predicted per-interval wall time and its category breakdown.

    Categories carry the *gating* (max) value per phase, so their sum
    equals :attr:`makespan` — the serial phase chain the lockstep
    ensemble executes.  Under an overlapped schedule the comm
    categories hold only the *exposed* remainder; the hidden portion is
    reported separately in :attr:`overlapped_s` (informational — it
    occupies no extra timeline, so it is never part of the sum).
    """

    categories: Dict[str, float] = field(default_factory=dict)
    overlapped_s: float = 0.0

    @property
    def makespan(self) -> float:
        """Predicted wall seconds of one reporting interval."""
        return sum(self.categories.values())


def algorithms_of(choice: PlanChoice):
    """Resolve the plan's algorithm names to the vmpi enums."""
    try:
        ar = AllreduceAlgorithm(choice.allreduce)
    except ValueError as exc:
        raise PlanError(
            f"unknown allreduce algorithm {choice.allreduce!r} "
            f"(choose from {[a.value for a in AllreduceAlgorithm]})"
        ) from exc
    try:
        a2a = AlltoallAlgorithm(choice.alltoall)
    except ValueError as exc:
        raise PlanError(
            f"unknown alltoall algorithm {choice.alltoall!r} "
            f"(choose from {[a.value for a in AlltoallAlgorithm]})"
        ) from exc
    return ar, a2a


def predict_plan_interval(
    inp: CgyroInput,
    machine: MachineModel,
    choice: PlanChoice,
    *,
    include_diag: bool = True,
) -> PlanPrediction:
    """Predicted wall time of one reporting interval under ``choice``.

    ``machine`` is the *whole* planning machine; the job is modeled on
    ``machine.submachine(choice.nodes)`` with block placement, exactly
    how :class:`~repro.campaign.runner.CampaignRunner` dispatches it.
    """
    sub = machine.submachine(choice.nodes)
    n_ranks = choice.n_ranks
    if n_ranks > sub.n_ranks:
        raise PlanError(
            f"plan needs {n_ranks} ranks but its {choice.n_nodes} node(s) "
            f"host only {sub.n_ranks}"
        )
    dims = inp.grid_dims()
    decomp = Decomposition.choose(dims, choice.ranks_per_member)
    k = choice.k
    group = k * decomp.n_proc_1
    if choice.nc_counts is not None:
        counts = choice.nc_counts
        if len(counts) != group or sum(counts) != dims.nc or min(counts) < 1:
            raise PlanError(
                f"nc_counts must be {group} positive entries summing to "
                f"nc={dims.nc}, got {counts}"
            )
    else:
        counts = ensemble_nc_counts(decomp, k)
    ar_algo, a2a_algo = algorithms_of(choice)
    placement = BlockPlacement(sub, n_ranks)
    cm = CommCostModel(
        sub, placement, default_allreduce=ar_algo, default_alltoall=a2a_algo
    )

    def speed(rank: int) -> float:
        return sub.speed_of(placement.node_of(rank))

    steps = inp.steps_per_report
    per_member = choice.ranks_per_member
    n_chunks = -(-decomp.nv_loc // min(decomp.nv_loc, inp.n_xi))
    n_moments = 3 if inp.beta_e > 0 else 2
    ar_bytes = dims.nc * decomp.nt_loc * 16
    elements = dims.nc * decomp.nv_loc * decomp.nt_loc
    block_bytes = elements * 16

    # ---- str phase: per (member, toroidal group), worst group gates --
    str_flops = (
        4 * costs.RHS_FLOPS_PER_ELEMENT * elements
        + 4 * costs.MOMENT_FLOPS_PER_ELEMENT * elements
        + 4 * costs.FIELD_SOLVE_FLOPS_PER_ELEMENT * dims.nc * decomp.nt_loc
        + 4 * costs.RK_COMBINE_FLOPS_PER_ELEMENT * elements
    )
    if inp.nonlinear:  # nl's extra field solve is charged to str
        str_flops += (
            costs.MOMENT_FLOPS_PER_ELEMENT * elements
            + costs.FIELD_SOLVE_FLOPS_PER_ELEMENT * dims.nc * decomp.nt_loc
        )
    str_over = choice.overlap in ("str", "full")
    coll_over = choice.overlap in ("coll", "full")
    solves = 5 if inp.nonlinear else 4
    member_str_comm: List[float] = []
    member_str_compute: List[float] = []
    member_str_hidden: List[float] = []
    member_ar_worst: List[float] = []
    for m in range(k):
        offset = m * per_member
        worst_comm = 0.0
        worst_total = 0.0
        worst_hidden = 0.0
        worst_ar = 0.0
        for i2 in range(decomp.n_proc_2):
            g_ranks = [
                offset + decomp.local_rank_of(i1, i2)
                for i1 in range(decomp.n_proc_1)
            ]
            ar_cost = cm.collective_cost("allreduce", g_ranks, ar_bytes)
            compute = str_flops / (sub.flops_per_rank * min(map(speed, g_ranks)))
            hidden = 0.0
            if str_over:
                # one aggregated all-moments AllReduce per chunk, each
                # (except the last) hidden under the next chunk's
                # moment partials
                c_agg = cm.collective_cost(
                    "allreduce", g_ranks, n_moments * ar_bytes
                )
                chunk_comp = (
                    costs.MOMENT_FLOPS_PER_ELEMENT * elements / n_chunks
                ) / (sub.flops_per_rank * min(map(speed, g_ranks)))
                hidden = solves * (n_chunks - 1) * min(c_agg, chunk_comp)
                comm = solves * n_chunks * c_agg - hidden
            else:
                comm = solves * n_chunks * n_moments * ar_cost
            if comm + compute > worst_total:
                worst_total = comm + compute
                worst_comm = comm
                worst_hidden = hidden
            worst_ar = max(worst_ar, ar_cost)
        member_str_comm.append(worst_comm)
        member_str_compute.append(worst_total - worst_comm)
        member_str_hidden.append(worst_hidden)
        member_ar_worst.append(worst_ar)

    # ---- nl phase: per member, worst comm_2 group gates --------------
    member_nl: List[float] = [0.0] * k
    if inp.nonlinear:
        nl_flops = costs.bracket_flops(
            dims.nc // decomp.n_proc_2,
            decomp.nv_loc,
            dims.nt,
            padded_length(dims.nt),
        )
        phi_bytes = dims.nc * decomp.nt_loc * 16
        for m in range(k):
            offset = m * per_member
            worst = 0.0
            for i1 in range(decomp.n_proc_1):
                g_ranks = [
                    offset + decomp.local_rank_of(i1, i2)
                    for i2 in range(decomp.n_proc_2)
                ]
                a2a = cm.collective_cost("alltoall", g_ranks, block_bytes)
                phi = cm.collective_cost("alltoall", g_ranks, phi_bytes)
                comm = 2 * a2a + phi
                compute = nl_flops / (
                    sub.flops_per_rank * min(map(speed, g_ranks))
                )
                worst = max(worst, comm + compute)
            member_nl[m] = worst

    # ---- coll phase: ensemble-wide, every group syncs every step -----
    coll_comm = 0.0
    coll_compute = 0.0
    coll_hidden = 0.0
    for i2 in range(decomp.n_proc_2):
        e_ranks = [
            m * per_member + decomp.local_rank_of(i1, i2)
            for m in range(k)
            for i1 in range(decomp.n_proc_1)
        ]
        t_apply = 0.0
        for j, r in enumerate(e_ranks):
            t = k * apply_flops(counts[j], decomp.nt_loc, dims.nv) / (
                sub.flops_per_rank * speed(r)
            )
            t_apply = max(t_apply, t)
        if coll_over and min(counts) >= 2:
            # T sub-exchanges per direction over chunked ic rows, all
            # forwards posted up front and inverses waited at scatter:
            # only the head forward and tail inverse windows are
            # exposed, the other 2T-2 hide under the chunked applies
            T = min(4, min(counts))
            c_sub = cm.collective_cost("alltoall", e_ranks, block_bytes // T)
            hidden_g = (2 * T - 2) * min(c_sub, t_apply / T)
            comm_g = 2 * T * c_sub - hidden_g
        else:
            hidden_g = 0.0
            comm_g = 2 * cm.collective_cost("alltoall", e_ranks, block_bytes)
        if comm_g > coll_comm:
            coll_comm = comm_g
            coll_hidden = hidden_g
        coll_compute = max(coll_compute, t_apply)

    out = {
        "str_comm": steps * max(member_str_comm),
        "str_compute": steps * max(member_str_compute),
        "nl": steps * max(member_nl),
        "coll_comm": steps * coll_comm,
        "coll_compute": steps * coll_compute,
        "diag": 0.0,
    }
    overlapped_s = steps * (max(member_str_hidden) + coll_hidden)

    # ---- diagnostics: once per interval, concurrent across members ---
    if include_diag:
        diag_flops = (
            costs.DIAG_FLOPS_PER_ELEMENT * elements
            + costs.MOMENT_FLOPS_PER_ELEMENT * elements
            + costs.FIELD_SOLVE_FLOPS_PER_ELEMENT * dims.nc * decomp.nt_loc
        )
        worst = 0.0
        for m in range(k):
            offset = m * per_member
            sim_ranks = list(range(offset, offset + per_member))
            t = (
                n_chunks * n_moments * member_ar_worst[m]
                + cm.collective_cost("allreduce", sim_ranks, 2 * dims.nt * 8)
                + diag_flops
                / (sub.flops_per_rank * min(map(speed, sim_ranks)))
            )
            worst = max(worst, t)
        out["diag"] = worst
    return PlanPrediction(out, overlapped_s=overlapped_s)
