"""The planner: search the design space, emit a Plan, validate it.

``Planner.plan(seed)`` is the entry point.  At small scale every base
candidate is evaluated (method ``exhaustive``); beyond
``exhaustive_limit`` the base geometries are scanned with default
algorithms and the best is refined by the seeded annealer (method
``anneal``), whose nc-shift moves discover the fine-grained unbalanced
splits enumeration cannot cover.  Both paths are fully deterministic
for a given (machine, input, n_members, seed).

``validate_plan`` then *runs* the planned job on the virtual machine —
the same :class:`~repro.xgyro.driver.XgyroEnsemble` dispatch the
campaign layer uses — and reports the predicted-vs-actual makespan
error, the honesty check every emitted plan carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cgyro.params import CgyroInput
from repro.errors import PlanError
from repro.grid.decomp import Decomposition
from repro.machine.model import MachineModel
from repro.plan.anneal import anneal
from repro.plan.artifact import Plan, PlanChoice
from repro.plan.predict import algorithms_of, predict_plan_interval
from repro.plan.space import (
    enumerate_candidates,
    feasible_geometries,
    fits_memory,
)
from repro.vmpi.world import VirtualWorld
from repro.xgyro.driver import XgyroEnsemble


def member_inputs(inp: CgyroInput, k: int) -> List[CgyroInput]:
    """k sweep variants of ``inp`` that legally share one cmat.

    Members differ only in the temperature-gradient drive (a sweep
    parameter, invisible to the cmat signature) and their name — the
    parameter-scan shape the paper's ensembles run.
    """
    if k < 1:
        raise PlanError(f"k must be >= 1, got {k}")
    return [
        inp.with_updates(
            name=f"{inp.name}.m{m}",
            dlntdr=tuple(v + 0.01 * m for v in inp.dlntdr),
        )
        for m in range(k)
    ]


def max_shard_points(
    machine: MachineModel, inp: CgyroInput, decomp: Decomposition
) -> int:
    """Largest shard (in configuration points) one rank can hold.

    Binary search over the same ledger probe the packer uses; this is
    the cap the annealer's unbalancing moves must respect so a tuned
    plan can never OOM at dispatch.
    """
    nc = inp.grid_dims().nc
    if not fits_memory(machine, inp, decomp, 1):
        return 0
    lo, hi = 1, nc
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits_memory(machine, inp, decomp, mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


class Planner:
    """Searches (k, nodes, algorithms, nc split) for one request group.

    Parameters
    ----------
    machine:
        The whole (possibly heterogeneous) machine.
    inp:
        The representative member input (members of the planned jobs
        are sweep variants of it; the cmat signature is shared).
    n_members:
        Total members to serve.  The objective is
        ``rounds(k) * predicted interval makespan`` — a smaller-k plan
        pays for its extra sequential rounds.
    available_nodes:
        Allocatable node ids (default: all) — pass the packer's view to
        plan around quarantined hardware.
    exhaustive_limit:
        Candidate-count threshold below which every base candidate is
        evaluated; above it the annealer refines the best geometry.
    anneal_iterations:
        Annealer move budget (only the beyond-exhaustive path).
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; the search emits
        ``plan_*`` metrics and a ``plan.search`` marker span.
    """

    def __init__(
        self,
        machine: MachineModel,
        inp: CgyroInput,
        n_members: int,
        *,
        available_nodes: Optional[Sequence[int]] = None,
        exhaustive_limit: int = 512,
        anneal_iterations: int = 400,
        telemetry=None,
    ) -> None:
        if n_members < 1:
            raise PlanError(f"n_members must be >= 1, got {n_members}")
        self.machine = machine
        self.inp = inp
        self.n_members = int(n_members)
        self.available_nodes = (
            list(range(machine.n_nodes))
            if available_nodes is None
            else list(available_nodes)
        )
        self.exhaustive_limit = int(exhaustive_limit)
        self.anneal_iterations = int(anneal_iterations)
        self.telemetry = telemetry
        self._n_evaluated = 0

    # ------------------------------------------------------------------
    def rounds(self, k: int) -> int:
        """Sequential jobs of size k serving all members."""
        return -(-self.n_members // k)

    def evaluate(self, choice: PlanChoice) -> Optional[float]:
        """Objective (rounds x interval makespan), None when infeasible."""
        self._n_evaluated += 1
        try:
            decomp = Decomposition.choose(
                self.inp.grid_dims(), choice.ranks_per_member
            )
            if choice.nc_counts is not None and not fits_memory(
                self.machine, self.inp, decomp, max(choice.nc_counts)
            ):
                return None
            pred = predict_plan_interval(self.inp, self.machine, choice)
        except PlanError:
            return None
        return self.rounds(choice.k) * pred.makespan

    def default_choice(self) -> PlanChoice:
        """The hand-chosen baseline: what the packer does untuned.

        Greedy maximal k, smallest feasible node count, the first
        allocatable nodes, balanced split, default algorithms — exactly
        :meth:`repro.campaign.packer.CampaignPacker.split` on this
        request group.
        """
        for k in range(self.n_members, 0, -1):
            geoms = feasible_geometries(
                self.machine, self.inp, k, available_nodes=self.available_nodes
            )
            if not geoms:
                continue
            n_nodes, decomp = geoms[0]  # smallest node count
            return PlanChoice(
                k=k,
                n_nodes=n_nodes,
                nodes=tuple(self.available_nodes[:n_nodes]),
                ranks_per_member=decomp.n_proc,
                allreduce="ring",
                alltoall="pairwise",
                nc_counts=None,
            )
        raise PlanError(
            f"no feasible geometry for {self.inp.name!r} on "
            f"{self.machine.name} (even k=1)"
        )

    # ------------------------------------------------------------------
    def plan(self, seed: int = 0) -> Plan:
        """Run the search and emit the tuned :class:`Plan` artifact."""
        self._n_evaluated = 0
        base = list(
            enumerate_candidates(
                self.machine,
                self.inp,
                self.n_members,
                available_nodes=self.available_nodes,
            )
        )
        if not base:
            raise PlanError(
                f"empty design space for {self.inp.name!r} on "
                f"{self.machine.name}"
            )
        if len(base) <= self.exhaustive_limit:
            # small space: score every base candidate...
            method = "exhaustive+anneal"
            start, _ = self._scan(base)
        else:
            # ...large space: scan geometries with default algorithms
            method = "anneal"
            seed_cands = [
                c for c in base if (c.allreduce, c.alltoall) == ("ring", "pairwise")
            ]
            start, _ = self._scan(seed_cands)
        # either way the seeded annealer refines the winner — its
        # nc-shift moves reach splits enumeration cannot cover
        decomp = Decomposition.choose(
            self.inp.grid_dims(), start.ranks_per_member
        )
        result = anneal(
            start,
            self.evaluate,
            seed=seed,
            machine=self.machine,
            available_nodes=self.available_nodes,
            group=start.k * decomp.n_proc_1,
            nc=self.inp.grid_dims().nc,
            max_count_cap=max_shard_points(self.machine, self.inp, decomp),
            iterations=self.anneal_iterations,
        )
        best, best_e = result.best, result.best_energy
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "plan_anneal_accepted_total"
            ).inc(result.n_accepted)

        default = self.default_choice()
        default_e = self.evaluate(default)
        if default_e is None:  # pragma: no cover - default is always feasible
            raise PlanError("default choice unexpectedly infeasible")
        if best_e > default_e:
            # the tuner must never ship a plan worse than the default
            best, best_e = default, default_e
        pred = predict_plan_interval(self.inp, self.machine, best)
        default_pred = predict_plan_interval(self.inp, self.machine, default)
        plan = Plan(
            machine_name=self.machine.name,
            input_name=self.inp.name,
            signature_key=self.inp.cmat_signature().content_hash(),
            n_members=self.n_members,
            steps_per_report=self.inp.steps_per_report,
            choice=best,
            predicted_s=pred.makespan,
            default_predicted_s=default_pred.makespan,
            predicted_breakdown=dict(pred.categories),
            seed=int(seed),
            method=method,
            n_evaluated=self._n_evaluated,
        )
        if self.telemetry is not None:
            m = self.telemetry.metrics
            m.counter("plan_candidates_evaluated_total").inc(self._n_evaluated)
            m.gauge("plan_predicted_makespan_s").set(plan.predicted_s)
            m.gauge("plan_default_predicted_makespan_s").set(
                plan.default_predicted_s
            )
            m.gauge("plan_predicted_speedup").set(plan.predicted_speedup)
            self.telemetry.tracer.record(
                "plan.search",
                "plan",
                0.0,
                0.0,
                method=method,
                seed=int(seed),
                n_evaluated=self._n_evaluated,
                k=best.k,
                n_nodes=best.n_nodes,
                unbalanced=best.is_unbalanced,
            )
        return plan

    def _scan(self, candidates):
        """Deterministic argmin over a candidate list (first wins ties)."""
        best = None
        best_e = float("inf")
        for c in candidates:
            e = self.evaluate(c)
            if e is not None and e < best_e:
                best, best_e = c, e
        if best is None:
            raise PlanError("no feasible candidate in the scanned space")
        return best, best_e


# ----------------------------------------------------------------------
# validation: really run the planned job
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanValidation:
    """Predicted-vs-actual honesty check of one choice."""

    predicted_s: float
    actual_s: float

    @property
    def error_frac(self) -> float:
        """Signed relative prediction error ((pred - actual)/actual)."""
        if self.actual_s == 0.0:
            return 0.0 if self.predicted_s == 0.0 else float("inf")
        return (self.predicted_s - self.actual_s) / self.actual_s


def run_choice(
    inp: CgyroInput,
    machine: MachineModel,
    choice: PlanChoice,
    *,
    telemetry=None,
) -> float:
    """Really run one reporting interval of the chosen job geometry.

    Dispatches exactly as the campaign runner would: the submachine of
    the plan's nodes, block placement, pinned collective algorithms,
    the plan's nc split, memory enforcement on.  Returns the simulated
    wall seconds of the interval.
    """
    sub = machine.submachine(choice.nodes)
    world = VirtualWorld(sub, n_ranks=choice.n_ranks, enforce_memory=True)
    ar, a2a = algorithms_of(choice)
    world.cost_model.default_allreduce = ar
    world.cost_model.default_alltoall = a2a
    if telemetry is not None:
        telemetry.install(world)
    ensemble = XgyroEnsemble(
        world,
        member_inputs(inp, choice.k),
        nc_counts=choice.nc_counts,
        overlap=choice.overlap,
    )
    ensemble.run_report_interval()
    return world.elapsed()


def validate_plan(
    plan: Plan,
    inp: CgyroInput,
    machine: MachineModel,
    *,
    telemetry=None,
) -> PlanValidation:
    """Run the plan's top pick; report predicted-vs-actual error."""
    actual = run_choice(inp, machine, plan.choice, telemetry=telemetry)
    val = PlanValidation(predicted_s=plan.predicted_s, actual_s=actual)
    if telemetry is not None:
        telemetry.metrics.gauge("plan_validated_makespan_s").set(actual)
        telemetry.metrics.gauge("plan_prediction_error_frac").set(
            abs(val.error_frac)
        )
    return val


def oracle_plan(
    plan: Plan,
    inp: CgyroInput,
    machine: MachineModel,
    *,
    n_reports: int = 1,
):
    """Differential oracle on the *tuned* configuration.

    Runs the planned job (unbalanced split, tuned nodes and all)
    against independent per-member baselines; member mode demands
    bit-exact state, proving the tuning is physics-neutral.
    """
    from repro.check.oracle import differential_oracle

    choice = plan.choice
    return differential_oracle(
        member_inputs(inp, choice.k),
        machine.submachine(choice.nodes),
        n_reports=n_reports,
        baseline="member",
        n_ranks=choice.n_ranks,
        nc_counts=choice.nc_counts,
        overlap=choice.overlap,
    )


def render_plan_report(
    plan: Plan,
    validation: Optional[PlanValidation] = None,
    *,
    default_actual_s: Optional[float] = None,
) -> str:
    """Human-readable plan summary."""
    c = plan.choice
    lines = [
        f"plan — {plan.input_name} on {plan.machine_name} "
        f"({plan.n_members} member(s), seed {plan.seed}, {plan.method}, "
        f"{plan.n_evaluated} candidate(s) evaluated)",
        f"  choice: k={c.k} on {c.n_nodes} node(s) "
        f"{list(c.nodes)} x {c.ranks_per_member} ranks/member, "
        f"allreduce={c.allreduce}, alltoall={c.alltoall}, "
        f"overlap={c.overlap}",
    ]
    if c.nc_counts is None:
        lines.append("  nc split: balanced")
    else:
        tag = "unbalanced" if c.is_unbalanced else "balanced"
        lines.append(
            f"  nc split: {tag} {list(c.nc_counts)} "
            f"(min {min(c.nc_counts)}, max {max(c.nc_counts)})"
        )
    lines.append(
        f"  predicted interval: {plan.predicted_s:.3f} s "
        f"(default {plan.default_predicted_s:.3f} s, "
        f"predicted speedup {plan.predicted_speedup:.3f}x, "
        f"{plan.rounds} round(s))"
    )
    for cat, v in sorted(plan.predicted_breakdown.items()):
        if v > 0:
            lines.append(f"    {cat:<14s} {v:10.3f} s")
    if validation is not None:
        lines.append(
            f"  validated: {validation.actual_s:.3f} s really run "
            f"(prediction error {validation.error_frac:+.1%})"
        )
        if default_actual_s is not None and validation.actual_s > 0:
            lines.append(
                f"  tuned vs default (really run): "
                f"{default_actual_s:.3f} s -> {validation.actual_s:.3f} s "
                f"({default_actual_s / validation.actual_s:.3f}x)"
            )
    return "\n".join(lines)
