"""The autotuner's design space: feasible geometries and their knobs.

A candidate is a :class:`~repro.plan.artifact.PlanChoice`; the space
spans

- the ensemble size ``k`` (1..n_members — fewer members per job means
  more sequential rounds, the sharing-vs-footprint tradeoff);
- the node count and the *specific* node subset (on a heterogeneous
  machine, which nodes a job gets dominates its makespan);
- the collective algorithm pair (allreduce x alltoall);
- the nc split of the shared tensor: balanced, or speed-proportional
  (the deliberately *unbalanced* split of Jackson/Hein/Roach applied to
  per-node speed asymmetry);
- the step schedule: blocking (``overlap="off"``) vs the pipelined
  nonblocking schedules (:data:`~repro.plan.space.OVERLAP_OPTIONS`)
  that hide collective cost under compute.

Feasibility mirrors :meth:`repro.campaign.packer.CampaignPacker.shape_for`
exactly — the same decomposition choice, the same per-rank memory
probes — so every candidate the planner emits is launchable by the
packer unchanged.  All enumeration orders are deterministic.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.cgyro.params import CgyroInput
from repro.collision.cmat import cmat_block_bytes
from repro.errors import DecompositionError
from repro.grid.decomp import Decomposition
from repro.machine.memory import MemoryLedger
from repro.machine.model import MachineModel
from repro.perf.memory import state_bytes_per_rank
from repro.plan.artifact import PlanChoice
from repro.vmpi.algorithms import AllreduceAlgorithm, AlltoallAlgorithm
from repro.xgyro.partition import ensemble_nc_counts, proportional_nc_counts

#: Algorithm pairs enumerated per geometry, defaults first.
ALGORITHM_PAIRS: Tuple[Tuple[str, str], ...] = tuple(
    (ar.value, a2a.value)
    for ar in AllreduceAlgorithm
    for a2a in AlltoallAlgorithm
)

#: Overlap schedules enumerated per candidate: blocking first (the
#: stable tie-break — a schedule only wins by being strictly faster),
#: then the everything-pipelined mode.  The single-phase modes
#: ("str"/"coll") are dominated by "full" in modeled cost, so the base
#: enumeration skips them; the annealer may still step through them.
OVERLAP_OPTIONS: Tuple[str, ...] = ("off", "full")


def choose_decomp(dims, n_ranks: int) -> Optional[Decomposition]:
    """``Decomposition.choose`` returning None instead of raising."""
    try:
        return Decomposition.choose(dims, n_ranks)
    except DecompositionError:
        return None


def fits_memory(
    machine: MachineModel,
    inp: CgyroInput,
    decomp: Decomposition,
    max_count: int,
) -> bool:
    """Ledger-probe one rank: state + a cmat shard of ``max_count``
    configuration points (the same arithmetic the packer and the
    run-time ledgers apply)."""
    dims = inp.grid_dims()
    cmat_b = cmat_block_bytes(dims, max_count, decomp.nt_loc)
    state_b = state_bytes_per_rank(inp, decomp)
    ledger = MemoryLedger(machine.mem_per_rank_bytes)
    if not ledger.would_fit("state", state_b):
        return False
    ledger.alloc("state", state_b)
    return ledger.would_fit("cmat", cmat_b)


def feasible_geometries(
    machine: MachineModel,
    inp: CgyroInput,
    k: int,
    *,
    available_nodes: Optional[Sequence[int]] = None,
) -> List[Tuple[int, Decomposition]]:
    """All feasible ``(n_nodes, decomp)`` pairs for a k-member job.

    Memory is probed with the *balanced* worst-case shard; unbalanced
    candidates re-probe with their own ceiling at evaluation time.
    """
    dims = inp.grid_dims()
    rpn = machine.ranks_per_node
    n_avail = (
        machine.n_nodes if available_nodes is None else len(available_nodes)
    )
    out: List[Tuple[int, Decomposition]] = []
    for n_nodes in range(1, n_avail + 1):
        n_ranks = n_nodes * rpn
        if n_ranks % k != 0:
            continue
        decomp = choose_decomp(dims, n_ranks // k)
        if decomp is None:
            continue
        if k * decomp.n_proc_1 > dims.nc:
            continue
        counts = ensemble_nc_counts(decomp, k)
        if not fits_memory(machine, inp, decomp, max(counts)):
            continue
        out.append((n_nodes, decomp))
    return out


def node_subsets(
    machine: MachineModel,
    n_nodes: int,
    *,
    available_nodes: Optional[Sequence[int]] = None,
    max_windows: int = 8,
) -> List[Tuple[int, ...]]:
    """Deterministic candidate node subsets of size ``n_nodes``.

    Always includes the packer's default (the first ``n_nodes``
    allocatable nodes) and the fastest-first pick (stable sort by
    descending speed, then bandwidth, then id).  On small machines all
    contiguous windows are added; on large ones, ``max_windows`` evenly
    spread offsets.  The annealer explores beyond these via node swaps.
    """
    avail = (
        list(range(machine.n_nodes))
        if available_nodes is None
        else list(available_nodes)
    )
    if n_nodes > len(avail):
        return []
    subsets: List[Tuple[int, ...]] = []

    def add(nodes: Tuple[int, ...]) -> None:
        if nodes not in subsets:
            subsets.append(nodes)

    add(tuple(avail[:n_nodes]))  # packer default: first allocatable run
    by_quality = sorted(
        avail,
        key=lambda n: (
            -machine.speed_of(n),
            -machine.bandwidth_factor_of(n),
            n,
        ),
    )
    add(tuple(sorted(by_quality[:n_nodes])))
    n_offsets = len(avail) - n_nodes + 1
    if n_offsets <= max_windows:
        offsets: Sequence[int] = range(n_offsets)
    else:
        stride = (n_offsets - 1) / (max_windows - 1)
        offsets = sorted({round(i * stride) for i in range(max_windows)})
    for off in offsets:
        add(tuple(avail[off : off + n_nodes]))
    return subsets


def coll_rank_weights(
    machine: MachineModel,
    nodes: Sequence[int],
    decomp: Decomposition,
    k: int,
) -> List[float]:
    """Per-coll-comm-rank speed weights for a proportional nc split.

    The shard-size vector is shared by every toroidal group, but comm
    rank ``j = m * P1 + i1`` maps to a *different* world rank (hence
    possibly node) per group — so each slot is weighted by the slowest
    speed it sees across groups, the conservative choice that never
    over-feeds a slot which is slow in any group.
    """
    rpn = machine.ranks_per_node
    per_member = decomp.n_proc
    weights: List[float] = []
    for m in range(k):
        for i1 in range(decomp.n_proc_1):
            worst = min(
                machine.speed_of(
                    nodes[(m * per_member + decomp.local_rank_of(i1, i2)) // rpn]
                )
                for i2 in range(decomp.n_proc_2)
            )
            weights.append(worst)
    return weights


def nc_count_options(
    machine: MachineModel,
    nodes: Sequence[int],
    decomp: Decomposition,
    k: int,
) -> List[Optional[Tuple[int, ...]]]:
    """Initial nc-split candidates: balanced, then speed-proportional
    (only when it differs)."""
    options: List[Optional[Tuple[int, ...]]] = [None]
    weights = coll_rank_weights(machine, nodes, decomp, k)
    if len(set(weights)) > 1:
        prop = proportional_nc_counts(decomp, k, weights)
        if prop != ensemble_nc_counts(decomp, k):
            options.append(prop)
    return options


def enumerate_candidates(
    machine: MachineModel,
    inp: CgyroInput,
    n_members: int,
    *,
    available_nodes: Optional[Sequence[int]] = None,
    algorithms: Sequence[Tuple[str, str]] = ALGORITHM_PAIRS,
    overlaps: Sequence[str] = OVERLAP_OPTIONS,
) -> Iterator[PlanChoice]:
    """Yield every base candidate, in deterministic order.

    Larger k first (the paper's maximal-sharing preference makes the
    expected winner an early, stable tie-break); blocking schedule
    before overlapped, so an overlapped plan only wins by being
    strictly faster.
    """
    for k in range(n_members, 0, -1):
        for n_nodes, decomp in feasible_geometries(
            machine, inp, k, available_nodes=available_nodes
        ):
            for nodes in node_subsets(
                machine, n_nodes, available_nodes=available_nodes
            ):
                for counts in nc_count_options(machine, nodes, decomp, k):
                    for ar, a2a in algorithms:
                        for overlap in overlaps:
                            yield PlanChoice(
                                k=k,
                                n_nodes=n_nodes,
                                nodes=nodes,
                                ranks_per_member=decomp.n_proc,
                                allreduce=ar,
                                alltoall=a2a,
                                nc_counts=counts,
                                overlap=overlap,
                            )
