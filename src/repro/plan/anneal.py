"""Deterministic seeded simulated annealing over plan choices.

Beyond exhaustive scale the planner refines its best base candidate
with a standard geometric-cooling annealer.  Everything is driven by
one ``random.Random(seed)`` instance — no global RNG, no wall-clock —
so the same seed always walks the same trajectory and the emitted plan
JSON is byte-identical across reruns (asserted by a hypothesis test).

The move set perturbs exactly the knobs the artifact carries:

- shift one configuration point of the nc split between two comm ranks
  (the fine-grained unbalancing move; weighted highest because it is
  the knob exhaustive enumeration cannot cover),
- swap one used node for an unused one,
- switch the allreduce or alltoall algorithm.

Infeasible neighbours (a shard emptied, a swap off the machine, a
shard outgrowing the memory probe) return ``None`` and cost nothing.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.machine.model import MachineModel
from repro.plan.artifact import PlanChoice
from repro.vmpi.algorithms import AllreduceAlgorithm, AlltoallAlgorithm
from repro.xgyro.partition import ensemble_nc_counts


@dataclass(frozen=True)
class AnnealResult:
    """Outcome of one annealing run."""

    best: PlanChoice
    best_energy: float
    n_evaluated: int
    n_accepted: int


def neighbor(
    choice: PlanChoice,
    rng: random.Random,
    machine: MachineModel,
    *,
    available_nodes: Sequence[int],
    group: int,
    nc: int,
    max_count_cap: int,
) -> Optional[PlanChoice]:
    """One random feasible move away from ``choice`` (None = no-op)."""
    move = rng.random()
    if move < 0.6:
        # shift one nc point from comm rank a to comm rank b
        counts = list(
            choice.nc_counts
            if choice.nc_counts is not None
            else _balanced(group, nc)
        )
        a = rng.randrange(group)
        b = rng.randrange(group)
        if a == b or counts[a] <= 1 or counts[b] >= max_count_cap:
            return None
        counts[a] -= 1
        counts[b] += 1
        return replace(choice, nc_counts=tuple(counts))
    if move < 0.8:
        # swap one used node for an unused one
        unused = [n for n in available_nodes if n not in choice.nodes]
        if not unused:
            return None
        pos = rng.randrange(len(choice.nodes))
        new = unused[rng.randrange(len(unused))]
        nodes = list(choice.nodes)
        nodes[pos] = new
        return replace(choice, nodes=tuple(nodes))
    if move < 0.9:
        algos = [a.value for a in AllreduceAlgorithm if a.value != choice.allreduce]
        return replace(choice, allreduce=algos[rng.randrange(len(algos))])
    if move < 0.95:
        algos = [a.value for a in AlltoallAlgorithm if a.value != choice.alltoall]
        return replace(choice, alltoall=algos[rng.randrange(len(algos))])
    # step the overlap schedule (any mode, including the single-phase
    # ones the base enumeration skips)
    from repro.cgyro.solver import OVERLAP_MODES

    modes = [m for m in OVERLAP_MODES if m != choice.overlap]
    return replace(choice, overlap=modes[rng.randrange(len(modes))])


def _balanced(group: int, nc: int) -> List[int]:
    base, extra = divmod(nc, group)
    return [base + (1 if j < extra else 0) for j in range(group)]


def anneal(
    initial: PlanChoice,
    energy: Callable[[PlanChoice], Optional[float]],
    *,
    seed: int,
    machine: MachineModel,
    available_nodes: Sequence[int],
    group: int,
    nc: int,
    max_count_cap: int,
    iterations: int = 300,
    t_start: float = 0.05,
    t_end: float = 1e-3,
) -> AnnealResult:
    """Minimise ``energy`` from ``initial`` with seeded annealing.

    ``energy`` may return ``None`` for an infeasible candidate (it is
    rejected outright, still counted as evaluated).  Temperatures are
    *relative*: acceptance uses the energy delta normalised by the
    current best, so the schedule needs no knowledge of the absolute
    makespan scale.
    """
    rng = random.Random(seed)
    cur = initial
    cur_e = energy(initial)
    if cur_e is None:
        raise ValueError("anneal initial candidate must be feasible")
    best, best_e = cur, cur_e
    n_eval = 1
    n_accept = 0
    for i in range(iterations):
        frac = i / max(1, iterations - 1)
        temp = t_start * (t_end / t_start) ** frac
        cand = neighbor(
            cur,
            rng,
            machine,
            available_nodes=available_nodes,
            group=group,
            nc=nc,
            max_count_cap=max_count_cap,
        )
        if cand is None:
            continue
        e = energy(cand)
        n_eval += 1
        if e is None:
            continue
        delta = (e - cur_e) / best_e
        if delta <= 0 or rng.random() < math.exp(-delta / temp):
            cur, cur_e = cand, e
            n_accept += 1
            if e < best_e:
                best, best_e = cand, e
    return AnnealResult(
        best=best, best_energy=best_e, n_evaluated=n_eval, n_accepted=n_accept
    )
