"""repro.plan: the decomposition/placement autotuner.

The repo's cost model is calibrated and deterministic, `CollShard`
supports uneven nc splits, and the campaign packer already chooses job
geometry — this package closes the loop (ROADMAP open item 4): search
the space of (k, node subset, collective algorithms, nc split)
*against the cost model* and emit a :class:`Plan` artifact the packer
consumes directly.

Heterogeneous machines are the setting where this pays: per-node
speed/bandwidth multipliers (:mod:`repro.machine.presets`) make the
balanced shard map a straggler machine, and a deliberately
*unbalanced* split (Jackson/Hein/Roach) recovers the loss.  Every
emitted plan is validated by really running the planned job on the
virtual machine, and the tuning is physics-neutral — the differential
oracle stays bit-exact on tuned configurations.

Entry points: :class:`Planner` (search), :func:`validate_plan`
(predicted-vs-actual honesty check), :func:`oracle_plan` (bit-exact
physics check), :func:`load_plan`/:meth:`Plan.save` (the byte-stable
artifact), :func:`predict_plan_interval` (the heterogeneity-aware
predictor).
"""

from repro.plan.anneal import AnnealResult, anneal
from repro.plan.artifact import PLAN_FORMAT, Plan, PlanChoice, load_plan
from repro.plan.planner import (
    Planner,
    PlanValidation,
    member_inputs,
    oracle_plan,
    render_plan_report,
    run_choice,
    validate_plan,
)
from repro.plan.predict import PlanPrediction, predict_plan_interval
from repro.plan.space import (
    ALGORITHM_PAIRS,
    enumerate_candidates,
    feasible_geometries,
    node_subsets,
)

__all__ = [
    "Plan",
    "PlanChoice",
    "PlanValidation",
    "PlanPrediction",
    "Planner",
    "PLAN_FORMAT",
    "ALGORITHM_PAIRS",
    "anneal",
    "AnnealResult",
    "enumerate_candidates",
    "feasible_geometries",
    "node_subsets",
    "load_plan",
    "member_inputs",
    "oracle_plan",
    "predict_plan_interval",
    "render_plan_report",
    "run_choice",
    "validate_plan",
]
