"""The shared-cmat collision scheme (the paper's core optimisation).

One cmat, distributed over *every* rank of the ensemble.  Per rank
that is ``nv^2 * nc/(k*P1) * nt_loc`` doubles — k times less than the
stock scheme — and building it costs k times less compute, because
each (ic, n) propagator is inverted once per *ensemble* instead of
once per member.

The coll phase becomes, per toroidal group ``i2``, a single vector
AllToAll over the ensemble-wide communicator (k*P1 ranks): every
member rank slices its STR block into ``k*P1`` nc-pieces; every
destination rank reassembles, per member, a full-nv block of its
``nc_loc_ens`` configuration points, applies the shared propagator to
each member's block, and the inverse AllToAll restores the STR layout.
Per-rank send volume equals the stock transpose's (the whole block),
so the AllToAll cost is comparable — the str AllReduce shrinkage and
the memory win are where the paper's savings come from.

This scheme deliberately cannot run from ``CgyroSimulation.step``:
the ensemble AllToAll needs every member's blocks at once, so the
:class:`~repro.xgyro.driver.XgyroEnsemble` driver calls
:meth:`ensemble_collision_step` after all members finish their str/nl
phases.  That is the communicator separation of Figure 3 made
concrete.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

import numpy as np

from repro.errors import EnsembleValidationError
from repro.cgyro.collision_scheme import CollisionScheme
from repro.collision.cmat import (
    CmatPropagator,
    apply_flops,
    apply_propagator,
    cmat_block_bytes,
)
from repro.vmpi.communicator import Communicator
from repro.xgyro.partition import (
    ensemble_coll_ranks,
    ensemble_nc_loc,
    ensemble_nc_slice,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cgyro.solver import CgyroSimulation


class SharedCmatScheme(CollisionScheme):
    """cmat shared across an ensemble; coll phase on ensemble comms."""

    def __init__(self) -> None:
        self.members: List["CgyroSimulation"] = []
        self._finalized = False
        self._cmat: Dict[int, np.ndarray] = {}
        self._coll_comm: Dict[int, Communicator] = {}
        self._nc_loc_ens = 0

    # ------------------------------------------------------------------
    # CollisionScheme interface
    # ------------------------------------------------------------------
    def setup(self, sim: "CgyroSimulation") -> None:
        """Register a member (cmat is built later, in :meth:`finalize`)."""
        if self._finalized:
            raise EnsembleValidationError(
                "cannot add members to a finalized shared-cmat ensemble"
            )
        self.members.append(sim)

    def step(self, sim: "CgyroSimulation") -> None:
        raise EnsembleValidationError(
            "a shared-cmat member cannot advance its coll phase alone; "
            "drive the ensemble through XgyroEnsemble.step()"
        )

    def cmat_bytes_per_rank(self, sim: "CgyroSimulation") -> int:
        k = len(self.members)
        return cmat_block_bytes(
            sim.dims, ensemble_nc_loc(sim.decomp, k), sim.decomp.nt_loc
        )

    # ------------------------------------------------------------------
    # ensemble wiring
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Validate members, build Figure-3 comms and the shared cmat."""
        if self._finalized:
            raise EnsembleValidationError("ensemble already finalized")
        if not self.members:
            raise EnsembleValidationError("no members registered")
        first = self.members[0]
        for m in self.members[1:]:
            if m.world is not first.world:
                raise EnsembleValidationError(
                    "all ensemble members must share one virtual world"
                )
            if m.decomp != first.decomp:
                raise EnsembleValidationError(
                    "all ensemble members must use identical decompositions "
                    f"({m.label}: {m.decomp.describe()} vs "
                    f"{first.label}: {first.decomp.describe()})"
                )
        from repro.xgyro.validate import validate_shareable

        validate_shareable([m.inp for m in self.members])

        world = first.world
        decomp = first.decomp
        k = len(self.members)
        self._nc_loc_ens = ensemble_nc_loc(decomp, k)
        member_ranks = [m.ranks for m in self.members]
        for i2 in range(decomp.n_proc_2):
            ranks = ensemble_coll_ranks(member_ranks, decomp, i2)
            self._coll_comm[i2] = Communicator(
                world, ranks, label=f"xgyro.coll.g{i2}"
            )
        # build each rank's slice of the single shared tensor
        prop = CmatPropagator(first.collision_operator, dt=first.inp.delta_t)
        nbytes = self.cmat_bytes_per_rank(first)
        dims = first.dims
        for i2, comm in self._coll_comm.items():
            n_idx = range(*decomp.nt_slice(i2).indices(dims.nt))
            for j, world_rank in enumerate(comm.ranks):
                ic_slice = ensemble_nc_slice(decomp, k, j)
                ic_idx = range(*ic_slice.indices(dims.nc))
                world.ledgers[world_rank].alloc("cmat", nbytes)
                self._cmat[world_rank] = prop.build(ic_idx, n_idx)
                world.charge_compute(
                    world_rank,
                    flops=prop.build_flops(len(ic_idx), len(n_idx)),
                    category="cmat_build",
                )
        self._finalized = True

    @property
    def coll_comms(self) -> Dict[int, Communicator]:
        """Ensemble coll communicators per toroidal group (Figure 3)."""
        return dict(self._coll_comm)

    # ------------------------------------------------------------------
    # the ensemble coll phase
    # ------------------------------------------------------------------
    def ensemble_collision_step(self) -> None:
        """Advance every member's coll phase through the shared tensor."""
        if not self._finalized:
            raise EnsembleValidationError("finalize() the ensemble first")
        first = self.members[0]
        world = first.world
        decomp = first.decomp
        dims = first.dims
        k = len(self.members)
        group = k * decomp.n_proc_1
        for i2, comm in self._coll_comm.items():
            # forward: STR blocks -> ensemble COLL distribution
            send: Dict[int, List[np.ndarray]] = {}
            for m in self.members:
                for lr in decomp.group_ranks(i2):
                    r = m.ranks[lr]
                    send[r] = [
                        m.h[r][ensemble_nc_slice(decomp, k, j), :, :]
                        for j in range(group)
                    ]
            with world.phase("coll_comm"):
                recv = comm.alltoall(send)
            # reassemble per member, apply the shared propagator
            for r in comm.ranks:
                blocks = recv[r]
                for mi in range(k):
                    lo = mi * decomp.n_proc_1
                    member_block = np.concatenate(
                        blocks[lo : lo + decomp.n_proc_1], axis=1
                    )
                    blocks[lo] = apply_propagator(self._cmat[r], member_block)
                # keep only one assembled block per member; split back below
            world.charge_compute(
                comm.ranks,
                flops=k * apply_flops(self._nc_loc_ens, decomp.nt_loc, dims.nv),
                category="coll_compute",
            )
            # inverse: slice each member's updated block back per source
            back_send: Dict[int, List[np.ndarray]] = {}
            for r in comm.ranks:
                row: List[np.ndarray] = []
                for mi in range(k):
                    updated = recv[r][mi * decomp.n_proc_1]
                    for i1 in range(decomp.n_proc_1):
                        row.append(updated[:, decomp.nv_slice(i1), :])
                back_send[r] = row
            with world.phase("coll_comm"):
                back = comm.alltoall(back_send)
            # destination (member mi, i1) collects its nc pieces from all
            # group ranks and reassembles the STR block
            for mi, m in enumerate(self.members):
                for i1 in range(decomp.n_proc_1):
                    r = m.ranks[decomp.local_rank_of(i1, i2)]
                    pieces = back[r]
                    m.h[r] = np.concatenate(
                        [pieces[j] for j in range(group)], axis=0
                    )
