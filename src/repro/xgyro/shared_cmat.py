"""The shared-cmat collision scheme (the paper's core optimisation).

One cmat, distributed over *every* rank of the ensemble.  Per rank
that is ``nv^2 * nc/(k*P1) * nt_loc`` doubles — k times less than the
stock scheme — and building it costs k times less compute, because
each (ic, n) propagator is inverted once per *ensemble* instead of
once per member.

The coll phase becomes, per toroidal group ``i2``, a single vector
AllToAll over the ensemble-wide communicator (k*P1 ranks): every
member rank slices its STR block into per-destination nc-pieces; every
destination rank reassembles, per member, a full-nv block of its owned
configuration points, applies the shared propagator to each member's
block, and the inverse AllToAll restores the STR layout.  Per-rank
send volume equals the stock transpose's (the whole block), so the
AllToAll cost is comparable — the str AllReduce shrinkage and the
memory win are where the paper's savings come from.

Shard map
---------
Ownership of the shared tensor is held as an explicit *shard map*: per
toroidal group, an ordered list of :class:`CollShard` entries mapping
a world rank to the global configuration indices whose propagator
blocks it stores.  A fresh ensemble uses the balanced contiguous
assignment of :func:`~repro.xgyro.partition.ensemble_nc_counts`
(identical to the historical even split whenever nc divides), but the
coll phase itself only relies on the map being a disjoint cover of nc.
That generality is what the resilience layer builds on: after a rank
or node loss, :meth:`recover_after_loss` drops the removed ranks,
hands their configuration indices to survivors, and recomputes *only*
the lost blocks — the Figure-3 partition shrinks without rebuilding
the surviving ~(k-1)/k of the tensor.

This scheme deliberately cannot run from ``CgyroSimulation.step``:
the ensemble AllToAll needs every member's blocks at once, so the
:class:`~repro.xgyro.driver.XgyroEnsemble` driver calls
:meth:`ensemble_collision_step` after all members finish their str/nl
phases.  That is the communicator separation of Figure 3 made
concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Set, Tuple, Union

import numpy as np

from repro.errors import EnsembleValidationError, RecoveryFailed
from repro.cgyro.collision_scheme import CollisionScheme
from repro.collision.cmat import (
    CmatPropagator,
    apply_flops,
    apply_propagator,
    cmat_block_bytes,
)
from repro.vmpi.communicator import Communicator
from repro.xgyro.partition import ensemble_coll_ranks, ensemble_nc_counts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cgyro.solver import CgyroSimulation


@dataclass(frozen=True)
class CollShard:
    """One rank's slice of the shared tensor within a toroidal group.

    ``ic_indices`` are the *global* configuration indices whose
    ``(nv, nv)`` propagator blocks this rank stores, sorted ascending.
    A freshly-built ensemble uses contiguous runs; after a recovery a
    survivor may own several disjoint runs (its own plus adopted ones).
    """

    world_rank: int
    ic_indices: Tuple[int, ...]

    @property
    def n_ic(self) -> int:
        """Number of configuration points owned."""
        return len(self.ic_indices)

    def index(self) -> Union[slice, List[int]]:
        """Fastest NumPy index selecting the owned rows: a slice when
        the indices are one contiguous run (keeps views on the send
        path), else the explicit list."""
        ics = self.ic_indices
        if ics and ics[-1] - ics[0] + 1 == len(ics):
            return slice(ics[0], ics[-1] + 1)
        return list(ics)


class SharedCmatScheme(CollisionScheme):
    """cmat shared across an ensemble; coll phase on ensemble comms.

    Parameters
    ----------
    charge_build:
        Charge the ``cmat_build`` assembly flops to the member ranks'
        simulated clocks during :meth:`finalize` (the default).  The
        campaign scheduler's cross-job :class:`~repro.campaign.cache.CmatCache`
        passes ``False`` when a job's signature hits the cache: the
        tensor contents are identical to the previous job's, so the
        machine keeps them resident and re-assembly costs nothing.
        Memory is still allocated in the ledgers either way — a cache
        hit saves time, not space.
    nc_counts:
        Optional explicit per-comm-rank configuration-point counts for
        the initial shard map, in comm-rank order (length ``k * P1``,
        every entry >= 1, summing to nc).  ``None`` keeps the balanced
        :func:`~repro.xgyro.partition.ensemble_nc_counts` assignment.
        The coll phase only needs the map to be a disjoint cover of nc,
        so *unbalanced* counts (e.g. speed-proportional ones chosen by
        the :mod:`repro.plan` autotuner on a heterogeneous machine) are
        physics-neutral: results stay bit-identical.
    overlap:
        One of :data:`~repro.cgyro.solver.OVERLAP_MODES`.  With
        ``"coll"`` or ``"full"`` the coll phase pipelines its ensemble
        AllToAlls: each exchange is split along the configuration axis
        and posted nonblocking, so all but the head and tail
        sub-exchanges accrue under the propagator applies.  Physics is
        bit-identical
        (the propagator is applied per (ic, n) block); only the modeled
        schedule changes.
    """

    def __init__(
        self,
        *,
        charge_build: bool = True,
        nc_counts: "Sequence[int] | None" = None,
        overlap: str = "off",
    ) -> None:
        from repro.cgyro.solver import OVERLAP_MODES

        if overlap not in OVERLAP_MODES:
            raise EnsembleValidationError(
                f"overlap must be one of {OVERLAP_MODES}, got {overlap!r}"
            )
        self.overlap = overlap
        self.members: List["CgyroSimulation"] = []
        self.charge_build = charge_build
        self.nc_counts = None if nc_counts is None else tuple(int(c) for c in nc_counts)
        self._finalized = False
        self._cmat: Dict[int, np.ndarray] = {}
        self._checksums: Dict[int, str] = {}
        self._coll_comm: Dict[int, Communicator] = {}
        self._shards: Dict[int, List[CollShard]] = {}
        self._prop: "CmatPropagator | None" = None
        self._generation = 0

    # ------------------------------------------------------------------
    # CollisionScheme interface
    # ------------------------------------------------------------------
    def setup(self, sim: "CgyroSimulation") -> None:
        """Register a member (cmat is built later, in :meth:`finalize`)."""
        if self._finalized:
            raise EnsembleValidationError(
                "cannot add members to a finalized shared-cmat ensemble"
            )
        self.members.append(sim)

    def step(self, sim: "CgyroSimulation") -> None:
        raise EnsembleValidationError(
            "a shared-cmat member cannot advance its coll phase alone; "
            "drive the ensemble through XgyroEnsemble.step()"
        )

    def cmat_bytes_per_rank(self, sim: "CgyroSimulation") -> int:
        """Worst-case per-rank cmat bytes (the planning ceiling)."""
        if self.nc_counts is not None:
            counts: Sequence[int] = self.nc_counts
        else:
            counts = ensemble_nc_counts(sim.decomp, len(self.members))
        return cmat_block_bytes(sim.dims, max(counts), sim.decomp.nt_loc)

    # ------------------------------------------------------------------
    # ensemble wiring
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Validate members, build Figure-3 comms and the shared cmat."""
        if self._finalized:
            raise EnsembleValidationError("ensemble already finalized")
        if not self.members:
            raise EnsembleValidationError("no members registered")
        first = self.members[0]
        for m in self.members[1:]:
            if m.world is not first.world:
                raise EnsembleValidationError(
                    "all ensemble members must share one virtual world"
                )
            if m.decomp != first.decomp:
                raise EnsembleValidationError(
                    "all ensemble members must use identical decompositions "
                    f"({m.label}: {m.decomp.describe()} vs "
                    f"{first.label}: {first.decomp.describe()})"
                )
        from repro.xgyro.validate import validate_shareable

        validate_shareable([m.inp for m in self.members])

        world = first.world
        decomp = first.decomp
        k = len(self.members)
        if self.nc_counts is not None:
            counts = self.nc_counts
            group = k * decomp.n_proc_1
            if len(counts) != group:
                raise EnsembleValidationError(
                    f"nc_counts must have one entry per coll-comm rank "
                    f"({group}), got {len(counts)}"
                )
            if any(c < 1 for c in counts):
                raise EnsembleValidationError(
                    f"nc_counts entries must be >= 1, got {counts}"
                )
            if sum(counts) != first.dims.nc:
                raise EnsembleValidationError(
                    f"nc_counts must sum to nc={first.dims.nc}, "
                    f"got sum {sum(counts)}"
                )
        else:
            counts = ensemble_nc_counts(decomp, k)
        member_ranks = [m.ranks for m in self.members]
        self._prop = CmatPropagator(first.collision_operator, dt=first.inp.delta_t)
        dims = first.dims
        for i2 in range(decomp.n_proc_2):
            ranks = ensemble_coll_ranks(member_ranks, decomp, i2)
            # balanced contiguous ownership in comm-rank order
            shards: List[CollShard] = []
            lo = 0
            for j, world_rank in enumerate(ranks):
                shards.append(
                    CollShard(world_rank, tuple(range(lo, lo + counts[j])))
                )
                lo += counts[j]
            self._shards[i2] = shards
            self._coll_comm[i2] = Communicator(
                world, ranks, label=f"xgyro.coll.g{i2}"
            )
            # build each rank's slice of the single shared tensor
            n_idx = range(*decomp.nt_slice(i2).indices(dims.nt))
            for shard in shards:
                r = shard.world_rank
                world.ledgers[r].alloc(
                    "cmat", cmat_block_bytes(dims, shard.n_ic, decomp.nt_loc)
                )
                self._cmat[r] = self._prop.build(shard.ic_indices, n_idx)
                self._checksums[r] = self._checksum(self._cmat[r])
                if self.charge_build:
                    world.charge_compute(
                        r,
                        flops=self._prop.build_flops(shard.n_ic, len(n_idx)),
                        category="cmat_build",
                    )
        self._finalized = True

    @property
    def coll_comms(self) -> Dict[int, Communicator]:
        """Ensemble coll communicators per toroidal group (Figure 3)."""
        return dict(self._coll_comm)

    @property
    def shards(self) -> Dict[int, Tuple[CollShard, ...]]:
        """Current shard map per toroidal group (comm order)."""
        return {i2: tuple(s) for i2, s in self._shards.items()}

    def shard_of(self, world_rank: int) -> "CollShard | None":
        """The shard owned by ``world_rank`` (None when it owns none)."""
        for shards in self._shards.values():
            for s in shards:
                if s.world_rank == world_rank:
                    return s
        return None

    # ------------------------------------------------------------------
    # SDC guards: per-shard content checksums
    # ------------------------------------------------------------------
    @staticmethod
    def _checksum(arr: np.ndarray) -> str:
        """Content hash of one shard's propagator blocks."""
        import hashlib

        return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()

    def shard_nbytes(self, world_rank: int) -> int:
        """Bytes held by ``world_rank``'s shard (0 if it owns none)."""
        arr = self._cmat.get(world_rank)
        return 0 if arr is None else int(arr.nbytes)

    def verify_shards(
        self, ranks: "Sequence[int] | None" = None
    ) -> Tuple[int, ...]:
        """Re-hash shards and return the ranks whose contents diverged
        from the checksum recorded at assembly — silent corruption.

        Verification itself is free on the simulated clocks; callers
        model the scan cost (memory-bandwidth-bound) explicitly so the
        overhead is visible in reports rather than buried here.
        """
        check = self._cmat.keys() if ranks is None else ranks
        bad = []
        for r in check:
            arr = self._cmat.get(r)
            if arr is None:
                continue
            if self._checksum(arr) != self._checksums.get(r):
                bad.append(int(r))
        return tuple(sorted(bad))

    def repair_shard(self, world_rank: int, *, category: str = "sdc_repair") -> int:
        """Recompute ``world_rank``'s shard from the propagator.

        The constant tensor is a pure function of the shared inputs, so
        a corrupted shard needs no peer data to heal — just the same
        per-block inversions :meth:`finalize` did, charged to the
        owner's clock under ``category``.  Returns the number of
        (ic, n) blocks rebuilt.
        """
        shard = self.shard_of(world_rank)
        if shard is None or self._prop is None:
            raise RecoveryFailed(
                f"rank {world_rank} owns no shard to repair",
                failed_ranks=(world_rank,),
                reason="no shard",
            )
        first = self.members[0]
        decomp = first.decomp
        i2 = next(
            g for g, shards in self._shards.items()
            if any(s.world_rank == world_rank for s in shards)
        )
        n_idx = range(*decomp.nt_slice(i2).indices(first.dims.nt))
        self._cmat[world_rank] = self._prop.build(shard.ic_indices, n_idx)
        self._checksums[world_rank] = self._checksum(self._cmat[world_rank])
        first.world.charge_compute(
            world_rank,
            flops=self._prop.build_flops(shard.n_ic, len(n_idx)),
            category=category,
        )
        return shard.n_ic * len(n_idx)

    def corrupt_shard(self, world_rank: int, *, seed: int = 0) -> None:
        """Flip one bit of ``world_rank``'s shard in place (fault
        injection: models a radiation upset in the long-lived tensor).

        The flipped (word, bit) position is derived deterministically
        from ``(world_rank, seed)`` so faulted runs stay reproducible.
        The recorded checksum is *not* updated — that is the point.
        """
        import hashlib

        arr = self._cmat.get(world_rank)
        if arr is None:
            raise EnsembleValidationError(
                f"rank {world_rank} owns no shard to corrupt"
            )
        words = arr.view(np.uint64)
        digest = hashlib.sha256(f"{world_rank}:{seed}".encode()).digest()
        pos = int.from_bytes(digest[:8], "big") % words.size
        bit = digest[8] % 64
        words.flat[pos] ^= np.uint64(1) << np.uint64(bit)

    # ------------------------------------------------------------------
    # the ensemble coll phase
    # ------------------------------------------------------------------
    def ensemble_collision_step(self) -> None:
        """Advance every member's coll phase through the shared tensor."""
        if not self._finalized:
            raise EnsembleValidationError("finalize() the ensemble first")
        if self.overlap in ("coll", "full"):
            self._collision_step_overlapped()
            return
        first = self.members[0]
        world = first.world
        decomp = first.decomp
        dims = first.dims
        k = len(self.members)
        for i2, comm in self._coll_comm.items():
            shards = self._shards[i2]
            indexers = [s.index() for s in shards]
            # forward: STR blocks -> ensemble COLL distribution
            send: Dict[int, List[np.ndarray]] = {}
            for m in self.members:
                for lr in decomp.group_ranks(i2):
                    r = m.ranks[lr]
                    send[r] = [m.h[r][idx, :, :] for idx in indexers]
            with world.phase("coll_comm"):
                recv = comm.alltoall(send)
            # reassemble per member, apply the shared propagator
            for r in comm.ranks:
                blocks = recv[r]
                for mi in range(k):
                    lo = mi * decomp.n_proc_1
                    member_block = np.concatenate(
                        blocks[lo : lo + decomp.n_proc_1], axis=1
                    )
                    blocks[lo] = apply_propagator(self._cmat[r], member_block)
                # keep only one assembled block per member; split back below
            world.charge_compute(
                comm.ranks,
                flops={
                    s.world_rank: k * apply_flops(s.n_ic, decomp.nt_loc, dims.nv)
                    for s in shards
                },
                category="coll_compute",
            )
            # inverse: slice each member's updated block back per source
            back_send: Dict[int, List[np.ndarray]] = {}
            for r in comm.ranks:
                row: List[np.ndarray] = []
                for mi in range(k):
                    updated = recv[r][mi * decomp.n_proc_1]
                    for i1 in range(decomp.n_proc_1):
                        row.append(updated[:, decomp.nv_slice(i1), :])
                back_send[r] = row
            with world.phase("coll_comm"):
                back = comm.alltoall(back_send)
            # destination (member mi, i1) collects its nc pieces from all
            # group ranks and rebuilds the STR block in global nc order
            for mi, m in enumerate(self.members):
                for i1 in range(decomp.n_proc_1):
                    r = m.ranks[decomp.local_rank_of(i1, i2)]
                    pieces = back[r]
                    out = np.empty(
                        (dims.nc, decomp.nv_loc, decomp.nt_loc),
                        dtype=np.complex128,
                    )
                    for j, idx in enumerate(indexers):
                        out[idx, :, :] = pieces[j]
                    m.h[r] = out

    def _collision_step_overlapped(self) -> None:
        """Coll phase with nonblocking, configuration-chunked AllToAlls.

        Each group's forward and inverse exchanges are split into up
        to ``T = 4`` sub-exchanges along the *configuration* axis —
        every destination shard's owned ic rows are chunked, so every
        rank sends ``1/T`` of its block per sub-exchange.  All forward
        sub-exchanges are posted up front (nonblocking collectives on
        one communicator pipeline FIFO through the network engine);
        each chunk's apply then overlaps the remaining forward windows
        and, once posted, the earlier inverse windows.  Only the head
        (first forward) and tail (last inverse) sub-exchanges are
        exposed; every other window accrues under ``coll_compute``.
        The propagator acts independently per (ic, toroidal-mode)
        block, so the chunked result is bit-identical to the blocking
        schedule.
        """
        first = self.members[0]
        world = first.world
        decomp = first.decomp
        dims = first.dims
        k = len(self.members)
        P1 = decomp.n_proc_1
        nt_loc = decomp.nt_loc

        def sub_index(ics: Tuple[int, ...]) -> Union[slice, List[int]]:
            if ics and ics[-1] - ics[0] + 1 == len(ics):
                return slice(ics[0], ics[-1] + 1)
            return list(ics)

        for i2, comm in self._coll_comm.items():
            shards = self._shards[i2]
            T = min(4, min(s.n_ic for s in shards))
            # per shard: chunk bounds in shard-local row order, plus the
            # matching global-ic indexer per chunk
            bounds = [
                [(t * s.n_ic // T, (t + 1) * s.n_ic // T) for s in shards]
                for t in range(T)
            ]
            chunk_idx = [
                [
                    sub_index(s.ic_indices[o0:o1])
                    for s, (o0, o1) in zip(shards, bounds[t])
                ]
                for t in range(T)
            ]
            # destination STR blocks, filled chunk by chunk
            outs: Dict[int, np.ndarray] = {}
            for m in self.members:
                for lr in decomp.group_ranks(i2):
                    outs[m.ranks[lr]] = np.empty(
                        (dims.nc, decomp.nv_loc, nt_loc), dtype=np.complex128
                    )

            def post_fwd(t):
                send: Dict[int, List[np.ndarray]] = {}
                for m in self.members:
                    for lr in decomp.group_ranks(i2):
                        r = m.ranks[lr]
                        send[r] = [m.h[r][idx, :, :] for idx in chunk_idx[t]]
                with world.phase("coll_comm"):
                    return comm.ialltoall(send)

            def apply_chunk(t, recv):
                applied_t: Dict[int, List[np.ndarray]] = {}
                for j, r in enumerate(comm.ranks):
                    o0, o1 = bounds[t][j]
                    blocks = recv[r]
                    per_member: List[np.ndarray] = []
                    for mi in range(k):
                        lo = mi * P1
                        member_block = np.concatenate(
                            blocks[lo : lo + P1], axis=1
                        )
                        per_member.append(
                            apply_propagator(
                                self._cmat[r][o0:o1], member_block
                            )
                        )
                    applied_t[r] = per_member
                world.charge_compute(
                    comm.ranks,
                    flops={
                        s.world_rank: k
                        * apply_flops(o1 - o0, nt_loc, dims.nv)
                        for s, (o0, o1) in zip(shards, bounds[t])
                    },
                    category="coll_compute",
                )
                return applied_t

            def post_back(t, applied_t):
                send: Dict[int, List[np.ndarray]] = {}
                for r in comm.ranks:
                    row: List[np.ndarray] = []
                    for mi in range(k):
                        updated = applied_t[r][mi]
                        for i1 in range(P1):
                            row.append(updated[:, decomp.nv_slice(i1), :])
                    send[r] = row
                with world.phase("coll_comm"):
                    return comm.ialltoall(send)

            def scatter_back(t, back):
                for m in self.members:
                    for i1 in range(P1):
                        r = m.ranks[decomp.local_rank_of(i1, i2)]
                        pieces = back[r]
                        for j, idx in enumerate(chunk_idx[t]):
                            outs[r][idx, :, :] = pieces[j]

            # every forward sub-exchange is posted before any apply:
            # the windows queue FIFO on the communicator, so only the
            # head's window is exposed — the rest drain under the
            # applies.  Each chunk's inverse posts as soon as its apply
            # finishes and is waited only at scatter time, so all but
            # the tail inverse window hide under later applies.
            fwd_reqs = [post_fwd(t) for t in range(T)]
            back_reqs = []
            for t in range(T):
                recv = fwd_reqs[t].wait()
                back_reqs.append(post_back(t, apply_chunk(t, recv)))
            for t in range(T):
                scatter_back(t, back_reqs[t].wait())
            for m in self.members:
                for lr in decomp.group_ranks(i2):
                    r = m.ranks[lr]
                    m.h[r] = outs[r]

    # ------------------------------------------------------------------
    # shrink-and-recover
    # ------------------------------------------------------------------
    def recover_after_loss(
        self,
        surviving_members: Sequence["CgyroSimulation"],
        removed_ranks: Set[int],
        *,
        category: str = "recovery_build",
    ) -> int:
        """Rebuild the Figure-3 partition over the survivors.

        ``removed_ranks`` are every rank leaving the job — the dead
        ones plus any live rank of a member being dropped.  Survivors
        keep the propagator blocks they already hold; the removed
        ranks' configuration indices are adopted round-robin (in comm
        order) and **only those blocks are recomputed**, each adopter
        charged the rebuild flops under ``category``.  Blocks held by a
        dropped member's live ranks are recomputed rather than
        migrated — the accounting ledger reports that price honestly.

        Returns the total number of (ic, n) propagator blocks rebuilt.
        """
        if not self._finalized:
            raise EnsembleValidationError("finalize() the ensemble first")
        if not surviving_members:
            raise RecoveryFailed(
                "cannot rebuild a shared-cmat partition with no survivors",
                failed_ranks=tuple(removed_ranks),
                reason="no surviving members",
            )
        first = surviving_members[0]
        world = first.world
        decomp = first.decomp
        dims = first.dims
        assert self._prop is not None
        self._generation += 1
        rebuilt_blocks = 0
        for i2 in list(self._shards):
            old = self._shards[i2]
            keep = [s for s in old if s.world_rank not in removed_ranks]
            lost = [s for s in old if s.world_rank in removed_ranks]
            if not keep:
                raise RecoveryFailed(
                    f"every shard owner of toroidal group {i2} was removed",
                    failed_ranks=tuple(removed_ranks),
                    reason="whole coll group lost",
                )
            # SDC guard: never adopt onto silently-corrupted survivors —
            # re-verify their shards first, healing any bad one in place
            for bad_rank in self.verify_shards([s.world_rank for s in keep]):
                rebuilt_blocks += self.repair_shard(bad_rank, category=category)
            # adopt lost indices round-robin over the survivors
            adopted: Dict[int, List[int]] = {s.world_rank: [] for s in keep}
            for pos, shard in enumerate(lost):
                adopter = keep[pos % len(keep)]
                adopted[adopter.world_rank].extend(shard.ic_indices)
            n_idx = range(*decomp.nt_slice(i2).indices(dims.nt))
            new_shards: List[CollShard] = []
            for s in keep:
                extra = sorted(adopted[s.world_rank])
                if not extra:
                    new_shards.append(s)
                    continue
                r = s.world_rank
                fresh = self._prop.build(extra, n_idx)
                world.charge_compute(
                    r,
                    flops=self._prop.build_flops(len(extra), len(n_idx)),
                    category=category,
                )
                rebuilt_blocks += len(extra) * len(n_idx)
                # merge old + adopted blocks into ascending ic order
                merged_ics = tuple(sorted(set(s.ic_indices) | set(extra)))
                old_pos = {ic: i for i, ic in enumerate(s.ic_indices)}
                new_pos = {ic: i for i, ic in enumerate(extra)}
                merged = np.empty(
                    (len(merged_ics),) + self._cmat[r].shape[1:],
                    dtype=self._cmat[r].dtype,
                )
                for i, ic in enumerate(merged_ics):
                    if ic in old_pos:
                        merged[i] = self._cmat[r][old_pos[ic]]
                    else:
                        merged[i] = fresh[new_pos[ic]]
                self._cmat[r] = merged
                self._checksums[r] = self._checksum(merged)
                ledger = world.ledgers[r]
                ledger.free("cmat")
                ledger.alloc(
                    "cmat", cmat_block_bytes(dims, len(merged_ics), decomp.nt_loc)
                )
                new_shards.append(CollShard(r, merged_ics))
            for s in lost:
                self._cmat.pop(s.world_rank, None)
                self._checksums.pop(s.world_rank, None)
                ledger = world.ledgers[s.world_rank]
                if "cmat" in ledger:
                    ledger.free("cmat")
            self._shards[i2] = new_shards
            self._coll_comm[i2] = Communicator(
                world,
                [s.world_rank for s in new_shards],
                label=f"xgyro.coll.g{i2}.r{self._generation}",
            )
        self.members = list(surviving_members)
        return rebuilt_blocks
