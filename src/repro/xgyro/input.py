"""XGYRO ensemble input format.

Like the real tool, an XGYRO run is described by a small top-level
file (``input.xgyro``) listing the member simulation directories, each
of which holds its own ``input.cgyro``:

    # input.xgyro
    N_ENSEMBLE=3
    DIR=case_a
    DIR=case_b
    DIR=case_c

Directories are resolved relative to the input file.  Parsing also
*validates* the ensemble (shareable cmat) unless asked not to, so a
bad ensemble fails at submit time, not after the machine is allocated.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import InputError
from repro.cgyro.io import parse_input_file, write_input_file
from repro.cgyro.params import CgyroInput
from repro.xgyro.validate import validate_shareable


def write_ensemble(
    inputs: Sequence[CgyroInput],
    root: Union[str, Path],
    *,
    dir_names: "Sequence[str] | None" = None,
) -> Path:
    """Materialise an ensemble on disk; returns the input.xgyro path."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if dir_names is None:
        dir_names = [f"member{m:02d}" for m in range(len(inputs))]
    if len(dir_names) != len(inputs):
        raise InputError("dir_names must match inputs in length")
    lines = [f"N_ENSEMBLE={len(inputs)}"]
    for name, inp in zip(dir_names, inputs):
        member_dir = root / name
        member_dir.mkdir(parents=True, exist_ok=True)
        write_input_file(inp, member_dir / "input.cgyro")
        lines.append(f"DIR={name}")
    top = root / "input.xgyro"
    top.write_text("\n".join(lines) + "\n")
    return top


def parse_ensemble(
    path: Union[str, Path], *, validate: bool = True
) -> List[CgyroInput]:
    """Parse an ``input.xgyro`` file into the member inputs."""
    path = Path(path)
    if not path.exists():
        raise InputError(f"xgyro input file not found: {path}")
    n_ensemble = None
    dirs: List[str] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise InputError(f"{path}:{lineno}: expected KEY=VALUE, got {raw!r}")
        key, value = (part.strip() for part in line.split("=", 1))
        if key == "N_ENSEMBLE":
            n_ensemble = int(value)
        elif key == "DIR":
            dirs.append(value)
        else:
            raise InputError(f"{path}:{lineno}: unknown key {key!r}")
    if n_ensemble is None:
        raise InputError(f"{path}: missing N_ENSEMBLE")
    if n_ensemble != len(dirs):
        raise InputError(
            f"{path}: N_ENSEMBLE={n_ensemble} but {len(dirs)} DIR entries"
        )
    inputs = [
        parse_input_file(path.parent / d / "input.cgyro") for d in dirs
    ]
    if validate:
        validate_shareable(inputs)
    return inputs
