"""The XGYRO ensemble driver.

Runs k member simulations as one job, in lockstep per phase:

    for each step:
        every member: streaming phase   (per-member comm_1 AllReduces)
        every member: nonlinear phase   (per-member comm_2 AllToAlls)
        once:         ensemble coll     (shared cmat, Figure-3 comms)

Members occupy disjoint contiguous rank blocks of one virtual world,
so their phases overlap in simulated time exactly as concurrent
members overlap on a real machine; the ensemble's wall time is the max
over members' clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import EnsembleValidationError, InputError, RecoveryFailed
from repro.cgyro.params import CgyroInput
from repro.cgyro.solver import CgyroSimulation
from repro.cgyro.timing import ReportRow, delta, snapshot
from repro.vmpi.world import VirtualWorld
from repro.xgyro.partition import partition_ranks
from repro.xgyro.shared_cmat import SharedCmatScheme


@dataclass
class EnsembleReport:
    """One reporting interval of a whole ensemble.

    ``member_rows`` carries each member's physics and timings;
    ``ensemble`` aggregates them the way a concurrent job's clock
    does — wall and per-category times are maxima over members.
    """

    member_rows: List[ReportRow]
    ensemble: ReportRow


class XgyroEnsemble:
    """k CGYRO simulations as a single job with one shared cmat.

    Parameters
    ----------
    world:
        The virtual world for the whole job.
    inputs:
        Member inputs; must agree on all cmat-relevant parameters.
    ranks:
        World ranks of the job (defaults to all of them); split into
        equal contiguous member blocks.
    charge_cmat_build:
        Charge the shared tensor's assembly cost to the simulated
        clocks (default).  ``False`` models a warm start — the machine
        already holds this signature's tensor from a previous job, so
        only the memory is re-registered (see
        :class:`~repro.campaign.cache.CmatCache`).
    nc_counts:
        Optional explicit (possibly unbalanced) shard sizes for the
        shared tensor, passed through to
        :class:`~repro.xgyro.shared_cmat.SharedCmatScheme`; ``None``
        keeps the balanced split.  Physics-neutral either way.
    overlap:
        One of :data:`~repro.cgyro.solver.OVERLAP_MODES`, forwarded to
        every member (``str``: pipelined field-solve AllReduces) and to
        the shared-cmat scheme (``coll``: pipelined ensemble
        AllToAlls); ``full`` enables both, ``off`` (default) is
        bit-identical to the historical blocking schedule in both
        physics *and* modeled cost.
    """

    def __init__(
        self,
        world: VirtualWorld,
        inputs: Sequence[CgyroInput],
        *,
        ranks: Optional[Sequence[int]] = None,
        charge_cmat_build: bool = True,
        nc_counts: Optional[Sequence[int]] = None,
        overlap: str = "off",
    ) -> None:
        if len(inputs) == 0:
            raise EnsembleValidationError("an ensemble needs at least one member")
        self.world = world
        self.inputs = tuple(inputs)
        self.overlap = overlap
        job_ranks = tuple(ranks) if ranks is not None else tuple(range(world.n_ranks))
        blocks = partition_ranks(job_ranks, len(inputs))
        self.scheme = SharedCmatScheme(
            charge_build=charge_cmat_build, nc_counts=nc_counts, overlap=overlap
        )
        self.members: List[CgyroSimulation] = []
        for m, (inp, block) in enumerate(zip(inputs, blocks)):
            label = f"xgyro.m{m}.{inp.name}"
            self.members.append(
                CgyroSimulation(
                    world,
                    block,
                    inp,
                    collision_scheme=self.scheme,
                    label=label,
                    overlap=overlap,
                )
            )
        self.scheme.finalize()
        self.step_count = 0

    @property
    def n_members(self) -> int:
        """Ensemble size k."""
        return len(self.members)

    @property
    def ranks(self) -> tuple:
        """All world ranks of the job, in member order."""
        return tuple(r for m in self.members for r in m.ranks)

    def member_states(self) -> "List[object]":
        """Global ``(nc, nv, nt)`` state per member, in member order.

        The quantity the differential oracle
        (:mod:`repro.check.oracle`) compares against independent
        baseline runs; gathering is pure assembly, charging nothing.
        """
        return [m.gather_h() for m in self.members]

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One lockstep time step of the whole ensemble."""
        with self.world.span(
            f"xgyro.step{self.step_count}", "step", ranks=self.ranks
        ):
            for i, m in enumerate(self.members):
                with self.world.span(
                    f"{m.label}.str",
                    "phase",
                    ranks=m.ranks,
                    category="str_compute",
                    member=i,
                ):
                    m.streaming_phase()
            for i, m in enumerate(self.members):
                if not m.inp.nonlinear:
                    continue
                with self.world.span(
                    f"{m.label}.nl",
                    "phase",
                    ranks=m.ranks,
                    category="nl_compute",
                    member=i,
                ):
                    m.nonlinear_phase()
            with self.world.span(
                "xgyro.coll",
                "phase",
                ranks=self.ranks,
                category="coll_compute",
            ):
                self.scheme.ensemble_collision_step()
        for m in self.members:
            m.time += m.inp.delta_t
            m.step_count += 1
        self.step_count += 1

    def drop_members(
        self,
        lost_members: Sequence[int],
        dead_ranks: Optional[Set[int]] = None,
        *,
        category: str = "recovery_cmat_build",
    ) -> int:
        """Shrink the ensemble, dropping ``lost_members`` (by index).

        The shared-cmat scheme rebuilds its Figure-3 partition over the
        survivors — they keep their shards and adopt (recompute) the
        removed ranks' configuration points, charged under ``category``
        — and the dropped members' buffers are released from the memory
        ledgers.  ``dead_ranks`` extends the removed set with ranks
        that died without belonging to a dropped member.  The survivors'
        state, step counters, and clocks are untouched: rollback is the
        recovery layer's job (:mod:`repro.resilience.recovery`).

        Returns the number of (ic, n) propagator blocks recomputed.
        """
        lost = sorted({int(i) for i in lost_members})
        for i in lost:
            if not 0 <= i < len(self.members):
                raise EnsembleValidationError(
                    f"member index {i} out of range [0, {len(self.members)})"
                )
        survivors = [m for i, m in enumerate(self.members) if i not in set(lost)]
        if not survivors:
            raise RecoveryFailed(
                "cannot drop every member of an ensemble",
                lost_members=tuple(lost),
            )
        removed = set(dead_ranks or ())
        for i in lost:
            removed.update(self.members[i].ranks)
        rebuilt = self.scheme.recover_after_loss(
            survivors, removed, category=category
        )
        for i in lost:
            m = self.members[i]
            prefix = f"{m.label}."
            for r in m.ranks:
                ledger = self.world.ledgers[r]
                for name in list(ledger.breakdown()):
                    if name.startswith(prefix):
                        ledger.free(name)
        self.members = survivors
        self.inputs = tuple(m.inp for m in survivors)
        return rebuilt

    def run_report_interval(self) -> EnsembleReport:
        """Advance one reporting interval and report per member + job.

        All members must share ``steps_per_report`` (they share cmat,
        hence ``delta_t``; report cadence is validated here).
        """
        cadences = {m.inp.steps_per_report for m in self.members}
        if len(cadences) != 1:
            raise InputError(
                f"members disagree on steps_per_report: {sorted(cadences)}"
            )
        steps = cadences.pop()
        before = {m.label: snapshot(self.world, m.ranks) for m in self.members}
        for _ in range(steps):
            self.step()
        member_rows: List[ReportRow] = []
        for i, m in enumerate(self.members):
            with self.world.span(
                f"{m.label}.diag",
                "phase",
                ranks=m.ranks,
                category="diag",
                member=i,
            ):
                flux, phi2 = m.diagnostics()
            after = snapshot(self.world, m.ranks)
            diff = delta(after, before[m.label])
            wall = diff.pop("elapsed")
            member_rows.append(
                ReportRow(
                    step=m.step_count,
                    time=m.time,
                    wall_s=wall,
                    categories=diff,
                    flux=flux,
                    phi2=phi2,
                )
            )
        ensemble = self._aggregate(member_rows)
        return EnsembleReport(member_rows=member_rows, ensemble=ensemble)

    @staticmethod
    def _aggregate(rows: List[ReportRow]) -> ReportRow:
        """Concurrent aggregation: max over members per category."""
        cats: Dict[str, float] = {}
        for r in rows:
            for k, v in r.categories.items():
                cats[k] = max(cats.get(k, 0.0), v)
        return ReportRow(
            step=rows[0].step,
            time=rows[0].time,
            wall_s=max(r.wall_s for r in rows),
            categories=cats,
            flux=rows[0].flux,
            phi2=rows[0].phi2,
        )

    def run(self, n_reports: int) -> List[EnsembleReport]:
        """Run ``n_reports`` reporting intervals."""
        if n_reports < 0:
            raise InputError(f"n_reports must be >= 0, got {n_reports}")
        return [self.run_report_interval() for _ in range(n_reports)]
