"""The paper's baseline: the same studies run sequentially with CGYRO.

"...either sequentially with CGYRO or as an ensemble with XGYRO" —
each simulation gets the *whole* machine (its str AllReduce groups are
k times larger than an XGYRO member's), runs to completion, and the
next one starts; wall times add.

Each baseline run gets a fresh virtual world on the same machine
(separate HPC jobs), so clocks, ledgers and traces are per-run; the
summed report is directly comparable to the XGYRO ensemble report.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import EnsembleValidationError, InputError
from repro.cgyro.params import CgyroInput
from repro.cgyro.solver import CgyroSimulation
from repro.cgyro.timing import ReportRow, sum_rows
from repro.machine.model import MachineModel
from repro.vmpi.world import VirtualWorld


class SequentialCgyroBaseline:
    """Run member inputs one after another, each on the full machine."""

    def __init__(
        self,
        machine: MachineModel,
        inputs: Sequence[CgyroInput],
        *,
        n_ranks: Optional[int] = None,
        enforce_memory: bool = False,
        trace: bool = False,
        telemetry=None,
    ) -> None:
        if len(inputs) == 0:
            raise EnsembleValidationError("baseline needs at least one input")
        self.machine = machine
        self.inputs = tuple(inputs)
        self.n_ranks = n_ranks
        self.enforce_memory = enforce_memory
        self.trace = trace
        #: optional :class:`~repro.obs.Telemetry` bundle.  Each run is a
        #: separate job whose world clock restarts at zero, so the
        #: tracer's ``time_offset`` is advanced by each completed run's
        #: wall — member spans line up end to end on one sequential
        #: timeline, directly comparable to an ensemble's overlapped
        #: tree.  (Only the fresh-world :meth:`run_report_interval`
        #: path is instrumented; the persistent :meth:`simulations`
        #: worlds interleave intervals and have no single timeline.)
        self.telemetry = telemetry
        #: worlds of completed runs, for post-hoc trace inspection
        self.worlds: List[VirtualWorld] = []
        self._sims: Optional[List[CgyroSimulation]] = None

    def simulations(self) -> List[CgyroSimulation]:
        """Persistent per-input simulations (one fresh world each).

        Created on first call and advanced by :meth:`run_interval`, so
        multi-interval trajectories continue instead of restarting —
        what the differential oracle (:mod:`repro.check.oracle`) needs
        to compare interval *n* against interval *n* of the ensemble.
        Do not mix with :meth:`run_report_interval`, which rebuilds
        fresh worlds (single-interval semantics) on every call.
        """
        if self._sims is None:
            self.worlds = []
            self._sims = []
            for inp in self.inputs:
                world = VirtualWorld(
                    self.machine,
                    n_ranks=self.n_ranks,
                    enforce_memory=self.enforce_memory,
                    trace=self.trace,
                )
                self._sims.append(
                    CgyroSimulation(world, range(world.n_ranks), inp)
                )
                self.worlds.append(world)
        return self._sims

    def run_interval(self) -> List[ReportRow]:
        """Advance the persistent simulations one reporting interval."""
        cadences = {inp.steps_per_report for inp in self.inputs}
        if len(cadences) != 1:
            raise InputError(
                f"inputs disagree on steps_per_report: {sorted(cadences)}"
            )
        return [sim.run_report_interval() for sim in self.simulations()]

    def run_report_interval(self) -> List[ReportRow]:
        """Run one reporting interval of every input, sequentially.

        Returns one row per input; aggregate with :meth:`summed` or
        :func:`repro.cgyro.timing.sum_rows`.
        """
        cadences = {inp.steps_per_report for inp in self.inputs}
        if len(cadences) != 1:
            raise InputError(
                f"inputs disagree on steps_per_report: {sorted(cadences)}"
            )
        rows: List[ReportRow] = []
        self.worlds = []
        for m, inp in enumerate(self.inputs):
            world = VirtualWorld(
                self.machine,
                n_ranks=self.n_ranks,
                enforce_memory=self.enforce_memory,
                trace=self.trace,
            )
            if self.telemetry is not None:
                self.telemetry.install(world)
                with world.span(
                    f"baseline.m{m}.{inp.name}", "member", member=m
                ):
                    sim = CgyroSimulation(world, range(world.n_ranks), inp)
                    rows.append(sim.run_report_interval())
                # the next run is a fresh job: stack it after this one
                self.telemetry.tracer.time_offset += world.elapsed()
            else:
                sim = CgyroSimulation(world, range(world.n_ranks), inp)
                rows.append(sim.run_report_interval())
            self.worlds.append(world)
        return rows

    def summed(self) -> ReportRow:
        """Run one interval of every input and sum (sequential walls add)."""
        row = sum_rows(self.run_report_interval())
        assert row is not None  # inputs is non-empty
        return row
