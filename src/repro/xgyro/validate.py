"""Ensemble validation: may these members share one cmat?

The contract from the paper: "only a subset of the input parameters
influences [cmat's] value".  :class:`~repro.collision.signature.CmatSignature`
is that subset; members whose signatures differ cannot share, and the
error reports exactly which parameters broke the match — the
diagnostic a user of the real tool would need.

:func:`group_by_signature` computes the full shareable partition of an
arbitrary input set — the primitive the campaign scheduler's
:class:`~repro.campaign.batcher.SignatureBatcher` builds candidate
ensembles from.  :func:`validate_shareable` is its degenerate use:
a valid pre-formed ensemble is exactly one group.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import EnsembleValidationError
from repro.cgyro.params import CgyroInput
from repro.collision.signature import CmatSignature


def group_by_signature(
    inputs: Sequence[CgyroInput],
) -> List[Tuple[CmatSignature, List[int]]]:
    """Partition ``inputs`` into shareable groups.

    Returns ``[(signature, member_indices), ...]`` where every index in
    a group refers to an input whose cmat signature equals the group's.
    Groups appear in first-seen order and indices stay in arrival
    order, so interleaved duplicates land back in one group and the
    first member of the second group is the first input that cannot
    share with input 0.
    """
    groups: Dict[CmatSignature, List[int]] = {}
    for index, inp in enumerate(inputs):
        groups.setdefault(inp.cmat_signature(), []).append(index)
    return list(groups.items())


def validate_shareable(inputs: Sequence[CgyroInput]) -> None:
    """Raise :class:`EnsembleValidationError` unless all members'
    cmat signatures are identical.

    An ensemble also needs at least one member; single-member
    ensembles are legal (they degenerate to plain CGYRO).
    """
    if len(inputs) == 0:
        raise EnsembleValidationError("an ensemble needs at least one member")
    groups = group_by_signature(inputs)
    if len(groups) == 1:
        return
    reference, _ = groups[0]
    offender_sig, offenders = groups[1]
    index = offenders[0]
    fields = reference.diff(offender_sig)
    raise EnsembleValidationError(
        f"ensemble member {index} ({inputs[index].name!r}) cannot share cmat "
        f"with member 0 ({inputs[0].name!r}): these cmat-relevant "
        f"parameters differ: {', '.join(fields)}",
        mismatched_fields=fields,
    )
