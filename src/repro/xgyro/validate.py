"""Ensemble validation: may these members share one cmat?

The contract from the paper: "only a subset of the input parameters
influences [cmat's] value".  :class:`~repro.collision.signature.CmatSignature`
is that subset; members whose signatures differ cannot share, and the
error reports exactly which parameters broke the match — the
diagnostic a user of the real tool would need.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import EnsembleValidationError
from repro.cgyro.params import CgyroInput


def validate_shareable(inputs: Sequence[CgyroInput]) -> None:
    """Raise :class:`EnsembleValidationError` unless all members'
    cmat signatures are identical.

    An ensemble also needs at least one member; single-member
    ensembles are legal (they degenerate to plain CGYRO).
    """
    if len(inputs) == 0:
        raise EnsembleValidationError("an ensemble needs at least one member")
    reference = inputs[0].cmat_signature()
    for index, inp in enumerate(inputs[1:], start=1):
        sig = inp.cmat_signature()
        if not reference.matches(sig):
            fields = reference.diff(sig)
            raise EnsembleValidationError(
                f"ensemble member {index} ({inp.name!r}) cannot share cmat "
                f"with member 0 ({inputs[0].name!r}): these cmat-relevant "
                f"parameters differ: {', '.join(fields)}",
                mismatched_fields=fields,
            )
