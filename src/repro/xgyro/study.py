"""End-to-end study orchestration.

Wraps the whole workflow of a real ensemble study around the ensemble
driver: given a study directory (``input.xgyro`` + member directories)
and a machine, :class:`XgyroStudy` runs the ensemble for a number of
reporting intervals, keeps a per-member
:class:`~repro.cgyro.history.TimeHistory`, and writes the artefacts a
user would keep —

    <study>/<member>/out.cgyro.timing      per-member timing CSV
    <study>/<member>/history.npz           flux/amplitude time series
    <study>/<member>/checkpoint.npz        restartable state
    <study>/out.xgyro.summary              study-level text summary

The CLI's ``run-xgyro`` path stays thin; this is the programmatic
"campaign" API.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.errors import InputError
from repro.cgyro.history import TimeHistory
from repro.cgyro.io import write_timing_csv
from repro.machine.model import MachineModel
from repro.vmpi.world import VirtualWorld
from repro.xgyro.driver import EnsembleReport, XgyroEnsemble
from repro.xgyro.input import parse_ensemble


class XgyroStudy:
    """Run an on-disk ensemble study and persist its outputs."""

    def __init__(
        self,
        study_dir: Union[str, Path],
        machine: MachineModel,
        *,
        enforce_memory: bool = True,
        charge_cmat_build: bool = True,
    ) -> None:
        self.study_dir = Path(study_dir)
        manifest = self.study_dir / "input.xgyro"
        if not manifest.exists():
            raise InputError(f"no input.xgyro in {self.study_dir}")
        self.inputs = parse_ensemble(manifest)
        self.member_dirs = self._member_dirs(manifest)
        self.machine = machine
        self.world = VirtualWorld(machine, enforce_memory=enforce_memory)
        self.ensemble = XgyroEnsemble(
            self.world, self.inputs, charge_cmat_build=charge_cmat_build
        )
        self.histories: List[TimeHistory] = [
            TimeHistory() for _ in self.inputs
        ]
        self.reports: List[EnsembleReport] = []

    @staticmethod
    def _member_dirs(manifest: Path) -> List[Path]:
        dirs: List[Path] = []
        for raw in manifest.read_text().splitlines():
            line = raw.split("#", 1)[0].strip()
            if line.startswith("DIR="):
                dirs.append(manifest.parent / line.split("=", 1)[1].strip())
        return dirs

    # ------------------------------------------------------------------
    def run(self, n_reports: int) -> List[EnsembleReport]:
        """Advance ``n_reports`` intervals, accumulating histories."""
        if n_reports < 1:
            raise InputError("n_reports must be >= 1")
        for _ in range(n_reports):
            report = self.ensemble.run_report_interval()
            self.reports.append(report)
            for hist, row in zip(self.histories, report.member_rows):
                hist.append(row)
        return self.reports

    # ------------------------------------------------------------------
    def write_outputs(self, *, checkpoints: bool = True) -> None:
        """Persist per-member artefacts and the study summary."""
        if not self.reports:
            raise InputError("run() the study before writing outputs")
        for member, hist, directory in zip(
            self.ensemble.members, self.histories, self.member_dirs
        ):
            directory.mkdir(parents=True, exist_ok=True)
            rows = [hist._rows[i] for i in range(len(hist))]
            write_timing_csv(rows, directory / "out.cgyro.timing")
            hist.save(directory / "history.npz")
            if checkpoints:
                member.save_checkpoint(directory / "checkpoint.npz")
        (self.study_dir / "out.xgyro.summary").write_text(self.summary() + "\n")

    def summary(self) -> str:
        """Study-level text summary (also written to disk)."""
        if not self.reports:
            raise InputError("run() the study before summarising")
        last = self.reports[-1]
        lines = [
            f"xgyro study: {len(self.inputs)} members on {self.machine.name}",
            f"reports completed: {len(self.reports)} "
            f"(step {last.ensemble.step}, t = {last.ensemble.time:.4f})",
            f"last interval: wall {last.ensemble.wall_s:.3f} s, "
            f"str comm {last.ensemble.str_comm_s:.3f} s, "
            f"comm total {last.ensemble.comm_s:.3f} s",
            f"shared cmat per rank: {self.world.ledgers[0].size_of('cmat')} B",
            "",
            f"{'member':<24s} {'sum_n Q(n)':>14s} {'sum_n |phi|^2':>14s} "
            f"{'saturated':>10s}",
        ]
        for inp, hist in zip(self.inputs, self.histories):
            flux = float(hist.flux[-1].sum())
            amp = float(hist.phi2[-1].sum())
            sat = "yes" if hist.is_saturated() else "no"
            lines.append(f"{inp.name:<24s} {flux:>+14.5e} {amp:>14.5e} {sat:>10s}")
        return "\n".join(lines)
