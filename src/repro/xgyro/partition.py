"""Rank partitioning and the Figure-3 communicator layout.

An XGYRO job with ``n_ranks`` total ranks and k members assigns member
m the contiguous block ``[m * n_ranks/k, (m+1) * n_ranks/k)`` —
contiguity keeps each member's small comm_1 groups intra-node under
block placement, exactly as the real launcher would.

The ensemble-wide coll communicator for toroidal group ``i2`` contains
the comm_1 groups of *all* members for that group, ordered
member-major:

    [ member 0: (i1=0..P1-1, i2),  member 1: (...),  ... ]

Communicator rank ``j`` of that group owns the j-th slice of the
ensemble nc distribution, ``nc_loc_ens = nc / (k * P1)`` configuration
points — the k-times-finer split that shrinks per-rank cmat by k.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import DecompositionError
from repro.grid.decomp import Decomposition


def partition_ranks(ranks: Sequence[int], n_members: int) -> List[Tuple[int, ...]]:
    """Split ``ranks`` into ``n_members`` equal contiguous blocks."""
    ranks = tuple(int(r) for r in ranks)
    if n_members < 1:
        raise DecompositionError(f"n_members must be >= 1, got {n_members}")
    if len(ranks) % n_members != 0:
        raise DecompositionError(
            f"{len(ranks)} ranks cannot be split into {n_members} equal members"
        )
    per = len(ranks) // n_members
    return [ranks[m * per : (m + 1) * per] for m in range(n_members)]


def ensemble_coll_ranks(
    member_ranks: Sequence[Sequence[int]], decomp: Decomposition, i2: int
) -> Tuple[int, ...]:
    """World ranks of the ensemble coll communicator for group ``i2``.

    ``member_ranks[m][local_rank]`` is member m's rank map; all members
    share the same per-member ``decomp``.
    """
    out: List[int] = []
    for ranks in member_ranks:
        if len(ranks) != decomp.n_proc:
            raise DecompositionError(
                f"member has {len(ranks)} ranks, decomposition needs {decomp.n_proc}"
            )
        out.extend(ranks[lr] for lr in decomp.group_ranks(i2))
    return tuple(out)


def ensemble_nc_loc(decomp: Decomposition, n_members: int) -> int:
    """Configuration points per rank in the shared-cmat distribution.

    Raises when nc does not divide evenly over the ensemble-wide
    group — the constraint the XGYRO launcher must satisfy.
    """
    group = n_members * decomp.n_proc_1
    if decomp.dims.nc % group != 0:
        raise DecompositionError(
            f"nc={decomp.dims.nc} must divide over the ensemble coll group "
            f"({n_members} members x P1={decomp.n_proc_1} = {group} ranks)"
        )
    return decomp.dims.nc // group


def ensemble_nc_slice(decomp: Decomposition, n_members: int, j: int) -> slice:
    """Global nc range owned by ensemble-coll-comm rank ``j``."""
    loc = ensemble_nc_loc(decomp, n_members)
    group = n_members * decomp.n_proc_1
    if not 0 <= j < group:
        raise DecompositionError(f"coll comm rank {j} out of range [0, {group})")
    return slice(j * loc, (j + 1) * loc)
