"""Rank partitioning and the Figure-3 communicator layout.

An XGYRO job with ``n_ranks`` total ranks and k members assigns member
m the contiguous block ``[m * n_ranks/k, (m+1) * n_ranks/k)`` —
contiguity keeps each member's small comm_1 groups intra-node under
block placement, exactly as the real launcher would.

The ensemble-wide coll communicator for toroidal group ``i2`` contains
the comm_1 groups of *all* members for that group, ordered
member-major:

    [ member 0: (i1=0..P1-1, i2),  member 1: (...),  ... ]

Communicator rank ``j`` of that group owns the j-th slice of the
ensemble nc distribution, ``nc_loc_ens = nc / (k * P1)`` configuration
points — the k-times-finer split that shrinks per-rank cmat by k.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import DecompositionError
from repro.grid.decomp import Decomposition


def partition_ranks(ranks: Sequence[int], n_members: int) -> List[Tuple[int, ...]]:
    """Split ``ranks`` into ``n_members`` equal contiguous blocks."""
    ranks = tuple(int(r) for r in ranks)
    if n_members < 1:
        raise DecompositionError(f"n_members must be >= 1, got {n_members}")
    if len(ranks) % n_members != 0:
        raise DecompositionError(
            f"{len(ranks)} ranks cannot be split into {n_members} equal members"
        )
    per = len(ranks) // n_members
    return [ranks[m * per : (m + 1) * per] for m in range(n_members)]


def ensemble_coll_ranks(
    member_ranks: Sequence[Sequence[int]], decomp: Decomposition, i2: int
) -> Tuple[int, ...]:
    """World ranks of the ensemble coll communicator for group ``i2``.

    ``member_ranks[m][local_rank]`` is member m's rank map; all members
    share the same per-member ``decomp``.
    """
    out: List[int] = []
    for ranks in member_ranks:
        if len(ranks) != decomp.n_proc:
            raise DecompositionError(
                f"member has {len(ranks)} ranks, decomposition needs {decomp.n_proc}"
            )
        out.extend(ranks[lr] for lr in decomp.group_ranks(i2))
    return tuple(out)


def ensemble_nc_loc(decomp: Decomposition, n_members: int) -> int:
    """Configuration points per rank in the shared-cmat distribution.

    Raises when nc does not divide evenly over the ensemble-wide
    group — the constraint the XGYRO launcher must satisfy.
    """
    group = n_members * decomp.n_proc_1
    if decomp.dims.nc % group != 0:
        raise DecompositionError(
            f"nc={decomp.dims.nc} must divide over the ensemble coll group "
            f"({n_members} members x P1={decomp.n_proc_1} = {group} ranks)"
        )
    return decomp.dims.nc // group


def ensemble_nc_counts(decomp: Decomposition, n_members: int) -> Tuple[int, ...]:
    """Balanced per-rank nc ownership over the ensemble coll group.

    Unlike :func:`ensemble_nc_loc` this does not require an even split:
    the first ``nc % group`` comm ranks own one extra configuration
    point.  An even split reproduces ``ensemble_nc_loc`` exactly.  The
    uneven case is what makes a shrink-and-recover to k-1 members (or a
    fresh non-power-of-two ensemble) possible — k-1 rarely divides nc.
    Every coll rank must own at least one point (the shared tensor is
    distributed over *all* ranks of the ensemble).
    """
    group = n_members * decomp.n_proc_1
    nc = decomp.dims.nc
    if group > nc:
        raise DecompositionError(
            f"ensemble coll group of {group} ranks exceeds nc={nc}: "
            "some ranks would own no cmat shard"
        )
    base, extra = divmod(nc, group)
    return tuple(base + (1 if j < extra else 0) for j in range(group))


def proportional_nc_counts(
    decomp: Decomposition, n_members: int, weights: Sequence[float]
) -> Tuple[int, ...]:
    """Per-rank nc ownership proportional to per-rank ``weights``.

    The deliberately *unbalanced* counterpart of
    :func:`ensemble_nc_counts`: comm rank ``j`` receives a share of nc
    proportional to ``weights[j]`` (e.g. its node's compute-speed
    multiplier), apportioned by largest remainder with an every-rank-
    owns-at-least-one-point floor.  On a heterogeneous machine this is
    what equalises per-shard ``coll_compute`` time — the lever the
    :mod:`repro.plan` autotuner searches over.  Deterministic: ties in
    the remainders break by comm-rank order.
    """
    group = n_members * decomp.n_proc_1
    nc = decomp.dims.nc
    if group > nc:
        raise DecompositionError(
            f"ensemble coll group of {group} ranks exceeds nc={nc}: "
            "some ranks would own no cmat shard"
        )
    if len(weights) != group:
        raise DecompositionError(
            f"need one weight per coll-comm rank ({group}), got {len(weights)}"
        )
    if any(w <= 0 for w in weights):
        raise DecompositionError(f"weights must be > 0, got {list(weights)}")
    total = float(sum(weights))
    # floor of 1 point per rank; apportion the rest by largest remainder
    spare = nc - group
    quotas = [spare * w / total for w in weights]
    counts = [1 + int(q) for q in quotas]
    remainders = sorted(
        range(group), key=lambda j: (-(quotas[j] - int(quotas[j])), j)
    )
    left = nc - sum(counts)
    for j in remainders[:left]:
        counts[j] += 1
    assert sum(counts) == nc
    return tuple(counts)


def ensemble_nc_slice(decomp: Decomposition, n_members: int, j: int) -> slice:
    """Global nc range owned by ensemble-coll-comm rank ``j``.

    Uses the balanced (possibly uneven) ownership of
    :func:`ensemble_nc_counts`; identical to the historical even split
    whenever nc divides over the group.
    """
    counts = ensemble_nc_counts(decomp, n_members)
    if not 0 <= j < len(counts):
        raise DecompositionError(
            f"coll comm rank {j} out of range [0, {len(counts)})"
        )
    lo = sum(counts[:j])
    return slice(lo, lo + counts[j])


def member_of_rank(
    member_ranks: Sequence[Sequence[int]], world_rank: int
) -> int:
    """Index of the member owning ``world_rank`` (-1 when unowned).

    The blast-radius classifier uses this to map a dead rank back to
    the ensemble member it takes down.
    """
    for m, ranks in enumerate(member_ranks):
        if world_rank in ranks:
            return m
    return -1
