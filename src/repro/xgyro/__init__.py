"""XGYRO: ensemble execution with a shared collisional constant tensor.

The paper's contribution.  XGYRO runs k CGYRO simulations as one HPC
job ("a thin MPI initialization and partitioning layer around the
CGYRO codebase"):

- the job's ranks are partitioned into k contiguous member blocks;
- every member runs the standard solver on its own block — str
  AllReduce groups are now k times smaller;
- the one buffer that is *identical* across parameter-sweep members —
  cmat — is stored once, distributed across **all** ranks of the
  ensemble, which required separating the str-phase nv communicator
  from the coll-phase communicator (Figure 3);
- the coll phase transposes every member's state onto the ensemble-
  wide distribution, applies the shared propagator, and transposes
  back.

Sharing is only legal when member inputs agree on every cmat-relevant
parameter; :func:`validate_shareable` enforces this and reports the
offending fields.

Entry points: :class:`XgyroEnsemble` (the ensemble driver),
:class:`SequentialCgyroBaseline` (the paper's comparison mode), and
:class:`SharedCmatScheme` (the collision scheme implementing the
shared distribution).
"""

from repro.xgyro.baseline import SequentialCgyroBaseline
from repro.xgyro.driver import EnsembleReport, XgyroEnsemble
from repro.xgyro.input import parse_ensemble, write_ensemble
from repro.xgyro.partition import (
    ensemble_coll_ranks,
    ensemble_nc_counts,
    partition_ranks,
    proportional_nc_counts,
)
from repro.xgyro.shared_cmat import SharedCmatScheme
from repro.xgyro.study import XgyroStudy
from repro.xgyro.validate import group_by_signature, validate_shareable

__all__ = [
    "XgyroEnsemble",
    "SequentialCgyroBaseline",
    "SharedCmatScheme",
    "XgyroStudy",
    "EnsembleReport",
    "validate_shareable",
    "group_by_signature",
    "partition_ranks",
    "ensemble_coll_ranks",
    "ensemble_nc_counts",
    "proportional_nc_counts",
    "parse_ensemble",
    "write_ensemble",
]
