"""A labelled metrics registry: counters, gauges, histograms.

Replaces the ad-hoc tallies each subsystem grew on its own (trace byte
sums, cache stats dicts, ledger totals) with one registry every layer
writes into and one exporter everything reads from.  Metric identity is
``(name, sorted labels)``; values are plain floats on the simulated
timeline's side — there is no sampling thread, callers update metrics
at the moment they charge the simulated clocks.

Export formats:

- :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition (``# TYPE`` headers, ``name{label="v"} value`` samples,
  ``_bucket``/``_sum``/``_count`` for histograms);
- :meth:`MetricsRegistry.to_dict` — JSON-safe snapshot, byte-stable
  under round-trip (sorted keys), for machine comparison.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import ReproError

#: Default histogram bucket upper bounds (simulated seconds).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotone accumulator."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ReproError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> float:
        """The cumulative value, frozen for later :meth:`delta`."""
        return self.value

    def delta(self, since: float) -> float:
        """Growth since a :meth:`snapshot` (monotone, so never < 0)."""
        if since > self.value:
            raise ReproError(
                f"counter snapshot {since} is ahead of value {self.value}"
            )
        return self.value - since


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def max(self, value: float) -> None:
        """Raise the gauge to ``value`` if larger (high-water marks)."""
        self.value = max(self.value, float(value))

    def snapshot(self) -> float:
        """The current value, frozen for later :meth:`delta`."""
        return self.value

    def delta(self, since: float) -> float:
        """Signed change since a :meth:`snapshot` (gauges may fall)."""
        return self.value - since


class HistogramSnapshot(NamedTuple):
    """Immutable histogram state, the unit of windowed deltas."""

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]
    sum: float
    count: int


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ReproError(f"histogram buckets must strictly increase: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.buckets)  # per upper bound, non-cumulative
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += float(value)
        self.count += 1
        for i, ub in enumerate(self.buckets):
            if value <= ub:
                self.counts[i] += 1
                break

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for ub, c in zip(self.buckets, self.counts):
            running += c
            out.append((ub, running))
        out.append((float("inf"), self.count))
        return out

    def quantile(self, q: float) -> float:
        """Prometheus-style ``histogram_quantile``: the value below
        which a fraction ``q`` of observations fell, linearly
        interpolated within the bucket that crosses the target rank.

        Matches PromQL semantics at the edges: an empty histogram
        yields ``NaN``; a target rank landing in the +Inf overflow
        bucket yields the highest finite bucket bound (the histogram
        cannot resolve beyond it); the first bucket interpolates from a
        lower bound of zero.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0 or not self.buckets:
            return float("nan")
        target = q * self.count
        lower, cum = 0.0, 0
        for ub, c in zip(self.buckets, self.counts):
            cum += c
            if cum >= target and c > 0:
                return lower + (ub - lower) * (target - (cum - c)) / c
            lower = ub
        # target sits in the +Inf overflow bucket (or past every
        # finite bound): report the largest finite bound
        return self.buckets[-1]

    # ------------------------------------------------------------------
    # windowed-delta protocol
    # ------------------------------------------------------------------
    def snapshot(self) -> HistogramSnapshot:
        """Immutable copy of the cumulative state for later :meth:`delta`."""
        return HistogramSnapshot(
            self.buckets, tuple(self.counts), self.sum, self.count
        )

    def delta(self, since: HistogramSnapshot) -> "Histogram":
        """The histogram of observations recorded *after* ``since``.

        Bucket counts are subtracted exactly — no re-bucketing of raw
        observations — so quantiles of a window delta are as precise as
        quantiles of the cumulative histogram.
        """
        if since.buckets != self.buckets:
            raise ReproError(
                f"histogram delta across different buckets: "
                f"{since.buckets} vs {self.buckets}"
            )
        out = Histogram(self.buckets)
        out.counts = [c - p for c, p in zip(self.counts, since.counts)]
        if any(c < 0 for c in out.counts) or self.count < since.count:
            raise ReproError("histogram snapshot is ahead of the histogram")
        out.sum = self.sum - since.sum
        out.count = self.count - since.count
        return out

    def merge(self, other: "Histogram") -> "Histogram":
        """Add ``other``'s observations into this histogram, in place.

        The exact inverse of :meth:`delta`: merging every window delta
        back together reproduces the cumulative histogram bit-for-bit
        (bucket counts and totals are integer/float sums, and the
        buckets must match exactly).
        """
        if other.buckets != self.buckets:
            raise ReproError(
                f"cannot merge histograms with different buckets: "
                f"{other.buckets} vs {self.buckets}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count
        return self

    @classmethod
    def from_state(
        cls,
        buckets: Tuple[float, ...],
        counts: Tuple[int, ...],
        total: float,
        count: int,
    ) -> "Histogram":
        """Rebuild a histogram from exported state (see ``to_dict``)."""
        out = cls(tuple(float(b) for b in buckets))
        if len(counts) != len(out.buckets):
            raise ReproError(
                f"histogram state has {len(counts)} counts for "
                f"{len(out.buckets)} buckets"
            )
        out.counts = [int(c) for c in counts]
        out.sum = float(total)
        out.count = int(count)
        return out


class MetricsRegistry:
    """Get-or-create registry of labelled metrics."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        """The counter ``name`` with exactly these labels."""
        key = (name, _label_key(labels))
        got = self._counters.get(key)
        if got is None:
            got = self._counters[key] = Counter()
        return got

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge ``name`` with exactly these labels."""
        key = (name, _label_key(labels))
        got = self._gauges.get(key)
        if got is None:
            got = self._gauges[key] = Gauge()
        return got

    def histogram(
        self,
        name: str,
        *,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> Histogram:
        """The histogram ``name`` with exactly these labels."""
        key = (name, _label_key(labels))
        got = self._histograms.get(key)
        if got is None:
            got = self._histograms[key] = Histogram(
                buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return got

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def counter_total(self, name: str, **label_filter: object) -> float:
        """Sum of ``name`` counters whose labels match every filter."""
        want = {str(k): str(v) for k, v in label_filter.items()}
        total = 0.0
        for (n, key), c in self._counters.items():
            if n != name:
                continue
            have = dict(key)
            if all(have.get(k) == v for k, v in want.items()):
                total += c.value
        return total

    def histogram_or_none(
        self, name: str, **labels: object
    ) -> Optional[Histogram]:
        """The histogram if it exists — a read that never creates."""
        return self._histograms.get((name, _label_key(labels)))

    def histograms_named(
        self, name: str
    ) -> List[Tuple[Dict[str, str], Histogram]]:
        """Every labelling of histogram ``name``, sorted by labels."""
        out = []
        for (n, key), h in sorted(self._histograms.items()):
            if n == name:
                out.append((dict(key), h))
        return out

    def names(self) -> Tuple[str, ...]:
        """Distinct metric names, sorted."""
        out = {n for n, _ in self._counters}
        out.update(n for n, _ in self._gauges)
        out.update(n for n, _ in self._histograms)
        return tuple(sorted(out))

    def __iter__(self) -> Iterator[Tuple[str, LabelKey, str, float]]:
        """Yield ``(name, labels, type, value)`` for scalar metrics."""
        for (n, key), c in self._counters.items():
            yield n, key, "counter", c.value
        for (n, key), g in self._gauges.items():
            yield n, key, "gauge", g.value

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot with deterministic ordering."""

        def scalar(table: Mapping[Tuple[str, LabelKey], object], attr: str):
            rows = []
            for (n, key), m in sorted(table.items()):
                rows.append(
                    {
                        "name": n,
                        "labels": {k: v for k, v in key},
                        "value": getattr(m, attr),
                    }
                )
            return rows

        hists = []
        for (n, key), h in sorted(self._histograms.items()):
            hists.append(
                {
                    "name": n,
                    "labels": {k: v for k, v in key},
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
            )
        return {
            "counters": scalar(self._counters, "value"),
            "gauges": scalar(self._gauges, "value"),
            "histograms": hists,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output.

        Round-trips exactly: ``from_dict(r.to_dict()).to_dict()`` is
        byte-identical to ``r.to_dict()``.  This is what lets the CLI
        interrogate an exported metrics JSON (quantiles, totals)
        without re-running the simulation that produced it.
        """
        reg = cls()
        for row in payload.get("counters", ()):  # type: ignore[union-attr]
            reg.counter(str(row["name"]), **row.get("labels", {})).inc(
                float(row["value"])
            )
        for row in payload.get("gauges", ()):  # type: ignore[union-attr]
            reg.gauge(str(row["name"]), **row.get("labels", {})).set(
                float(row["value"])
            )
        for row in payload.get("histograms", ()):  # type: ignore[union-attr]
            key = (str(row["name"]), _label_key(row.get("labels", {})))
            reg._histograms[key] = Histogram.from_state(
                tuple(row["buckets"]),
                tuple(row["counts"]),
                float(row["sum"]),
                int(row["count"]),
            )
        return reg

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every metric, sorted."""
        lines: List[str] = []
        by_name: Dict[str, List[str]] = {}

        for (n, key), c in sorted(self._counters.items()):
            by_name.setdefault(f"counter {n}", []).append(
                f"{n}{_render_labels(key)} {c.value:g}"
            )
        for (n, key), g in sorted(self._gauges.items()):
            by_name.setdefault(f"gauge {n}", []).append(
                f"{n}{_render_labels(key)} {g.value:g}"
            )
        for (n, key), h in sorted(self._histograms.items()):
            rows = by_name.setdefault(f"histogram {n}", [])
            for ub, cum in h.cumulative():
                le = "+Inf" if ub == float("inf") else f"{ub:g}"
                bucket_key = key + (("le", le),)
                rows.append(f"{n}_bucket{_render_labels(bucket_key)} {cum}")
            rows.append(f"{n}_sum{_render_labels(key)} {h.sum:g}")
            rows.append(f"{n}_count{_render_labels(key)} {h.count}")

        for typed_name in sorted(by_name):
            mtype, name = typed_name.split(" ", 1)
            lines.append(f"# TYPE {name} {mtype}")
            lines.extend(by_name[typed_name])
        return "\n".join(lines) + ("\n" if lines else "")
