"""The live monitoring plane: rollups, alerts, incident diagnosis.

Everything the repo measures about the online service so far is
*post-mortem*: the :class:`~repro.service.report.ServiceReport` exists
only after the horizon drains, so a rack loss at t=250 s is invisible
until the run ends.  This module watches the service *while it runs*,
on the simulated clock, with zero model impact — the monitor never
pushes events, never mutates service state, and never reads a live
RNG, so per-request dispositions are bit-identical with monitoring on
or off.

Three layers, evaluated once per window:

1. **Streaming rollups** (:class:`WindowRollup`) — windowed deltas
   over the shared :class:`~repro.obs.metrics.MetricsRegistry` using
   the counter/histogram ``snapshot()/delta()`` protocol: arrivals,
   completions, shed/SLO-miss rates, exact p50/p99 TTR per window (no
   re-bucketing), queue depth, pool utilisation, cache hit rate, and
   per-fault-domain imposed wait.  Exported as a byte-stable JSONL
   time series (:func:`export_rollups_jsonl`).
2. **Alert rules** (:class:`AlertRule` / :class:`AlertEngine`) —
   declarative ``threshold`` rules, multi-window SLO **burn-rate**
   rules in the SRE fast/slow style (both the fast and the slow
   window must burn the error budget above their factors), and
   ``anomaly`` rules using the same rolling median+MAD statistic as
   the straggler detector (:func:`repro.resilience.health.robust_cutoff`)
   over the metric's own window history.  Rules carry a
   fired/resolved lifecycle; :func:`default_rulebook` is the committed
   rulebook for the service SLOs.
3. **Incident diagnosis** (:class:`IncidentReport`) — when a rule
   fires, the monitor walks the recent rollups, the node-health
   ledger, the resilience counters, and the live span tree
   (:meth:`~repro.obs.span.SpanTracer.open_spans`) and attributes the
   breach to a cause: ``service_crash``, ``domain_loss``,
   ``provision_stall``, ``node_slowdown``, ``cache_hit_collapse``,
   ``admission_backpressure``, or ``unknown``.  The most *recent*
   signal in the lookback wins (a rack loss three windows ago does
   not steal the blame from a provisioning stall this window); ties
   fall to the blast-radius order above.  Reports are byte-stable and
   name their evidence spans.

Wire-up: pass ``monitor=ServiceMonitor(...)`` to
:class:`~repro.service.loop.OnlineService` (telemetry required — the
rollups are deltas over its registry).  The service calls
:meth:`ServiceMonitor.begin` / :meth:`~ServiceMonitor.advance` /
:meth:`~ServiceMonitor.finish`; the finished summary lands on
``ServiceReport.monitoring`` and renders in ``render_service_report``
and the ``repro monitor`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.obs.metrics import HistogramSnapshot, MetricsRegistry
from repro.resilience.health import robust_cutoff

#: JSONL header for rollup time series (one rollup per line).
ROLLUP_FORMAT = "repro-rollups-v1"
#: Format tag of the monitor summary dict.
MONITOR_FORMAT = "repro-monitor-v1"

#: Rollup key -> cumulative service counter it is the window delta of.
COUNTER_METRICS: Tuple[Tuple[str, str], ...] = (
    ("arrivals", "service_arrivals_total"),
    ("completions", "service_completions_total"),
    ("shed", "service_shed_total"),
    ("slo_misses", "service_slo_miss_total"),
    ("retries", "service_retries_total"),
    ("dead_letters", "service_dead_letters_total"),
    ("dispatches", "service_dispatch_total"),
)

#: Rollup key -> key in ``OnlineService.resilience_counters()``.
RESIL_METRICS: Tuple[Tuple[str, str], ...] = (
    ("crashes", "crashes"),
    ("domain_losses", "domain_losses"),
    ("provision_failures", "provision_failures"),
    ("provision_stall_s", "provision_stall_seconds"),
    ("downtime_shed", "downtime_shed"),
    ("recovery_s", "recovery_seconds"),
)

#: Labelled counter carrying per-fault-domain imposed collective wait
#: (charged by the campaign runner as jobs finish).
DOMAIN_WAIT_COUNTER = "campaign_domain_imposed_wait_seconds_total"

RULE_KINDS = ("threshold", "burn_rate", "anomaly")

#: Causes a diagnosis can name, in blast-radius (tie-break) order.
CAUSES = (
    "service_crash",
    "domain_loss",
    "provision_stall",
    "node_slowdown",
    "cache_hit_collapse",
    "admission_backpressure",
    "unknown",
)


def _dumps(obj: Mapping[str, object]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _json_float(x: float) -> Optional[float]:
    """NaN is not JSON; empty-window quantiles serialise as None."""
    return None if x != x else float(x)


# ----------------------------------------------------------------------
# layer 1: streaming rollups
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowRollup:
    """One window's worth of service metrics.

    ``metrics`` is a flat name->float map (the alert rules' input);
    quantiles of an empty window are ``NaN`` in memory and ``null`` in
    JSON.  ``domains`` maps fault-domain id (as a string, JSON-style)
    to the collective wait imposed by that domain's nodes during the
    window.
    """

    index: int
    t_start: float
    t_end: float
    metrics: Dict[str, float] = field(default_factory=dict)
    domains: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe, byte-stable under sorted-key dumps."""
        return {
            "index": self.index,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "metrics": {
                k: _json_float(v) for k, v in sorted(self.metrics.items())
            },
            "domains": {
                k: float(v) for k, v in sorted(self.domains.items())
            },
        }

    @staticmethod
    def from_dict(d: Mapping[str, object]) -> "WindowRollup":
        """Inverse of :meth:`to_dict` (None comes back as NaN)."""
        return WindowRollup(
            index=int(d["index"]),
            t_start=float(d["t_start"]),
            t_end=float(d["t_end"]),
            metrics={
                str(k): float("nan") if v is None else float(v)
                for k, v in dict(d.get("metrics", {})).items()
            },
            domains={
                str(k): float(v)
                for k, v in dict(d.get("domains", {})).items()
            },
        )


def export_rollups_jsonl(
    rollups: Sequence[WindowRollup], path: Union[str, Path]
) -> int:
    """Write the rollup time series as JSONL (header first); returns
    the rollup count.  Byte-stable: re-exporting a loaded file
    reproduces it exactly."""
    lines = [_dumps({"format": ROLLUP_FORMAT})]
    for r in rollups:
        lines.append(_dumps(r.to_dict()))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(rollups)


def load_rollups_jsonl(path: Union[str, Path]) -> List[WindowRollup]:
    """Inverse of :func:`export_rollups_jsonl`."""
    out: List[WindowRollup] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        if "format" in doc and "index" not in doc:
            continue  # header line
        out.append(WindowRollup.from_dict(doc))
    return out


# ----------------------------------------------------------------------
# layer 2: alert rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlertRule:
    """One declarative alert rule, evaluated once per closed window.

    Kinds
    -----
    ``threshold``
        Fires when ``metrics[metric] > threshold`` (windowed deltas,
        so a threshold of 0 means "any occurrence this window").
    ``burn_rate``
        SRE multi-window error-budget burn: the ratio
        ``sum(num) / sum(den)`` over the last ``fast_windows`` and the
        last ``slow_windows`` is divided by ``budget``; the rule
        breaches only when the fast burn is >= ``fast_burn`` *and*
        the slow burn is >= ``slow_burn`` (fast catches the step
        change, slow suppresses blips).
    ``anomaly``
        Rolling robust deviation over the metric's own history (the
        previous ``history_windows`` evaluable windows, at least
        ``min_history`` of them): breaches when the value leaves
        ``median ± mad_threshold * max(MAD, rel_floor * median)`` on
        the side named by ``direction``, and (for ``above``) exceeds
        ``min_value``.  Windows where ``gate_metric <= gate_min`` (or
        the value is NaN) neither evaluate nor enter history.

    ``for_windows`` consecutive breaches are required to fire; one
    clean window resolves.
    """

    name: str
    kind: str
    metric: str = ""
    description: str = ""
    severity: str = "page"
    for_windows: int = 1
    # threshold
    threshold: float = 0.0
    # burn_rate
    num: str = ""
    den: str = ""
    budget: float = 0.05
    fast_windows: int = 1
    slow_windows: int = 6
    fast_burn: float = 8.0
    slow_burn: float = 2.0
    # anomaly
    direction: str = "above"
    mad_threshold: float = 4.0
    rel_floor: float = 0.25
    history_windows: int = 8
    min_history: int = 3
    min_value: float = 0.0
    gate_metric: str = ""
    gate_min: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ReproError(
                f"rule kind must be one of {RULE_KINDS}, got {self.kind!r}"
            )
        if self.kind == "burn_rate":
            if not (self.num and self.den):
                raise ReproError(
                    f"burn_rate rule {self.name!r} needs num and den metrics"
                )
            if self.budget <= 0:
                raise ReproError(
                    f"burn_rate rule {self.name!r} needs a budget > 0"
                )
            if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
                raise ReproError(
                    f"rule {self.name!r}: need 1 <= fast_windows <= "
                    f"slow_windows"
                )
        elif not self.metric:
            raise ReproError(f"rule {self.name!r} names no metric")
        if self.direction not in ("above", "below"):
            raise ReproError(
                f"rule {self.name!r}: direction must be above|below"
            )
        if self.for_windows < 1:
            raise ReproError(f"rule {self.name!r}: for_windows must be >= 1")
        if self.min_history < 1:
            raise ReproError(f"rule {self.name!r}: min_history must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe mapping (the rulebook file format)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "description": self.description,
            "severity": self.severity,
            "for_windows": self.for_windows,
            "threshold": self.threshold,
            "num": self.num,
            "den": self.den,
            "budget": self.budget,
            "fast_windows": self.fast_windows,
            "slow_windows": self.slow_windows,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "direction": self.direction,
            "mad_threshold": self.mad_threshold,
            "rel_floor": self.rel_floor,
            "history_windows": self.history_windows,
            "min_history": self.min_history,
            "min_value": self.min_value,
            "gate_metric": self.gate_metric,
            "gate_min": self.gate_min,
        }

    @staticmethod
    def from_dict(d: Mapping[str, object]) -> "AlertRule":
        """Inverse of :meth:`to_dict`; omitted keys take defaults."""
        known = {
            k: v for k, v in d.items() if k in AlertRule.__dataclass_fields__
        }
        unknown = sorted(set(d) - set(known))
        if unknown:
            raise ReproError(f"unknown rule fields: {unknown}")
        return AlertRule(**known)  # type: ignore[arg-type]


def load_rulebook(path: Union[str, Path]) -> Tuple[AlertRule, ...]:
    """Read a JSON rulebook: ``{"rules": [{...}, ...]}``."""
    doc = json.loads(Path(path).read_text())
    return tuple(AlertRule.from_dict(r) for r in doc.get("rules", ()))


def dump_rulebook(
    rules: Sequence[AlertRule], path: Union[str, Path]
) -> None:
    """Write a rulebook JSON (inverse of :func:`load_rulebook`)."""
    Path(path).write_text(
        json.dumps(
            {"rules": [r.to_dict() for r in rules]},
            sort_keys=True,
            indent=2,
        )
        + "\n"
    )


def default_rulebook() -> Tuple[AlertRule, ...]:
    """The committed rulebook for the online service's SLOs.

    Symptom rules first (SLO burn, shed burn, queue/TTR anomalies,
    cache-hit collapse, per-domain imposed wait) — these are what an
    operator pages on — then infra rules on the control-plane fault
    counters themselves (a crash, rack loss, or provisioning error is
    alertable the window it happens, exactly as a cloud provider's
    health feed would).
    """
    return (
        AlertRule(
            name="slo-burn", kind="burn_rate",
            num="slo_misses", den="completions", budget=0.05,
            fast_windows=1, slow_windows=6, fast_burn=8.0, slow_burn=2.0,
            description="SLO-miss rate burns >8x budget fast and >2x slow",
        ),
        AlertRule(
            name="shed-burn", kind="burn_rate",
            num="shed", den="arrivals", budget=0.02,
            fast_windows=1, slow_windows=6, fast_burn=8.0, slow_burn=2.0,
            description="admission sheds burn >8x the 2% shed budget",
        ),
        AlertRule(
            name="queue-depth", kind="anomaly", metric="queue_depth",
            mad_threshold=4.0, min_value=4.0,
            description="admitted-but-undispatched depth left its history",
        ),
        AlertRule(
            name="ttr-p99", kind="anomaly", metric="ttr_p99_s",
            mad_threshold=4.0,
            description="window p99 time-to-result left its history",
        ),
        AlertRule(
            name="cache-hit-collapse", kind="anomaly",
            metric="cache_hit_rate", direction="below",
            mad_threshold=3.0, rel_floor=0.1, min_history=4,
            gate_metric="cache_lookups", gate_min=0.5,
            description="cmat cache hit rate collapsed below its history",
        ),
        AlertRule(
            name="domain-wait", kind="anomaly",
            metric="domain_wait_max_s", mad_threshold=6.0, min_value=1.0,
            description="one fault domain imposes anomalous collective wait",
        ),
        AlertRule(
            name="control-crash", kind="threshold", metric="crashes",
            description="the service control plane crashed this window",
        ),
        AlertRule(
            name="domain-down", kind="threshold", metric="domain_losses",
            description="a fault domain (rack) was lost this window",
        ),
        AlertRule(
            name="provision-stall", kind="threshold",
            metric="provision_failures",
            description="the pool failed to provision capacity",
        ),
        AlertRule(
            name="provision-slow", kind="threshold",
            metric="provision_stall_s",
            description="pool provisioning stalled (slow capacity delivery)",
        ),
        AlertRule(
            name="dead-letters", kind="threshold", metric="dead_letters",
            severity="ticket",
            description="requests were dead-lettered this window",
        ),
    )


@dataclass(frozen=True)
class AlertEvent:
    """One lifecycle transition of a rule: fired or resolved."""

    rule: str
    state: str  # "fired" | "resolved"
    t_s: float
    window_index: int
    value: float
    severity: str = "page"
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "rule": self.rule,
            "state": self.state,
            "t_s": self.t_s,
            "window_index": self.window_index,
            "value": _json_float(self.value),
            "severity": self.severity,
            "detail": self.detail,
        }


class _RuleState:
    __slots__ = ("streak", "firing")

    def __init__(self) -> None:
        self.streak = 0
        self.firing = False


class AlertEngine:
    """Evaluates a rulebook against the growing rollup series."""

    def __init__(self, rules: Sequence[AlertRule]) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ReproError(f"duplicate rule names: {dupes}")
        self.rules = tuple(rules)
        self._state = {r.name: _RuleState() for r in self.rules}

    @property
    def firing(self) -> Tuple[str, ...]:
        """Names of currently-firing rules, rulebook order."""
        return tuple(
            r.name for r in self.rules if self._state[r.name].firing
        )

    def evaluate(self, rollups: Sequence[WindowRollup]) -> List[AlertEvent]:
        """Evaluate every rule against the newest rollup; returns the
        lifecycle transitions (empty when nothing changed state)."""
        if not rollups:
            return []
        cur = rollups[-1]
        events: List[AlertEvent] = []
        for rule in self.rules:
            verdict = self._check(rule, rollups)
            st = self._state[rule.name]
            if verdict is None:  # not evaluable this window: hold state
                continue
            breach, value, detail = verdict
            if breach:
                st.streak += 1
                if not st.firing and st.streak >= rule.for_windows:
                    st.firing = True
                    events.append(
                        AlertEvent(
                            rule=rule.name, state="fired", t_s=cur.t_end,
                            window_index=cur.index, value=value,
                            severity=rule.severity, detail=detail,
                        )
                    )
            else:
                st.streak = 0
                if st.firing:
                    st.firing = False
                    events.append(
                        AlertEvent(
                            rule=rule.name, state="resolved", t_s=cur.t_end,
                            window_index=cur.index, value=value,
                            severity=rule.severity, detail=detail,
                        )
                    )
        return events

    # ------------------------------------------------------------------
    def _check(
        self, rule: AlertRule, rollups: Sequence[WindowRollup]
    ) -> Optional[Tuple[bool, float, str]]:
        """``(breached, value, detail)`` or None when not evaluable."""
        if rule.kind == "threshold":
            value = rollups[-1].metrics.get(rule.metric, 0.0)
            if value != value:
                return None
            return (
                value > rule.threshold,
                value,
                f"{rule.metric}={value:g} vs threshold {rule.threshold:g}",
            )
        if rule.kind == "burn_rate":
            fast = _window_ratio(
                rollups[-rule.fast_windows:], rule.num, rule.den
            )
            slow = _window_ratio(
                rollups[-rule.slow_windows:], rule.num, rule.den
            )
            fast_x = fast / rule.budget
            slow_x = slow / rule.budget
            return (
                fast_x >= rule.fast_burn and slow_x >= rule.slow_burn,
                fast_x,
                (
                    f"{rule.num}/{rule.den} burn {fast_x:.1f}x fast / "
                    f"{slow_x:.1f}x slow of {rule.budget:g} budget"
                ),
            )
        # anomaly: robust deviation against the metric's own history
        evaluable = [
            r.metrics[rule.metric]
            for r in rollups
            if _anomaly_evaluable(rule, r)
        ]
        if not _anomaly_evaluable(rule, rollups[-1]):
            return None
        value = evaluable[-1]
        history = evaluable[:-1][-rule.history_windows:]
        if len(history) < rule.min_history:
            return False, value, "warming up"
        med, mad, cut_above = robust_cutoff(
            history, threshold=rule.mad_threshold, rel_floor=rule.rel_floor
        )
        if rule.direction == "above":
            cut = max(cut_above, rule.min_value)
            return (
                value > cut,
                value,
                f"{rule.metric}={value:g} vs median {med:g} cutoff {cut:g}",
            )
        cut = med - rule.mad_threshold * max(mad, rule.rel_floor * med)
        return (
            value < cut,
            value,
            f"{rule.metric}={value:g} vs median {med:g} floor {cut:g}",
        )


def _window_ratio(
    rollups: Sequence[WindowRollup], num: str, den: str
) -> float:
    """Count-weighted ratio over a window span (0 on an empty span)."""
    total_den = sum(r.metrics.get(den, 0.0) for r in rollups)
    if total_den <= 0:
        return 0.0
    return sum(r.metrics.get(num, 0.0) for r in rollups) / total_den


def _anomaly_evaluable(rule: AlertRule, rollup: WindowRollup) -> bool:
    value = rollup.metrics.get(rule.metric, float("nan"))
    if value != value:
        return False
    if rule.gate_metric:
        if rollup.metrics.get(rule.gate_metric, 0.0) <= rule.gate_min:
            return False
    return True


# ----------------------------------------------------------------------
# layer 3: incident diagnosis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IncidentReport:
    """A fired alert attributed to a cause, with its evidence."""

    incident_id: str
    alert: str
    severity: str
    cause: str
    fired_at_s: float
    window_index: int
    value: float
    alert_detail: str
    cause_detail: str
    evidence: Dict[str, object] = field(default_factory=dict)

    @property
    def narrative(self) -> str:
        """One operator-readable line."""
        spans = self.evidence.get("spans", [])
        names = ", ".join(s["name"] for s in spans[:3])  # type: ignore[index]
        tail = f"; evidence spans: {names}" if names else ""
        return (
            f"{self.incident_id}: {self.alert} fired at "
            f"t={self.fired_at_s:.0f}s (window {self.window_index}, "
            f"{self.alert_detail}) -> {self.cause}: "
            f"{self.cause_detail}{tail}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe, byte-stable representation."""
        return {
            "incident_id": self.incident_id,
            "alert": self.alert,
            "severity": self.severity,
            "cause": self.cause,
            "fired_at_s": self.fired_at_s,
            "window_index": self.window_index,
            "value": _json_float(self.value),
            "alert_detail": self.alert_detail,
            "cause_detail": self.cause_detail,
            "evidence": self.evidence,
            "narrative": self.narrative,
        }


def _cause_signals(
    look: Sequence[WindowRollup],
) -> List[Tuple[int, int, str, str]]:
    """Candidate causes present in the lookback rollups, each as
    ``(last_window_seen, -precedence, cause, detail)``."""

    def latest(key: str) -> Optional[WindowRollup]:
        hits = [r for r in look if r.metrics.get(key, 0.0) > 0.0]
        return hits[-1] if hits else None

    out: List[Tuple[int, int, str, str]] = []

    r = latest("crashes") or latest("downtime_shed")
    if r is not None:
        out.append(
            (
                r.index, -CAUSES.index("service_crash"), "service_crash",
                f"control plane crashed in window {r.index} "
                f"({int(r.metrics.get('downtime_shed', 0))} arrivals shed "
                f"while down, recovery {r.metrics.get('recovery_s', 0.0):g} s)",
            )
        )
    r = latest("domain_losses")
    if r is not None:
        out.append(
            (
                r.index, -CAUSES.index("domain_loss"), "domain_loss",
                f"fault domain lost in window {r.index} "
                f"({int(r.metrics.get('retries', 0))} retries queued)",
            )
        )
    r = latest("provision_failures") or latest("provision_stall_s")
    if r is not None:
        out.append(
            (
                r.index, -CAUSES.index("provision_stall"), "provision_stall",
                f"pool provisioning failed/stalled in window {r.index} "
                f"(stall {r.metrics.get('provision_stall_s', 0.0):g} s)",
            )
        )
    r = latest("straggler_incidents")
    if r is not None:
        out.append(
            (
                r.index, -CAUSES.index("node_slowdown"), "node_slowdown",
                f"straggler incidents on the health ledger in window "
                f"{r.index}",
            )
        )
    collapsed = [
        r
        for r in look
        if r.metrics.get("cache_lookups", 0.0) > 0.0
        and r.metrics.get("cache_hit_rate", 1.0) <= 0.25
    ]
    if collapsed:
        r = collapsed[-1]
        out.append(
            (
                r.index, -CAUSES.index("cache_hit_collapse"),
                "cache_hit_collapse",
                f"cmat cache hit rate fell to "
                f"{r.metrics.get('cache_hit_rate', 0.0):.2f} in window "
                f"{r.index}",
            )
        )
    shed = [
        r
        for r in look
        if r.metrics.get("shed", 0.0) > 0.0
        and r.metrics.get("downtime_shed", 0.0) <= 0.0
    ]
    if shed:
        r = shed[-1]
        out.append(
            (
                r.index, -CAUSES.index("admission_backpressure"),
                "admission_backpressure",
                f"admission bound shed {int(r.metrics.get('shed', 0))} "
                f"arrivals in window {r.index} "
                f"(queue depth {r.metrics.get('queue_depth', 0.0):g})",
            )
        )
    return out


# ----------------------------------------------------------------------
# the monitor
# ----------------------------------------------------------------------
class ServiceMonitor:
    """Passive observer the :class:`~repro.service.loop.OnlineService`
    drives between events.

    Parameters
    ----------
    telemetry:
        The service's telemetry bundle.  May be left ``None`` here;
        the service binds its own bundle at ``run()``/``resume()``.
    window_s:
        Rollup window length in simulated seconds.
    rules:
        The rulebook (default :func:`default_rulebook`).
    lookback_windows:
        How many windows of history a diagnosis inspects.
    max_evidence_spans:
        Cap on evidence spans named per incident.
    """

    def __init__(
        self,
        telemetry=None,
        *,
        window_s: float = 60.0,
        rules: Optional[Sequence[AlertRule]] = None,
        lookback_windows: int = 6,
        max_evidence_spans: int = 5,
    ) -> None:
        if window_s <= 0:
            raise ReproError(f"window_s must be > 0, got {window_s}")
        if lookback_windows < 1:
            raise ReproError(
                f"lookback_windows must be >= 1, got {lookback_windows}"
            )
        self.telemetry = telemetry
        self.window_s = float(window_s)
        self.rules = (
            tuple(rules) if rules is not None else default_rulebook()
        )
        self.lookback_windows = int(lookback_windows)
        self.max_evidence_spans = int(max_evidence_spans)
        self.engine = AlertEngine(self.rules)
        self.rollups: List[WindowRollup] = []
        self.alerts: List[AlertEvent] = []
        self.incidents: List[IncidentReport] = []
        self._began = False
        self._t0 = 0.0
        self._index = 0
        self._marks: Dict[str, float] = {}
        self._domain_marks: Dict[str, float] = {}
        self._ttr_mark: Optional[HistogramSnapshot] = None
        self._cache_mark: Tuple[float, float] = (0.0, 0.0)
        self._health_mark = 0
        self._incident_seq = 0

    def bind(self, telemetry) -> None:
        """Attach the service's telemetry bundle (idempotent; called
        by the service loop before the first event)."""
        if self.telemetry is None:
            self.telemetry = telemetry
        elif self.telemetry is not telemetry:
            raise ReproError(
                "monitor is bound to a different telemetry bundle than "
                "the service's"
            )

    # ------------------------------------------------------------------
    # service-loop hooks (pure reads of service state)
    # ------------------------------------------------------------------
    def begin(self, service, t0: float) -> None:
        """Start (or restart, after recovery) the window clock at
        ``t0`` and capture baseline snapshots."""
        if self.telemetry is None:
            raise ReproError("ServiceMonitor.begin() before bind()")
        self._began = True
        self._t0 = float(t0)
        self._index = 0
        self._take_marks(service)

    def advance(self, service, t_now: float) -> None:
        """Close every window that ends at or before ``t_now``.

        The service calls this as each event is popped, *before*
        handling it — every metric still reflects events strictly
        earlier than ``t_now``, so a window ending at or before
        ``t_now`` closes on exactly the events inside it (an event at
        the boundary belongs to the next window).
        """
        if not self._began:
            return
        while self._next_end() <= t_now:
            end = self._next_end()
            self._close_window(service, end - self.window_s, end)
            self._index += 1

    def finish(self, service, t_end: float) -> Dict[str, object]:
        """Close trailing windows (including a final partial one) and
        return the summary dict for the service report."""
        if not self._began:
            return {}
        self.advance(service, t_end)
        start = self._t0 + self._index * self.window_s
        if t_end > start:
            self._close_window(service, start, t_end)
            self._index += 1
        return self.summary()

    def _next_end(self) -> float:
        return self._t0 + (self._index + 1) * self.window_s

    # ------------------------------------------------------------------
    def _take_marks(self, service) -> None:
        m = self.telemetry.metrics
        for _, cname in COUNTER_METRICS:
            self._marks[cname] = m.counter_total(cname)
        self._domain_marks = dict(self._domain_totals(m))
        hist = m.histogram_or_none("service_ttr_seconds")
        self._ttr_mark = hist.snapshot() if hist is not None else None
        self._cache_mark = self._cache_totals(service)
        self._health_mark = len(service.health.incidents())
        resil = service.resilience_counters()
        for _, rkey in RESIL_METRICS:
            self._marks[f"resil.{rkey}"] = float(resil.get(rkey, 0.0))

    @staticmethod
    def _domain_totals(m: MetricsRegistry) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, key, mtype, value in m:
            if name == DOMAIN_WAIT_COUNTER and mtype == "counter":
                out[dict(key).get("domain", "0")] = value
        return out

    @staticmethod
    def _cache_totals(service) -> Tuple[float, float]:
        cache = service.runner.cache
        if cache is None:
            return 0.0, 0.0
        stats = cache.stats()
        hits = float(stats.get("hits", 0.0))
        return hits, hits + float(stats.get("misses", 0.0))

    def _close_window(self, service, t_start: float, t_end: float) -> None:
        m = self.telemetry.metrics
        met: Dict[str, float] = {}
        for key, cname in COUNTER_METRICS:
            cur = m.counter_total(cname)
            met[key] = cur - self._marks.get(cname, 0.0)
            self._marks[cname] = cur
        met["shed_rate"] = (
            met["shed"] / met["arrivals"] if met["arrivals"] else 0.0
        )
        met["slo_miss_rate"] = (
            met["slo_misses"] / met["completions"]
            if met["completions"]
            else 0.0
        )
        # exact window quantiles: histogram delta, no re-bucketing
        hist = m.histogram_or_none("service_ttr_seconds")
        if hist is None:
            p50 = p99 = float("nan")
        else:
            window = (
                hist.delta(self._ttr_mark)
                if self._ttr_mark is not None
                else hist
            )
            p50, p99 = window.quantile(0.5), window.quantile(0.99)
            self._ttr_mark = hist.snapshot()
        met["ttr_p50_s"] = p50
        met["ttr_p99_s"] = p99
        # instantaneous state at the window boundary
        met["queue_depth"] = float(service.queue_depth)
        met["inflight_jobs"] = float(service.inflight_jobs)
        met["pool_provisioned"] = float(service.pool.provisioned)
        met["pool_busy"] = float(service.pool.busy)
        met["pool_utilisation"] = (
            met["pool_busy"] / met["pool_provisioned"]
            if met["pool_provisioned"]
            else 0.0
        )
        # cmat cache over the window
        hits, lookups = self._cache_totals(service)
        d_hits = hits - self._cache_mark[0]
        d_lookups = lookups - self._cache_mark[1]
        self._cache_mark = (hits, lookups)
        met["cache_lookups"] = d_lookups
        met["cache_hit_rate"] = (
            d_hits / d_lookups if d_lookups > 0 else float("nan")
        )
        # resilience counters (control-plane fault activity)
        resil = service.resilience_counters()
        for key, rkey in RESIL_METRICS:
            cur = float(resil.get(rkey, 0.0))
            met[key] = cur - self._marks.get(f"resil.{rkey}", 0.0)
            self._marks[f"resil.{rkey}"] = cur
        # node-health incident deltas
        incidents = service.health.incidents()
        fresh = incidents[self._health_mark:]
        self._health_mark = len(incidents)
        met["health_incidents"] = float(len(fresh))
        met["straggler_incidents"] = float(
            sum(1 for i in fresh if i.kind == "straggler")
        )
        # per-fault-domain imposed wait
        domain_now = self._domain_totals(m)
        domains = {
            d: v - self._domain_marks.get(d, 0.0)
            for d, v in sorted(domain_now.items())
        }
        self._domain_marks = domain_now
        met["domain_wait_max_s"] = max(domains.values(), default=0.0)
        rollup = WindowRollup(
            index=self._index,
            t_start=float(t_start),
            t_end=float(t_end),
            metrics=met,
            domains=domains,
        )
        self.rollups.append(rollup)
        for event in self.engine.evaluate(self.rollups):
            self.alerts.append(event)
            if event.state == "fired":
                self.incidents.append(self._diagnose(service, event))

    # ------------------------------------------------------------------
    def _diagnose(self, service, event: AlertEvent) -> IncidentReport:
        look = self.rollups[-self.lookback_windows:]
        t0 = look[0].t_start
        signals = _cause_signals(look)
        if signals:
            _, _, cause, cause_detail = max(signals)
        else:
            cause, cause_detail = (
                "unknown",
                "no fault signal in the lookback windows",
            )
        health = [
            i.to_dict()
            for i in service.health.incidents_between(t0, event.t_s)
        ]
        spans = self._evidence_spans(t0, event.t_s)
        self._incident_seq += 1
        return IncidentReport(
            incident_id=f"inc{self._incident_seq:03d}",
            alert=event.rule,
            severity=event.severity,
            cause=cause,
            fired_at_s=event.t_s,
            window_index=event.window_index,
            value=event.value,
            alert_detail=event.detail,
            cause_detail=cause_detail,
            evidence={
                "lookback": [t0, event.t_s],
                "health_incidents": health,
                "resilience": {
                    key: sum(r.metrics.get(key, 0.0) for r in look)
                    for key, _ in RESIL_METRICS
                },
                "spans": spans,
            },
        )

    def _evidence_spans(
        self, t0: float, t1: float
    ) -> List[Dict[str, object]]:
        """Completed + live spans overlapping the lookback, newest
        first, scheduler-level kinds only (jobs, markers, recoveries
        — not per-collective leaves)."""
        tracer = self.telemetry.tracer
        keep = ("job", "marker", "recovery", "migration", "checkpoint")
        hits = [
            s
            for s in tracer.spans
            if s.kind in keep and s.t_end >= t0 and s.t_start <= t1
        ]
        hits.extend(
            s for s in tracer.open_spans(t1) if s.kind in keep
        )
        hits.sort(key=lambda s: (-s.t_start, s.span_id))
        return [
            {
                "span_id": s.span_id,
                "name": s.name,
                "kind": s.kind,
                "t_start": s.t_start,
                "duration": s.duration,
            }
            for s in hits[: self.max_evidence_spans]
        ]

    # ------------------------------------------------------------------
    # summary / rendering
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """The byte-stable monitoring block of the service report."""
        return {
            "format": MONITOR_FORMAT,
            "window_s": self.window_s,
            "n_windows": len(self.rollups),
            "rules": [r.name for r in self.rules],
            "n_fired": sum(1 for a in self.alerts if a.state == "fired"),
            "n_resolved": sum(
                1 for a in self.alerts if a.state == "resolved"
            ),
            "firing_at_end": list(self.engine.firing),
            "alerts": [a.to_dict() for a in self.alerts],
            "incidents": [i.to_dict() for i in self.incidents],
        }


def render_monitor_report(summary: Mapping[str, object]) -> str:
    """Operator-readable alert timeline + incident narratives."""
    if not summary:
        return "monitoring: off\n"
    lines = [
        (
            f"monitoring: {summary['n_windows']} windows x "
            f"{summary['window_s']:g} s, "
            f"{len(summary.get('rules', []))} rules, "  # type: ignore[arg-type]
            f"{summary['n_fired']} fired / {summary['n_resolved']} resolved"
        )
    ]
    firing = summary.get("firing_at_end") or []
    if firing:
        lines.append(
            "  still firing at end: "
            + ", ".join(str(f) for f in firing)  # type: ignore[union-attr]
        )
    alerts = summary.get("alerts", [])
    if alerts:
        lines.append("  alert timeline:")
        for a in alerts:  # type: ignore[union-attr]
            marker = "FIRED   " if a["state"] == "fired" else "resolved"
            lines.append(
                f"    [w{a['window_index']:>3} t={a['t_s']:>7.1f}s] "
                f"{marker} {a['rule']}: {a['detail']}"
            )
    incidents = summary.get("incidents", [])
    if incidents:
        lines.append("  incidents:")
        for inc in incidents:  # type: ignore[union-attr]
            lines.append(f"    {inc['narrative']}")
    return "\n".join(lines) + "\n"
