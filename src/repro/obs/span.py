"""Hierarchical span tracing over the simulated clock.

A :class:`Span` is one timed region of a run — a campaign wave, a job,
an ensemble step, a member phase, a single collective — positioned on
the *simulated* timeline and linked to its parent, so one tree covers
a whole campaign down to individual AllReduces:

    campaign
      wave 0
        job000
          step 0
            xgyro.m0.nl03c.str           (phase)
              allreduce [....comm1.g0]   (collective leaf)
            xgyro.coll                   (phase)
              alltoall [xgyro.coll.g0]   (collective leaf)

Spans are *not* wall-clock: ``t_start``/``duration`` are simulated
seconds read from the :class:`~repro.vmpi.world.VirtualWorld` clocks
(max over the span's rank set), which is what makes the critical-path
arithmetic in :mod:`repro.obs.critical` exact rather than sampled.

``SpanTracer.time_offset`` shifts recorded times into a larger frame:
the campaign runner dispatches each job in its own world (clock starts
at 0) but sets the offset to the wave's campaign-clock start, so job
spans land at campaign-absolute times and the tree stays one timeline.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Span kinds whose intervals are direct clock charges — the leaves the
#: critical-path extractor chains over.  Everything else (phase, step,
#: member, job, wave, campaign) is structural.
LEAF_KINDS = ("collective", "compute", "sync")


@dataclass(frozen=True)
class Span:
    """One completed timed region of the simulated timeline.

    Attributes
    ----------
    span_id:
        Unique id within the tracer (creation order).
    name:
        Human-readable label (``"allreduce [nl03c.comm1.g0]"``).
    kind:
        Structural role: ``campaign``/``wave``/``job``/``member``/
        ``step``/``phase`` for interior spans, one of
        :data:`LEAF_KINDS` (plus ``checkpoint``/``recovery``/
        ``migration`` markers) for leaves.
    t_start / duration:
        Simulated seconds (offset-adjusted; see
        :attr:`SpanTracer.time_offset`).
    parent:
        ``span_id`` of the enclosing span, or ``None`` for roots.
    category:
        Phase category active when the span was charged ("" if none).
    ranks:
        World ranks the span covers (empty for scheduler-level spans).
    attrs:
        Free-form metadata (bytes, communicator label, last-arrival
        rank, ...). Values must be JSON-safe.
    """

    span_id: int
    name: str
    kind: str
    t_start: float
    duration: float
    parent: Optional[int] = None
    category: str = ""
    ranks: Tuple[int, ...] = ()
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def t_end(self) -> float:
        """End of the span on the simulated timeline."""
        return self.t_start + self.duration

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "kind": self.kind,
            "t_start": self.t_start,
            "duration": self.duration,
            "parent": self.parent,
            "category": self.category,
            "ranks": list(self.ranks),
            "attrs": dict(self.attrs),
        }

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        parent = d.get("parent")
        return Span(
            span_id=int(d["span_id"]),
            name=str(d["name"]),
            kind=str(d["kind"]),
            t_start=float(d["t_start"]),
            duration=float(d["duration"]),
            parent=None if parent is None else int(parent),
            category=str(d.get("category", "")),
            ranks=tuple(int(r) for r in d.get("ranks", ())),  # type: ignore[union-attr]
            attrs=dict(d.get("attrs", {})),  # type: ignore[arg-type]
        )


class SpanTracer:
    """Builds one span tree across worlds, runners and schedulers.

    Interior spans are opened/closed with :meth:`begin`/:meth:`end` (or
    the :meth:`span` context manager, which reads a clock callable at
    entry and exit); completed leaves are appended with :meth:`record`.
    Parentage follows the open-span stack unless given explicitly.
    """

    def __init__(self, *, time_offset: float = 0.0) -> None:
        #: Added to every recorded time — the campaign runner points
        #: this at the wave's campaign-clock start before dispatching a
        #: job so the job world's local times land absolutely.
        self.time_offset = float(time_offset)
        self._spans: List[Span] = []
        self._stack: List[Tuple[int, str, str, float, str, Tuple[int, ...], Dict[str, object]]] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def current_id(self) -> Optional[int]:
        """``span_id`` of the innermost open span (``None`` at root)."""
        return self._stack[-1][0] if self._stack else None

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def begin(
        self,
        name: str,
        kind: str,
        t_start: float,
        *,
        category: str = "",
        ranks: Sequence[int] = (),
        **attrs: object,
    ) -> int:
        """Open a span at ``t_start`` (pre-offset); returns its id."""
        span_id = self._next_id
        self._next_id += 1
        self._stack.append(
            (
                span_id,
                name,
                kind,
                t_start + self.time_offset,
                category,
                tuple(int(r) for r in ranks),
                dict(attrs),
            )
        )
        return span_id

    def end(self, t_end: float) -> Span:
        """Close the innermost open span at ``t_end`` (pre-offset)."""
        if not self._stack:
            raise ReproError("SpanTracer.end() with no open span")
        span_id, name, kind, t0, category, ranks, attrs = self._stack.pop()
        span = Span(
            span_id=span_id,
            name=name,
            kind=kind,
            t_start=t0,
            duration=max(0.0, t_end + self.time_offset - t0),
            parent=self._stack[-1][0] if self._stack else None,
            category=category,
            ranks=ranks,
            attrs=attrs,
        )
        self._spans.append(span)
        return span

    def record(
        self,
        name: str,
        kind: str,
        t_start: float,
        duration: float,
        *,
        category: str = "",
        ranks: Sequence[int] = (),
        parent: Optional[int] = "stack",  # type: ignore[assignment]
        **attrs: object,
    ) -> Span:
        """Append an already-completed (leaf) span.

        ``parent`` defaults to the innermost open span; pass ``None``
        to force a root.
        """
        if parent == "stack":
            parent = self.current_id
        span_id = self._next_id
        self._next_id += 1
        span = Span(
            span_id=span_id,
            name=name,
            kind=kind,
            t_start=t_start + self.time_offset,
            duration=float(duration),
            parent=parent,
            category=category,
            ranks=tuple(int(r) for r in ranks),
            attrs=dict(attrs),
        )
        self._spans.append(span)
        return span

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        kind: str,
        clock: Callable[[], float],
        *,
        category: str = "",
        ranks: Sequence[int] = (),
        **attrs: object,
    ) -> Iterator[int]:
        """Scope a span over ``clock()`` readings at entry and exit."""
        span_id = self.begin(
            name, kind, clock(), category=category, ranks=ranks, **attrs
        )
        try:
            yield span_id
        finally:
            self.end(clock())

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def spans(self) -> Tuple[Span, ...]:
        """Completed spans in ``span_id`` order."""
        return tuple(sorted(self._spans, key=lambda s: s.span_id))

    def __len__(self) -> int:
        return len(self._spans)

    def makespan(self) -> float:
        """Latest span end on the timeline (0.0 when empty)."""
        return max((s.t_end for s in self._spans), default=0.0)

    def children_of(self, span_id: Optional[int]) -> Tuple[Span, ...]:
        """Direct children of ``span_id`` (roots for ``None``)."""
        return tuple(
            s
            for s in self.spans
            if s.parent == span_id and s.span_id != span_id
        )

    def leaves(self) -> Tuple[Span, ...]:
        """Spans of a leaf kind (see :data:`LEAF_KINDS`)."""
        return tuple(s for s in self.spans if s.kind in LEAF_KINDS)

    def open_spans(self, t_now: float) -> Tuple[Span, ...]:
        """The live view: still-open spans synthesised as of ``t_now``.

        Each entry on the open stack becomes a :class:`Span` whose
        duration runs to ``t_now`` (pre-offset, like :meth:`end`) and
        whose ``attrs`` carry ``open: True``.  Nothing is closed or
        recorded — this is a pure read, outermost first, for live
        consumers (the monitoring plane's incident diagnosis) that
        must inspect in-flight work without perturbing the tree.
        """
        out: List[Span] = []
        parent: Optional[int] = None
        for span_id, name, kind, t0, category, ranks, attrs in self._stack:
            out.append(
                Span(
                    span_id=span_id,
                    name=name,
                    kind=kind,
                    t_start=t0,
                    duration=max(0.0, t_now + self.time_offset - t0),
                    parent=parent,
                    category=category,
                    ranks=ranks,
                    attrs={**attrs, "open": True},
                )
            )
            parent = span_id
        return tuple(out)

    def render_tree(self, *, max_children: int = 8) -> str:
        """Indented text rendering of the span tree (debug aid)."""
        lines: List[str] = []

        def walk(parent: Optional[int], depth: int) -> None:
            kids = self.children_of(parent)
            for i, s in enumerate(kids):
                if i >= max_children:
                    lines.append("  " * depth + f"... {len(kids) - i} more")
                    break
                lines.append(
                    "  " * depth
                    + f"{s.name} [{s.kind}] {s.t_start:.6f}+{s.duration:.6f}s"
                )
                walk(s.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)
