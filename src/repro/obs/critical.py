"""Critical-path extraction over a span tree.

The paper's argument is an attribution claim — *where does the
makespan go* — and on a simulated machine it can be answered exactly.
Every leaf span (collective, compute charge, group-wide sync) is a
closed interval on some set of rank clocks; the makespan is the latest
span end.  :func:`extract_critical_path` walks backwards from that
end, at each step following the rank that *determined* when the
current span could run:

- a collective starts when its last participant arrives — the world
  records that rank (``last_arrival``), so the chain hops onto it;
- a compute charge ends on the rank whose clock it pushed furthest.

Between one span's start and its predecessor's end on the chain rank
lies *idle* — time nothing on the critical rank was charged (waits
outside any span).  Idle is surfaced, never smeared: the extracted
segments partition ``[t0, makespan]`` exactly, so the per-category
attribution sums to the makespan by construction — the invariant the
property tests pin down.

Nonblocking collectives (spans with ``nonblocking=True``) coexist in
time with compute spans on the same ranks.  Where a path segment's
interval is covered by *both* a compute span and a nonblocking
collective's cost window on the chain rank, that intersection is
re-labeled :data:`OVERLAPPED` (``"coll_overlapped"``): the time was
simultaneously computation and hidden communication, and smearing it
into either plain category would misstate the other.  The re-labeling
splits segments in place — each instant of ``[t0, makespan]`` still
belongs to exactly one segment, so nothing is double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.span import LEAF_KINDS, Span

#: Category label for unattributed chain time.
IDLE = "idle"

#: Category label for path time that is simultaneously compute and
#: hidden (nonblocking) communication on the chain rank.
OVERLAPPED = "coll_overlapped"

_EPS = 1e-12


@dataclass(frozen=True)
class CriticalSegment:
    """One interval of the critical path."""

    t_start: float
    t_end: float
    category: str  # phase category, or "idle"
    kind: str  # span kind, or "idle"
    name: str
    rank: Optional[int]  # chain rank the interval sits on
    span_id: Optional[int]  # None for idle gaps

    @property
    def duration(self) -> float:
        """Interval length in simulated seconds."""
        return self.t_end - self.t_start


@dataclass
class CriticalPath:
    """The rank-chain accounting for a span tree's makespan."""

    segments: List[CriticalSegment]  # ascending, contiguous
    t0: float
    makespan: float

    @property
    def total_s(self) -> float:
        """Exact path duration: the segments span ``[t0, makespan]``."""
        if not self.segments:
            return 0.0
        return self.segments[-1].t_end - self.segments[0].t_start

    def by_category(self) -> Dict[str, float]:
        """Seconds per category along the path (idle included)."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            cat = seg.category or "uncategorized"
            out[cat] = out.get(cat, 0.0) + seg.duration
        return out

    @property
    def idle_s(self) -> float:
        """Total unattributed chain time."""
        return sum(s.duration for s in self.segments if s.span_id is None)

    @property
    def attributed_fraction(self) -> float:
        """Share of the path carried by named phase categories."""
        if self.total_s <= 0:
            return 1.0
        named = sum(
            s.duration
            for s in self.segments
            if s.span_id is not None and s.category not in ("", "uncategorized")
        )
        return named / self.total_s

    def top_stalls(self, n: int = 5) -> List[CriticalSegment]:
        """Largest idle gaps on the path, longest first."""
        gaps = [s for s in self.segments if s.span_id is None and s.duration > 0]
        gaps.sort(key=lambda s: (-s.duration, s.t_start))
        return gaps[:n]

    def span_ids(self) -> Tuple[int, ...]:
        """Ids of the spans on the path, in path (ascending-time) order."""
        return tuple(s.span_id for s in self.segments if s.span_id is not None)


def _windows_by_rank(
    leaves: Sequence[Span], want_nonblocking: bool
) -> Dict[int, List[Tuple[float, float]]]:
    """Per rank: intervals of nonblocking-collective cost windows
    (``want_nonblocking``) or of compute spans (otherwise)."""
    wins: Dict[int, List[Tuple[float, float]]] = {}
    for s in leaves:
        if want_nonblocking:
            if s.kind != "collective" or not s.attrs.get("nonblocking"):
                continue
        elif s.kind != "compute":
            continue
        for r in s.ranks:
            wins.setdefault(r, []).append((s.t_start, s.t_end))
    return wins


def _split_overlapped(
    seg: CriticalSegment, windows: Sequence[Tuple[float, float]]
) -> List[CriticalSegment]:
    """Split ``seg`` where ``windows`` cover it; intersections become
    :data:`OVERLAPPED`.  The pieces tile ``[seg.t_start, seg.t_end]``
    exactly — endpoints are carried through, never re-derived."""
    clipped = []
    for lo, hi in windows:
        lo, hi = max(lo, seg.t_start), min(hi, seg.t_end)
        if hi > lo + _EPS:
            clipped.append((lo, hi))
    if not clipped:
        return [seg]
    clipped.sort()
    merged = [clipped[0]]
    for lo, hi in clipped[1:]:
        if lo <= merged[-1][1] + _EPS:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    out: List[CriticalSegment] = []
    t = seg.t_start
    for lo, hi in merged:
        if lo > t + _EPS:
            out.append(replace(seg, t_start=t, t_end=lo))
            t = lo
        out.append(replace(seg, t_start=t, t_end=hi, category=OVERLAPPED))
        t = hi
    if seg.t_end > t + _EPS:
        out.append(replace(seg, t_start=t, t_end=seg.t_end))
    else:
        out[-1] = replace(out[-1], t_end=seg.t_end)
    return out


def _chain_rank(span: Span) -> Optional[int]:
    """The rank whose clock pinned this span's placement."""
    last = span.attrs.get("last_arrival")
    if last is not None:
        return int(last)  # type: ignore[arg-type]
    if span.ranks:
        return span.ranks[0]
    return None


def extract_critical_path(
    spans: Sequence[Span],
    *,
    t0: float = 0.0,
    leaf_kinds: Sequence[str] = LEAF_KINDS,
) -> CriticalPath:
    """Extract the critical rank-chain of a span tree.

    Only leaf spans (``leaf_kinds``) participate; interior structural
    spans merely aggregate them.  The returned segments are contiguous
    and partition ``[t0, makespan]``, so their durations sum to the
    makespan exactly (up to float telescoping) — and removing any span
    *not* on the path leaves the extraction unchanged.

    Path intervals covered by both a compute span and a nonblocking
    collective's cost window on the chain rank are re-labeled
    :data:`OVERLAPPED` (see module docstring); the partition invariant
    is preserved through the split.
    """
    leaves = [s for s in spans if s.kind in leaf_kinds and s.duration > 0.0]
    if not leaves:
        raise ReproError("no leaf spans to extract a critical path from")
    makespan = max(s.t_end for s in leaves)
    used: set = set()

    # index: rank -> spans touching it, and the global list, both by
    # (t_end, t_start, -span_id) so "latest, then deterministic" picks
    by_rank: Dict[int, List[Span]] = {}
    for s in leaves:
        for r in s.ranks:
            by_rank.setdefault(r, []).append(s)

    def pick(cands: List[Span], at_or_before: float) -> Optional[Span]:
        best: Optional[Span] = None
        for s in cands:
            if s.span_id in used or s.t_end > at_or_before + _EPS:
                continue
            if (
                best is None
                or s.t_end > best.t_end + _EPS
                or (
                    abs(s.t_end - best.t_end) <= _EPS
                    and (
                        s.t_start > best.t_start + _EPS
                        or (
                            abs(s.t_start - best.t_start) <= _EPS
                            and s.span_id < best.span_id
                        )
                    )
                )
            ):
                best = s
        return best

    segments: List[CriticalSegment] = []
    current = pick(leaves, makespan)
    assert current is not None  # the max-t_end span always qualifies
    t = makespan
    while True:
        used.add(current.span_id)
        # trailing gap between this span's end and the chain time
        if t > current.t_end + _EPS:
            rank = _chain_rank(current)
            segments.append(
                CriticalSegment(
                    t_start=current.t_end,
                    t_end=t,
                    category=IDLE,
                    kind=IDLE,
                    name=IDLE,
                    rank=rank,
                    span_id=None,
                )
            )
            t = current.t_end
        seg_start = max(current.t_start, t0)
        segments.append(
            CriticalSegment(
                t_start=seg_start,
                t_end=t,
                category=current.category or "uncategorized",
                kind=current.kind,
                name=current.name,
                rank=_chain_rank(current),
                span_id=current.span_id,
            )
        )
        t = seg_start
        if t <= t0 + _EPS:
            break
        rank = _chain_rank(current)
        cands = by_rank.get(rank, leaves) if rank is not None else leaves
        nxt = pick(cands, t)
        if nxt is None and rank is not None:
            # nothing earlier on the chain rank: fall back to any rank
            nxt = pick(leaves, t)
        if nxt is None:
            segments.append(
                CriticalSegment(
                    t_start=t0,
                    t_end=t,
                    category=IDLE,
                    kind=IDLE,
                    name=IDLE,
                    rank=rank,
                    span_id=None,
                )
            )
            break
        current = nxt
    segments.reverse()
    nb_ids = {
        s.span_id
        for s in leaves
        if s.kind == "collective" and s.attrs.get("nonblocking")
    }
    if nb_ids:
        coll_wins = _windows_by_rank(leaves, want_nonblocking=True)
        comp_wins = _windows_by_rank(leaves, want_nonblocking=False)
        split: List[CriticalSegment] = []
        for seg in segments:
            if seg.span_id is None or seg.rank is None:
                split.append(seg)
            elif seg.kind == "compute":
                split.extend(
                    _split_overlapped(seg, coll_wins.get(seg.rank, ()))
                )
            elif seg.span_id in nb_ids:
                split.extend(
                    _split_overlapped(seg, comp_wins.get(seg.rank, ()))
                )
            else:
                split.append(seg)
        segments = split
    return CriticalPath(segments=segments, t0=t0, makespan=makespan)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def render_telemetry_report(
    spans: Sequence[Span],
    *,
    metrics=None,
    top_stalls: int = 5,
    t0: float = 0.0,
) -> str:
    """The whole-run attribution table: critical path + top stalls.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) adds
    the registry's headline counters (bytes moved, imposed wait) so
    the one report answers both *where the time went* and *what moved*.
    """
    path = extract_critical_path(spans, t0=t0)
    lines = [
        f"telemetry — {len(spans)} span(s), makespan "
        f"{path.makespan:.6f} s, critical path "
        f"{path.total_s:.6f} s in {len(path.segments)} segment(s)",
        f"attributed to named phases: {path.attributed_fraction:.1%} "
        f"(idle {path.idle_s:.6f} s)",
        f"{'category':<22s} {'seconds':>12s} {'share':>8s}",
    ]
    total = path.total_s or 1.0
    for cat, secs in sorted(
        path.by_category().items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"{cat:<22s} {secs:>12.6f} {secs / total:>8.1%}")
    stalls = path.top_stalls(top_stalls)
    if stalls:
        lines.append("top stalls (idle on the critical rank):")
        for s in stalls:
            where = f"rank {s.rank}" if s.rank is not None else "?"
            lines.append(
                f"  {s.t_start:>12.6f} s  +{s.duration:.6f} s  on {where}"
            )
    if metrics is not None:
        total_bytes = metrics.counter_total("vmpi_collective_bytes_total")
        imposed = metrics.counter_total("vmpi_imposed_wait_seconds_total")
        if total_bytes or imposed:
            lines.append(
                f"collective bytes {int(total_bytes)} B, imposed wait "
                f"{imposed:.6f} s (registry totals)"
            )
    return "\n".join(lines)
