"""Unified telemetry: span tracing, metrics, attribution, perf gates.

The observability spine of the reproduction.  One
:class:`~repro.obs.span.SpanTracer` + one
:class:`~repro.obs.metrics.MetricsRegistry` pair — bundled as a
:class:`Telemetry` — can be installed across every layer
(``VirtualWorld`` collectives, solver phases, ensemble steps,
resilience events, campaign waves/jobs), yielding a single span tree
and metric set for a whole campaign.  On top of that sit:

- :mod:`repro.obs.critical` — exact critical-path extraction and the
  ``render_telemetry_report`` attribution table;
- :mod:`repro.obs.export` — byte-stable JSONL span logs and nested
  Chrome/Perfetto traces (pid=member, tid=rank, counter tracks);
- :mod:`repro.obs.gate` — the bench-record schema and the CI
  perf-regression gate;
- :mod:`repro.obs.monitor` — the live monitoring plane for the online
  service: streaming window rollups, burn-rate/anomaly alert rules,
  and automated incident diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.critical import (
    CriticalPath,
    CriticalSegment,
    extract_critical_path,
    render_telemetry_report,
)
from repro.obs.export import (
    export_spans_chrome,
    export_spans_jsonl,
    load_spans_jsonl,
)
from repro.obs.gate import (
    GateFinding,
    GateResult,
    compare_bench_records,
    load_bench_records,
    metric_direction,
    run_gate,
    write_bench_records,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
)
from repro.obs.monitor import (
    AlertEngine,
    AlertEvent,
    AlertRule,
    IncidentReport,
    ServiceMonitor,
    WindowRollup,
    default_rulebook,
    dump_rulebook,
    export_rollups_jsonl,
    load_rollups_jsonl,
    load_rulebook,
    render_monitor_report,
)
from repro.obs.span import LEAF_KINDS, Span, SpanTracer


@dataclass
class Telemetry:
    """One tracer + one registry, shared across a whole run."""

    tracer: SpanTracer = field(default_factory=SpanTracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def install(self, world) -> None:
        """Install both halves on a virtual world."""
        world.install_telemetry(tracer=self.tracer, metrics=self.metrics)

    def report(self, **kwargs) -> str:
        """The combined attribution report over everything recorded."""
        return render_telemetry_report(
            self.tracer.spans, metrics=self.metrics, **kwargs
        )


__all__ = [
    "Telemetry",
    "Span",
    "SpanTracer",
    "LEAF_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "IncidentReport",
    "ServiceMonitor",
    "WindowRollup",
    "default_rulebook",
    "dump_rulebook",
    "export_rollups_jsonl",
    "load_rollups_jsonl",
    "load_rulebook",
    "render_monitor_report",
    "CriticalPath",
    "CriticalSegment",
    "extract_critical_path",
    "render_telemetry_report",
    "export_spans_chrome",
    "export_spans_jsonl",
    "load_spans_jsonl",
    "GateFinding",
    "GateResult",
    "compare_bench_records",
    "load_bench_records",
    "metric_direction",
    "run_gate",
    "write_bench_records",
]
