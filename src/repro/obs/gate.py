"""The perf-regression gate: bench records vs committed baselines.

Every ``bench_*.py`` smoke run writes one machine-readable record per
bench (via the shared ``--json`` writer in ``benchmarks/conftest.py``)
into a ``BENCH_PR5.json`` file::

    {"format": "repro-bench-v1",
     "records": {"figure2_headline": {"xgyro_wall_s": 0.81, ...}, ...}}

CI compares that fresh file against the baseline committed under
``benchmarks/baselines/`` with a relative tolerance band per metric.
The virtual machine is deterministic, so the band exists to absorb
*intentional* model changes, not noise: a metric drifting beyond it in
the *worse* direction fails the gate; drifting in the *better*
direction is reported as an improvement (re-baseline to lock it in).

Metric direction is inferred from the name: anything mentioning
``speedup``/``throughput``/``saved``/``hit_rate``/``reduction``/
``utilisation``/``efficiency`` is higher-is-better; everything else
(walls, makespans, fractions, overheads, byte counts) is
lower-is-better.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Union

from repro.errors import ReproError

BENCH_FORMAT = "repro-bench-v1"

#: Substrings marking a metric as higher-is-better.
HIGHER_IS_BETTER = (
    "speedup",
    "throughput",
    "goodput",
    "attainment",
    "saved",
    "savings",
    "hit_rate",
    "reduction",
    "utilisation",
    "utilization",
    "efficiency",
)


def metric_direction(name: str) -> int:
    """+1 when larger values are better, -1 when smaller are."""
    low = name.lower()
    return 1 if any(tag in low for tag in HIGHER_IS_BETTER) else -1


def write_bench_records(
    records: Mapping[str, Mapping[str, float]], path: Union[str, Path]
) -> int:
    """Write a bench-record file (sorted, byte-stable); returns count."""
    doc = {
        "format": BENCH_FORMAT,
        "records": {
            name: {k: float(v) for k, v in sorted(metrics.items())}
            for name, metrics in sorted(records.items())
        },
    }
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return len(records)


def load_bench_records(path: Union[str, Path]) -> Dict[str, Dict[str, float]]:
    """Load a bench-record file, validating the format tag."""
    p = Path(path)
    if not p.is_file():
        raise ReproError(f"bench-record file not found: {p}")
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"{p}: not valid JSON ({exc})") from exc
    if doc.get("format") != BENCH_FORMAT:
        raise ReproError(
            f"{path}: not a {BENCH_FORMAT} file (format={doc.get('format')!r})"
        )
    return {
        str(name): {str(k): float(v) for k, v in metrics.items()}
        for name, metrics in doc.get("records", {}).items()
    }


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GateFinding:
    """One per-metric verdict of a gate comparison."""

    bench: str
    metric: str
    baseline: float
    current: float
    verdict: str  # "ok" | "improved" | "regressed" | "missing" | "new"

    @property
    def rel_change(self) -> float:
        """Signed relative change vs the baseline (0 when baseline 0)."""
        if self.baseline == 0.0:
            return 0.0 if self.current == 0.0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)


@dataclass
class GateResult:
    """Outcome of comparing a bench-record file against a baseline."""

    findings: List[GateFinding]
    tolerance: float

    @property
    def regressions(self) -> List[GateFinding]:
        """Findings that fail the gate."""
        return [f for f in self.findings if f.verdict in ("regressed", "missing")]

    @property
    def ok(self) -> bool:
        """True when no metric regressed and none went missing."""
        return not self.regressions

    def render(self) -> str:
        """Human-readable gate table, worst news first."""
        order = {"regressed": 0, "missing": 1, "improved": 2, "new": 3, "ok": 4}
        rows = sorted(
            self.findings, key=lambda f: (order[f.verdict], f.bench, f.metric)
        )
        lines = [
            f"perf gate — tolerance ±{self.tolerance:.0%}, "
            f"{len(self.findings)} metric(s), "
            f"{len(self.regressions)} regression(s)",
            f"{'bench':<28s} {'metric':<28s} {'baseline':>12s} "
            f"{'current':>12s} {'change':>8s}  verdict",
        ]
        for f in rows:
            change = (
                "n/a"
                if f.verdict in ("missing", "new")
                else f"{f.rel_change:+.1%}"
            )
            lines.append(
                f"{f.bench:<28s} {f.metric:<28s} {f.baseline:>12.6g} "
                f"{f.current:>12.6g} {change:>8s}  {f.verdict}"
            )
        return "\n".join(lines)


def compare_bench_records(
    current: Mapping[str, Mapping[str, float]],
    baseline: Mapping[str, Mapping[str, float]],
    *,
    tolerance: float = 0.05,
) -> GateResult:
    """Gate ``current`` against ``baseline`` with a relative band.

    Baseline metrics absent from ``current`` are *failures* (a bench
    silently stopped reporting is exactly the rot the gate exists to
    catch); current metrics absent from the baseline are reported as
    ``new`` and pass (commit a refreshed baseline to start tracking
    them).
    """
    if tolerance < 0:
        raise ReproError(f"tolerance must be >= 0, got {tolerance}")
    findings: List[GateFinding] = []
    for bench, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(bench, {})
        for metric, base_val in sorted(base_metrics.items()):
            if metric not in cur_metrics:
                findings.append(
                    GateFinding(bench, metric, base_val, float("nan"), "missing")
                )
                continue
            cur_val = cur_metrics[metric]
            scale = abs(base_val) if base_val != 0.0 else 1.0
            rel = (cur_val - base_val) / scale
            worse = rel * metric_direction(metric) < -tolerance
            better = rel * metric_direction(metric) > tolerance
            findings.append(
                GateFinding(
                    bench,
                    metric,
                    base_val,
                    cur_val,
                    "regressed" if worse else "improved" if better else "ok",
                )
            )
    for bench, cur_metrics in sorted(current.items()):
        base_metrics = baseline.get(bench, {})
        for metric, cur_val in sorted(cur_metrics.items()):
            if metric not in base_metrics:
                findings.append(
                    GateFinding(bench, metric, float("nan"), cur_val, "new")
                )
    return GateResult(findings=findings, tolerance=tolerance)


def run_gate(
    current_path: Union[str, Path],
    baseline_path: Union[str, Path],
    *,
    tolerance: float = 0.05,
) -> GateResult:
    """Load both record files and compare (the CLI/CI entry point)."""
    return compare_bench_records(
        load_bench_records(current_path),
        load_bench_records(baseline_path),
        tolerance=tolerance,
    )
