"""Span-tree export: JSONL event log and nested Chrome/Perfetto JSON.

``export_spans_jsonl``/``load_spans_jsonl`` are the byte-stable
interchange pair: exporting a loaded file reproduces it byte for byte
(sorted keys, fixed separators, one span per line), which is what lets
CI artifacts be diffed and goldens be committed.

``export_spans_chrome`` writes the span *tree* as a Perfetto-loadable
trace: ``pid`` is the ensemble member (named via process-name metadata
events so member overlap is visible as parallel process lanes),
``tid`` is the world rank, and two counter tracks are derived from the
leaf spans — collective bytes in flight, and per-job memory high-water
marks carried on job/member span attrs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.span import Span

FORMAT_HEADER = {"format": "repro-spans-v1"}


def _dumps(obj: Dict[str, object]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def export_spans_jsonl(spans: Sequence[Span], path: Union[str, Path]) -> int:
    """Write one JSON object per line (header first); returns span count."""
    lines = [_dumps(dict(FORMAT_HEADER))]
    for s in sorted(spans, key=lambda s: s.span_id):
        lines.append(_dumps(s.to_dict()))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(spans)


def load_spans_jsonl(path: Union[str, Path]) -> List[Span]:
    """Inverse of :func:`export_spans_jsonl`."""
    out: List[Span] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        if "format" in doc and "span_id" not in doc:
            continue  # header line
        out.append(Span.from_dict(doc))
    return out


# ----------------------------------------------------------------------
def _member_of_span(span: Span, by_id: Dict[int, Span]) -> Optional[int]:
    """Ensemble member owning a span: its own attr, or an ancestor's."""
    s: Optional[Span] = span
    while s is not None:
        m = s.attrs.get("member")
        if m is not None:
            return int(m)  # type: ignore[arg-type]
        s = by_id.get(s.parent) if s.parent is not None else None
    return None


def export_spans_chrome(
    spans: Sequence[Span],
    path: Union[str, Path],
    *,
    counters: bool = True,
) -> int:
    """Write the span tree as Chrome trace-event JSON; returns span count.

    One complete ("X") event per (span, rank) — rankless scheduler
    spans land on tid 0 — with ``pid`` the owning ensemble member
    (+1; pid 0 is the ensemble/scheduler lane), named through
    process-name metadata events.  ``counters=True`` adds two counter
    tracks: ``bytes_in_flight`` (sum of concurrently-active collective
    payloads) and ``mem_high_water_bytes`` (from span attrs).
    """
    by_id = {s.span_id: s for s in spans}
    events: List[Dict[str, object]] = []
    pids: Dict[int, str] = {}
    for s in sorted(spans, key=lambda s: s.span_id):
        member = _member_of_span(s, by_id)
        pid = 0 if member is None else member + 1
        if pid not in pids:
            pids[pid] = "ensemble" if pid == 0 else f"member {member}"
        for tid in s.ranks or (0,):
            events.append(
                {
                    "name": s.name,
                    "cat": s.kind,
                    "ph": "X",
                    "ts": s.t_start * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": {"category": s.category, **s.attrs},
                }
            )
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": name},
        }
        for pid, name in sorted(pids.items())
    ]
    if counters:
        events.extend(_counter_events(spans))
    Path(path).write_text(
        json.dumps({"traceEvents": meta + events, "displayTimeUnit": "ms"})
    )
    return len(spans)


def _counter_events(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Counter tracks: bytes in flight and memory high-water marks."""
    events: List[Dict[str, object]] = []
    # bytes in flight: +nbytes at each collective start, -nbytes at end
    edges: List[tuple] = []
    for s in spans:
        nbytes = s.attrs.get("nbytes")
        if s.kind == "collective" and nbytes:
            edges.append((s.t_start, int(nbytes)))  # type: ignore[arg-type]
            edges.append((s.t_end, -int(nbytes)))  # type: ignore[arg-type]
    edges.sort()
    in_flight = 0
    for t, delta in edges:
        in_flight += delta
        events.append(
            {
                "name": "bytes_in_flight",
                "ph": "C",
                "ts": t * 1e6,
                "pid": 0,
                "args": {"bytes": in_flight},
            }
        )
    for s in spans:
        hwm = s.attrs.get("mem_high_water_bytes")
        if hwm:
            events.append(
                {
                    "name": "mem_high_water_bytes",
                    "ph": "C",
                    "ts": s.t_end * 1e6,
                    "pid": 0,
                    "args": {"bytes": int(hwm)},  # type: ignore[arg-type]
                }
            )
    return events
