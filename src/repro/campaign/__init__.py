"""Campaign scheduling: a multi-job service over shared-cmat ensembles.

The paper shares one collisional constant tensor *within* a pre-formed
XGYRO ensemble.  This package inverts the workflow for the service
setting the ROADMAP targets — a heavy stream of simulation requests
from many users — by *discovering* the sharing opportunities in an
arbitrary request stream and packing them onto the machine:

- :mod:`repro.campaign.request` — :class:`SimRequest` (one user ask,
  JSON round-trippable) and the priority/arrival-ordered
  :class:`RequestQueue`;
- :mod:`repro.campaign.batcher` — :class:`SignatureBatcher`, grouping
  pending requests by :class:`~repro.collision.signature.CmatSignature`
  into candidate XGYRO ensembles (never mixing signatures);
- :mod:`repro.campaign.packer` — :class:`CampaignPacker`, choosing an
  ensemble size k and node count per candidate via
  :class:`~repro.machine.memory.MemoryLedger` capacity probes,
  splitting oversized groups and co-scheduling small jobs onto
  disjoint node sets of the same wave;
- :mod:`repro.campaign.cache` — :class:`CmatCache`, a
  content-addressed cache of assembled tensors keyed by signature
  hash, letting consecutive jobs skip cmat re-assembly entirely;
- :mod:`repro.campaign.runner` — :class:`CampaignRunner`, dispatching
  packed jobs through :class:`~repro.xgyro.driver.XgyroEnsemble` /
  :class:`~repro.xgyro.study.XgyroStudy`, requeueing members lost to
  injected faults via :mod:`repro.resilience` under a bounded
  :class:`~repro.resilience.health.RetryPolicy` and steering placement
  away from nodes the
  :class:`~repro.resilience.health.NodeHealthTracker` quarantines;
- :mod:`repro.campaign.report` — :class:`CampaignReport`: throughput
  in member-steps/s, queue-latency percentiles, cache hit rate, node
  utilisation (rendered by
  :func:`~repro.perf.report.render_campaign_report`).
"""

from repro.campaign.batcher import CandidateBatch, SignatureBatcher
from repro.campaign.cache import CacheEntry, CmatCache
from repro.campaign.packer import CampaignPacker, JobShape, PackedJob
from repro.campaign.report import (
    AbandonedRecord,
    CampaignReport,
    JobRecord,
    RequestRecord,
)
from repro.campaign.request import (
    RequestQueue,
    SimRequest,
    input_from_dict,
    input_to_dict,
)
from repro.campaign.runner import CampaignRunner

__all__ = [
    "AbandonedRecord",
    "CacheEntry",
    "CampaignPacker",
    "CampaignReport",
    "CampaignRunner",
    "CandidateBatch",
    "CmatCache",
    "JobRecord",
    "JobShape",
    "PackedJob",
    "RequestQueue",
    "RequestRecord",
    "SignatureBatcher",
    "SimRequest",
    "input_from_dict",
    "input_to_dict",
]
