"""The cross-job cmat cache.

Within one XGYRO job the paper shares the collisional tensor across k
members; *between* jobs of a campaign the same logic applies in time:
a job whose :class:`~repro.collision.signature.CmatSignature` matches a
tensor the machine already assembled can skip re-assembly entirely.
:class:`CmatCache` is that reuse made explicit — a content-addressed
map from signature hash to an assembled-tensor record, with LRU
eviction against a byte budget and hit/miss/eviction accounting in
simulated seconds saved.

The cache stores *accounting records*, not arrays: the virtual
machine's tensors are rebuilt numerically either way (they are needed
for the physics), but a hit instructs the dispatcher to run the job
with ``charge_cmat_build=False`` so the assembly cost never touches
the simulated clocks — exactly the effect of tensor residency on a
real machine.  A hit saves time, never memory: every job still
registers its cmat bytes in the per-rank ledgers.

A resident tensor is also a long-lived SDC target: every record
carries a checksum, :meth:`CmatCache.lookup` re-verifies it before
serving, and a corrupted record is *never* served — it counts as a
miss, is evicted on the spot, and bumps the ``integrity_failures``
stat, so the dispatching job falls back to a (clean) rebuild.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CampaignError
from repro.collision.signature import CmatSignature


@dataclass
class CacheEntry:
    """One resident tensor: content address, size, and assembly bill.

    ``checksum`` guards the record itself (the stand-in for the
    resident tensor's bytes); it is computed at insert time and
    re-verified on every lookup.
    """

    key: str
    nbytes: int
    build_s: float
    hits: int = 0
    last_used: int = field(default=0, repr=False)
    checksum: str = field(default="", repr=False)

    def content_checksum(self) -> str:
        """Checksum over the fields that model the tensor's content."""
        return hashlib.sha256(
            f"{self.key}:{self.nbytes}:{self.build_s!r}".encode()
        ).hexdigest()


class CmatCache:
    """Content-addressed cache of assembled collisional tensors.

    Parameters
    ----------
    capacity_bytes:
        Total bytes of tensor the machine may keep resident across
        jobs; ``None`` disables eviction.  An entry larger than the
        whole capacity is counted as an immediate eviction (it can
        never be kept).
    """

    def __init__(self, capacity_bytes: "float | None" = None) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise CampaignError(
                f"capacity_bytes must be >= 0, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[str, CacheEntry] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.integrity_failures = 0
        self.seconds_saved = 0.0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, signature: CmatSignature) -> bool:
        return signature.content_hash() in self._entries

    @property
    def in_use_bytes(self) -> int:
        """Bytes of tensor currently resident."""
        return sum(e.nbytes for e in self._entries.values())

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def lookup(self, signature: CmatSignature) -> Optional[CacheEntry]:
        """Probe for ``signature``'s tensor; records the hit or miss.

        On a hit the entry's assembly bill is added to
        :attr:`seconds_saved` — the simulated seconds the job skips by
        reusing the resident tensor.

        The entry's checksum is re-verified first: a corrupted record
        is evicted, counted under :attr:`integrity_failures`, and
        reported as a miss — a poisoned tensor must never be served.
        """
        key = signature.content_hash()
        entry = self._entries.get(key)
        self._clock += 1
        if entry is None:
            self.misses += 1
            return None
        if entry.content_checksum() != entry.checksum:
            del self._entries[key]
            self.evictions += 1
            self.integrity_failures += 1
            self.misses += 1
            return None
        entry.hits += 1
        entry.last_used = self._clock
        self.hits += 1
        self.seconds_saved += entry.build_s
        return entry

    def insert(
        self, signature: CmatSignature, nbytes: int, build_s: float
    ) -> CacheEntry:
        """Record a freshly assembled tensor; evicts LRU entries until
        the capacity holds.  Re-inserting an existing key refreshes its
        record (sizes can change when a recovery rebalanced shards)."""
        if nbytes < 0:
            raise CampaignError(f"nbytes must be >= 0, got {nbytes}")
        if build_s < 0:
            raise CampaignError(f"build_s must be >= 0, got {build_s}")
        key = signature.content_hash()
        self._clock += 1
        entry = CacheEntry(
            key=key, nbytes=int(nbytes), build_s=float(build_s),
            last_used=self._clock,
        )
        entry.checksum = entry.content_checksum()
        self._entries[key] = entry
        self._evict()
        return entry

    def _evict(self) -> None:
        if self.capacity_bytes is None:
            return
        while self._entries and self.in_use_bytes > self.capacity_bytes:
            lru = min(self._entries.values(), key=lambda e: e.last_used)
            del self._entries[lru.key]
            self.evictions += 1

    # ------------------------------------------------------------------
    def corrupt(self, signature: CmatSignature) -> bool:
        """Corrupt ``signature``'s resident record in place (fault
        injection: a bit-flip in a cached tensor).  The stored checksum
        is left stale — the next :meth:`lookup` must catch it.  Returns
        whether a record was present to corrupt."""
        entry = self._entries.get(signature.content_hash())
        if entry is None:
            return False
        entry.nbytes ^= 1
        return True

    def entries(self) -> List[CacheEntry]:
        """Resident entries, most recently used first."""
        return sorted(
            self._entries.values(), key=lambda e: -e.last_used
        )

    def stats(self) -> Dict[str, float]:
        """Accounting snapshot for reports.

        Keys (all present even before the first lookup, when
        ``hit_rate`` is defined as 0.0):

        - ``entries`` — resident records;
        - ``in_use_bytes`` — bytes of resident tensor;
        - ``hits`` / ``misses`` — lookup outcomes (an integrity
          failure counts as a miss);
        - ``evictions`` — records dropped (LRU pressure *or* integrity
          eviction);
        - ``integrity_failures`` — corrupted records caught and
          evicted by lookup verification;
        - ``hit_rate`` — ``hits / (hits + misses)``, 0.0 at zero
          lookups;
        - ``seconds_saved`` — simulated assembly seconds skipped by
          hits.
        """
        return {
            "entries": len(self._entries),
            "in_use_bytes": self.in_use_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "integrity_failures": self.integrity_failures,
            "hit_rate": self.hit_rate,
            "seconds_saved": self.seconds_saved,
        }
