"""Bin-packing candidate ensembles onto the machine.

The packer answers, per :class:`~repro.campaign.batcher.CandidateBatch`:
*how many members should run as one job (k), on how many nodes, and
where* — the ensemble-level analogue of choosing an unbalanced
decomposition (Jackson et al.): the machine is carved into unequal
node sets so no slot idles while work is pending.

Capacity is decided the way the solver itself enforces it: per-rank
state bytes plus the worst-case shared-cmat shard, probed against a
:class:`~repro.machine.memory.MemoryLedger` with
:meth:`~repro.machine.memory.MemoryLedger.would_fit` — no try/except
control flow, and the same arithmetic the run-time ledgers apply, so a
packed job cannot OOM at dispatch.

The two packing moves:

- **split** an oversized group: a batch whose k members cannot share
  one job on the whole machine is emitted as several jobs, each with
  the largest k that fits;
- **co-schedule** small jobs: jobs are first-fit placed onto disjoint
  contiguous node ranges of the same *wave*; waves run one after
  another, jobs within a wave run concurrently.

Node ranges are resolved to node ids through the machine's
:class:`~repro.machine.placement.BlockPlacement`, the launcher default
the rest of the reproduction assumes.

When a :class:`~repro.resilience.health.NodeHealthTracker` is
attached, quarantined nodes are struck from the allocatable pool
entirely: wave capacity shrinks, placements slide past the bad
hardware, and a job is never handed a node the circuit breaker has
tripped on.  With nothing quarantined the packing is bit-identical to
the health-free packer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import CampaignError
from repro.cgyro.params import CgyroInput
from repro.collision.cmat import cmat_block_bytes
from repro.grid.decomp import Decomposition
from repro.machine.memory import MemoryLedger
from repro.machine.model import MachineModel
from repro.machine.placement import BlockPlacement
from repro.perf.memory import state_bytes_per_rank
from repro.campaign.batcher import CandidateBatch
from repro.campaign.request import SimRequest
from repro.xgyro.partition import ensemble_nc_counts


@dataclass(frozen=True)
class JobShape:
    """Feasible geometry of one shared-cmat job.

    ``per_rank_cmat_bytes`` is the worst-case shard (uneven nc splits
    give the first ranks one extra configuration point), the planning
    ceiling the ledgers enforce at run time.
    """

    k: int
    n_nodes: int
    n_ranks: int
    ranks_per_member: int
    per_rank_cmat_bytes: int
    per_rank_state_bytes: int

    @property
    def per_rank_total_bytes(self) -> int:
        """Per-rank footprint the memory probe admitted."""
        return self.per_rank_cmat_bytes + self.per_rank_state_bytes


@dataclass(frozen=True)
class PackedJob:
    """One dispatchable XGYRO job: members, geometry, and node range.

    ``tuning`` carries the autotuner's :class:`~repro.plan.artifact.PlanChoice`
    when this job was shaped by a plan — the runner then pins the
    plan's collective algorithms and (possibly unbalanced) nc split on
    the job world.  ``None`` means the untuned defaults.
    """

    job_id: str
    wave: int
    requests: Tuple[SimRequest, ...]
    signature_key: str
    shape: JobShape
    nodes: Tuple[int, ...]
    tuning: "object | None" = None

    @property
    def k(self) -> int:
        """Ensemble size."""
        return len(self.requests)

    @property
    def n_nodes(self) -> int:
        """Nodes occupied."""
        return self.shape.n_nodes

    @property
    def request_ids(self) -> Tuple[str, ...]:
        """Member request ids, in member order."""
        return tuple(r.request_id for r in self.requests)


class CampaignPacker:
    """Chooses k, node counts, and node placements for candidate batches.

    Parameters
    ----------
    machine:
        The whole machine the campaign owns.
    prefer_larger_k:
        Pick the largest feasible ensemble size per job (default) —
        maximal sharing, the paper's regime.  ``False`` packs every
        request as its own k=1 job, the FIFO baseline benchmarks
        compare against.
    health:
        Optional :class:`~repro.resilience.health.NodeHealthTracker`;
        nodes it quarantines are excluded from placement (and from
        wave capacity) on every subsequent :meth:`pack`.
    plan:
        Optional autotuner :class:`~repro.plan.artifact.Plan`.  Batches
        whose ``signature_key`` matches the plan's are shaped by the
        plan directly — its k, its node subset, its algorithms, its nc
        split — instead of the greedy default; everything else (and any
        sub-k tail) falls back to the untuned path.  The plan is also
        re-probed against this machine's ledgers, so a stale artifact
        degrades to the default rather than OOMing.
    spread_domains:
        When the machine declares
        :class:`~repro.machine.topology.FaultDomains`, pick a job's
        nodes round-robin across domains instead of the first free run
        — one ``domain_loss`` then costs the job a few members
        (shrink-and-recover) rather than all of them.  ``False``, or a
        machine without domains, keeps the first-fit pick bit-identical
        to the domain-free packer.
    """

    def __init__(
        self,
        machine: MachineModel,
        *,
        prefer_larger_k: bool = True,
        health: "object | None" = None,
        plan: "object | None" = None,
        spread_domains: bool = True,
    ) -> None:
        self.machine = machine
        self.prefer_larger_k = prefer_larger_k
        self.health = health
        self.plan = plan
        self.spread_domains = spread_domains
        self._placement = BlockPlacement(machine, machine.n_ranks)

    def available_nodes(self) -> List[int]:
        """Allocatable node ids: the machine minus any quarantined."""
        if self.health is None:
            return list(range(self.machine.n_nodes))
        return self.health.available_nodes(self.machine.n_nodes)

    def select_nodes(
        self, candidates: Sequence[int], n_nodes: int
    ) -> Tuple[int, ...]:
        """Pick ``n_nodes`` node ids from ``candidates``.

        Without fault domains (or with ``spread_domains=False``) this
        is the first ``n_nodes`` in machine order — the historical
        pick.  With domains it takes the round-robin interleave prefix
        (maximal domain spread), returned sorted so job worlds keep
        ascending physical ids either way.
        """
        if n_nodes > len(candidates):
            raise CampaignError(
                f"cannot select {n_nodes} nodes from {len(candidates)} "
                "candidates"
            )
        domains = self.machine.fault_domains
        if domains is None or not self.spread_domains:
            return tuple(candidates[:n_nodes])
        return tuple(sorted(domains.interleave(candidates)[:n_nodes]))

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def shape_for(
        self, inp: CgyroInput, k: int, *, max_nodes: Optional[int] = None
    ) -> Optional[JobShape]:
        """Smallest-node feasible geometry for k members sharing, or
        ``None`` when no node count up to ``max_nodes`` (default: the
        whole machine) fits."""
        dims = inp.grid_dims()
        rpn = self.machine.ranks_per_node
        limit = self.machine.n_nodes if max_nodes is None else min(
            self.machine.n_nodes, max_nodes
        )
        for n_nodes in range(1, limit + 1):
            n_ranks = n_nodes * rpn
            if n_ranks % k != 0:
                continue
            per_member = n_ranks // k
            decomp = self._decomp(dims, per_member)
            if decomp is None:
                continue
            if k * decomp.n_proc_1 > dims.nc:
                continue  # some coll rank would own no cmat shard
            counts = ensemble_nc_counts(decomp, k)
            cmat_b = cmat_block_bytes(dims, max(counts), decomp.nt_loc)
            state_b = state_bytes_per_rank(inp, decomp)
            ledger = MemoryLedger(self.machine.mem_per_rank_bytes)
            if not ledger.would_fit("state", state_b):
                continue
            ledger.alloc("state", state_b)
            if not ledger.would_fit("cmat", cmat_b):
                continue
            return JobShape(
                k=k,
                n_nodes=n_nodes,
                n_ranks=n_ranks,
                ranks_per_member=per_member,
                per_rank_cmat_bytes=cmat_b,
                per_rank_state_bytes=state_b,
            )
        return None

    @staticmethod
    def _decomp(dims, n_ranks: int) -> Optional[Decomposition]:
        try:
            return Decomposition.choose(dims, n_ranks)
        except Exception:
            return None

    # ------------------------------------------------------------------
    # splitting oversized groups
    # ------------------------------------------------------------------
    def split(
        self, batch: CandidateBatch
    ) -> List[Tuple[Tuple[SimRequest, ...], JobShape]]:
        """Cut a candidate batch into feasible jobs.

        Greedy maximal sharing: repeatedly take the largest k for which
        some node count fits the *allocatable* machine (quarantined
        nodes excluded).  Raises :class:`CampaignError` when even a
        lone member (k=1) cannot fit — that request can never run on
        this machine (or on what quarantine has left of it).
        """
        jobs: List[Tuple[Tuple[SimRequest, ...], JobShape]] = []
        remaining = list(batch.requests)
        n_avail = len(self.available_nodes())
        while remaining:
            top_k = len(remaining) if self.prefer_larger_k else 1
            chosen: Optional[JobShape] = None
            for k in range(top_k, 0, -1):
                chosen = self.shape_for(
                    remaining[0].input, k, max_nodes=n_avail
                )
                if chosen is not None:
                    break
            if chosen is None:
                quarantined = self.machine.n_nodes - n_avail
                detail = (
                    f" ({quarantined} of {self.machine.n_nodes} nodes "
                    "quarantined)" if quarantined else ""
                )
                raise CampaignError(
                    f"request {remaining[0].request_id!r} "
                    f"({remaining[0].input.name!r}) does not fit "
                    f"{self.machine.name} at any node count, even alone"
                    f"{detail}"
                )
            jobs.append((tuple(remaining[: chosen.k]), chosen))
            remaining = remaining[chosen.k :]
        return jobs

    # ------------------------------------------------------------------
    # plan consumption
    # ------------------------------------------------------------------
    def plan_shape(self, inp: CgyroInput) -> Optional[JobShape]:
        """Ledger-probed :class:`JobShape` for the attached plan's
        choice, or ``None`` when no plan is attached or the artifact
        does not survive re-validation against *this* machine (wrong
        rank geometry, quarantined plan nodes, a shard that no longer
        fits) — the caller then falls back to the greedy default."""
        if self.plan is None:
            return None
        choice = self.plan.choice
        rpn = self.machine.ranks_per_node
        if choice.n_ranks != choice.n_nodes * rpn:
            return None
        avail = set(self.available_nodes())
        if not all(n in avail for n in choice.nodes):
            return None
        dims = inp.grid_dims()
        decomp = self._decomp(dims, choice.ranks_per_member)
        if decomp is None:
            return None
        if choice.k * decomp.n_proc_1 > dims.nc:
            return None
        counts = (
            choice.nc_counts
            if choice.nc_counts is not None
            else ensemble_nc_counts(decomp, choice.k)
        )
        if len(counts) != choice.k * decomp.n_proc_1 or sum(counts) != dims.nc:
            return None
        cmat_b = cmat_block_bytes(dims, max(counts), decomp.nt_loc)
        state_b = state_bytes_per_rank(inp, decomp)
        ledger = MemoryLedger(self.machine.mem_per_rank_bytes)
        if not ledger.would_fit("state", state_b):
            return None
        ledger.alloc("state", state_b)
        if not ledger.would_fit("cmat", cmat_b):
            return None
        return JobShape(
            k=choice.k,
            n_nodes=choice.n_nodes,
            n_ranks=choice.n_ranks,
            ranks_per_member=choice.ranks_per_member,
            per_rank_cmat_bytes=cmat_b,
            per_rank_state_bytes=state_b,
        )

    def _split_with_tuning(
        self, batch: CandidateBatch
    ) -> List[Tuple[Tuple[SimRequest, ...], JobShape, "object | None"]]:
        """:meth:`split`, with the plan applied to its matching batch.

        Full-k groups of a batch whose signature matches the plan's are
        emitted plan-shaped with the choice attached as tuning; the
        sub-k tail (and every other batch) takes the greedy default
        path with ``tuning=None``.
        """
        plan = self.plan
        if (
            plan is not None
            and batch.signature_key == plan.signature_key
        ):
            shape = self.plan_shape(batch.requests[0].input)
            if shape is not None:
                jobs: List[
                    Tuple[Tuple[SimRequest, ...], JobShape, "object | None"]
                ] = []
                remaining = list(batch.requests)
                while len(remaining) >= shape.k:
                    jobs.append(
                        (tuple(remaining[: shape.k]), shape, plan.choice)
                    )
                    remaining = remaining[shape.k :]
                if remaining:
                    tail = CandidateBatch(batch.signature, tuple(remaining))
                    jobs.extend(
                        (reqs, sh, None) for reqs, sh in self.split(tail)
                    )
                return jobs
        return [(reqs, sh, None) for reqs, sh in self.split(batch)]

    # ------------------------------------------------------------------
    # wave packing
    # ------------------------------------------------------------------
    def pack(
        self,
        batches: Sequence[CandidateBatch],
        *,
        job_id_offset: int = 0,
        wave_offset: int = 0,
    ) -> List[List[PackedJob]]:
        """Pack candidate batches into waves of co-scheduled jobs.

        Jobs are created batch by batch (priority order is the
        batcher's) and first-fit placed: each job lands in the earliest
        wave with enough free nodes, on the next free run of that
        wave's allocatable nodes.  Returns the waves in execution
        order; every wave's jobs occupy disjoint node sets of the
        machine.

        Plan-tuned jobs are pinned to the plan's exact node ids — on a
        heterogeneous machine *which* nodes a job owns is part of the
        optimisation — landing in the earliest wave where all of them
        are free (a new wave if none).  Without a plan the packing is
        bit-identical to the plan-free packer.

        ``job_id_offset`` and ``wave_offset`` let a caller that packs
        mid-stream (several pack calls over one campaign, or the online
        service slicing a moving window) keep job ids and wave indices
        globally unique instead of restarting at zero.
        """
        waves: List[List[PackedJob]] = []
        free_nodes: List[set] = []
        seq = job_id_offset
        available = self.available_nodes()
        for batch in batches:
            for requests, shape, tuning in self._split_with_tuning(batch):
                wave_idx: Optional[int] = None
                nodes: Optional[Tuple[int, ...]] = None
                if tuning is not None:
                    # pinned placement: the plan chose these node ids
                    want = tuple(tuning.nodes)
                    for w, free in enumerate(free_nodes):
                        if all(n in free for n in want):
                            wave_idx, nodes = w, want
                            break
                    if wave_idx is None:
                        waves.append([])
                        free_nodes.append(set(available))
                        wave_idx, nodes = len(waves) - 1, want
                else:
                    for w, free in enumerate(free_nodes):
                        if len(free) >= shape.n_nodes:
                            wave_idx = w
                            break
                    if wave_idx is None:
                        waves.append([])
                        free_nodes.append(set(available))
                        wave_idx = len(waves) - 1
                    # first free allocatable nodes, in machine order
                    # (contiguous ids when nothing is quarantined and
                    # no plan job fragments the wave — identical to
                    # the offset-counter packer)
                    free = free_nodes[wave_idx]
                    nodes = self.select_nodes(
                        [n for n in available if n in free],
                        shape.n_nodes,
                    )
                free_nodes[wave_idx].difference_update(nodes)
                waves[wave_idx].append(
                    PackedJob(
                        job_id=f"job{seq:03d}",
                        wave=wave_idx + wave_offset,
                        requests=requests,
                        signature_key=batch.signature_key,
                        shape=shape,
                        nodes=nodes,
                        tuning=tuning,
                    )
                )
                seq += 1
        return waves
