"""Simulation requests and the campaign's submission queue.

A :class:`SimRequest` is one user's ask: run this
:class:`~repro.cgyro.params.CgyroInput`, with a priority and an arrival
time in campaign (simulated) seconds.  Requests are JSON
round-trippable so a request stream can live in a file, be posted to a
service, or be replayed deterministically in benchmarks.

The :class:`RequestQueue` orders pending requests by priority (higher
first), then arrival time, then submission order — a plain priority
queue; *discovering which requests can share a cmat is deliberately
not its job* (see :class:`~repro.campaign.batcher.SignatureBatcher`).
"""

from __future__ import annotations

import heapq
import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import CampaignError
from repro.cgyro.params import CgyroInput
from repro.collision.params import SpeciesParams


# ----------------------------------------------------------------------
# CgyroInput <-> plain dict (JSON-safe)
# ----------------------------------------------------------------------
_TUPLE_FIELDS = ("dlnndr", "dlntdr")


def input_to_dict(inp: CgyroInput) -> Dict[str, object]:
    """JSON-safe dict of every :class:`CgyroInput` field."""
    out = asdict(inp)
    out["species"] = [asdict(sp) for sp in inp.species]
    for name in _TUPLE_FIELDS:
        out[name] = list(getattr(inp, name))
    return out


def input_from_dict(data: Dict[str, object]) -> CgyroInput:
    """Rebuild a validated :class:`CgyroInput` from :func:`input_to_dict`."""
    known = {f.name for f in fields(CgyroInput)}
    unknown = set(data) - known
    if unknown:
        raise CampaignError(
            f"unknown CgyroInput fields in request: {', '.join(sorted(unknown))}"
        )
    kwargs = dict(data)
    if "species" in kwargs:
        kwargs["species"] = tuple(
            SpeciesParams(**sp) for sp in kwargs["species"]
        )
    for name in _TUPLE_FIELDS:
        if name in kwargs:
            kwargs[name] = tuple(kwargs[name])
    return CgyroInput(**kwargs)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimRequest:
    """One simulation request in the campaign stream.

    Parameters
    ----------
    request_id:
        Unique identifier within the campaign.
    input:
        The simulation to run.
    priority:
        Higher runs earlier; requests of equal priority are served in
        arrival order.
    arrival_s:
        Submission time on the campaign's simulated clock.
    attempt:
        How many times this request has already been dispatched; bumped
        by the runner when a member is lost to a fault and requeued.
    tenant:
        Owning tenant for the online service's fairness accounting;
        ``None`` (the batch-campaign default) means unattributed.
    deadline_s:
        SLO deadline on the campaign clock — the request should finish
        by this time.  ``None`` means no deadline; the online service
        derives one from the tenant's SLO when absent.
    """

    request_id: str
    input: CgyroInput
    priority: int = 0
    arrival_s: float = 0.0
    attempt: int = 0
    tenant: Optional[str] = None
    deadline_s: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "request_id": self.request_id,
            "priority": self.priority,
            "arrival_s": self.arrival_s,
            "attempt": self.attempt,
            "tenant": self.tenant,
            "deadline_s": self.deadline_s,
            "input": input_to_dict(self.input),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimRequest":
        """Inverse of :meth:`to_dict` (validates the embedded input)."""
        try:
            request_id = str(data["request_id"])
            raw_input = data["input"]
        except (KeyError, TypeError) as exc:
            raise CampaignError(f"request is missing field {exc}") from None
        tenant = data.get("tenant")
        deadline = data.get("deadline_s")
        return cls(
            request_id=request_id,
            input=input_from_dict(dict(raw_input)),
            priority=int(data.get("priority", 0)),
            arrival_s=float(data.get("arrival_s", 0.0)),
            attempt=int(data.get("attempt", 0)),
            tenant=None if tenant is None else str(tenant),
            deadline_s=None if deadline is None else float(deadline),
        )

    def requeued(self) -> "SimRequest":
        """A copy representing the retry after a lost dispatch.

        Keeps the original priority and arrival time (queue-latency
        accounting measures from first submission); only the attempt
        counter advances.
        """
        return SimRequest(
            request_id=self.request_id,
            input=self.input,
            priority=self.priority,
            arrival_s=self.arrival_s,
            attempt=self.attempt + 1,
            tenant=self.tenant,
            deadline_s=self.deadline_s,
        )


class RequestQueue:
    """Priority + arrival ordered queue of :class:`SimRequest`.

    Pop order: highest priority first, then earliest ``arrival_s``,
    then submission order (stable for ties).  Duplicate request ids
    are rejected — a campaign needs unambiguous requeue accounting.
    """

    def __init__(self, requests: Optional[Iterable[SimRequest]] = None) -> None:
        self._heap: List[tuple] = []
        self._seq = 0
        self._ids: set = set()
        for req in requests or ():
            self.submit(req)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, request_id: str) -> bool:
        return request_id in self._ids

    def submit(self, request: SimRequest) -> None:
        """Add one request; raises on a duplicate live id."""
        if request.request_id in self._ids:
            raise CampaignError(
                f"request id {request.request_id!r} is already queued"
            )
        self._ids.add(request.request_id)
        heapq.heappush(
            self._heap,
            (-request.priority, request.arrival_s, self._seq, request),
        )
        self._seq += 1

    def pop(self) -> SimRequest:
        """Remove and return the next request to serve."""
        if not self._heap:
            raise CampaignError("pop from an empty request queue")
        request = heapq.heappop(self._heap)[-1]
        self._ids.discard(request.request_id)
        return request

    def peek(self) -> SimRequest:
        """The next request to serve, without removing it."""
        if not self._heap:
            raise CampaignError("peek into an empty request queue")
        return self._heap[0][-1]

    def drain(self) -> List[SimRequest]:
        """Pop everything, in queue order."""
        out: List[SimRequest] = []
        while self._heap:
            out.append(self.pop())
        return out

    def pending(self) -> List[SimRequest]:
        """Queue-ordered snapshot without consuming the queue."""
        return [item[-1] for item in sorted(self._heap)]

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self, path: "Union[str, Path, None]" = None, *, indent: int = 2) -> str:
        """Serialise the pending requests (queue order); optionally write
        the JSON to ``path``."""
        text = json.dumps(
            {"requests": [r.to_dict() for r in self.pending()]}, indent=indent
        )
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "RequestQueue":
        """Load a queue from a JSON file path or a JSON string."""
        path = Path(source)
        try:
            is_file = path.exists()
        except OSError:  # a long JSON string is not a valid path
            is_file = False
        text = path.read_text() if is_file else str(source)
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"invalid request JSON: {exc}") from None
        if not isinstance(data, dict) or "requests" not in data:
            raise CampaignError('request JSON must be {"requests": [...]}')
        return cls(SimRequest.from_dict(d) for d in data["requests"])
