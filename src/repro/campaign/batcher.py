"""Grouping a request stream into candidate shared-cmat ensembles.

The inverse of :func:`~repro.xgyro.validate.validate_shareable`: instead
of checking a pre-formed ensemble, :class:`SignatureBatcher` *discovers*
the shareable partition of an arbitrary pending set via
:func:`~repro.xgyro.validate.group_by_signature` and emits one
:class:`CandidateBatch` per group.  A batch is a *candidate* XGYRO
ensemble: every member could share one cmat; whether they run as one
job, several, or co-scheduled with others is the
:class:`~repro.campaign.packer.CampaignPacker`'s decision.

Members of one XGYRO job must also agree on the reporting cadence
(:attr:`~repro.cgyro.params.CgyroInput.steps_per_report` — a run-control
knob deliberately *outside* the cmat signature), so a signature group is
further split by cadence.  Batches inherit the queue's serving order:
groups are ordered by their best-placed request, members stay in queue
order within a batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.collision.signature import CmatSignature
from repro.campaign.request import SimRequest
from repro.xgyro.validate import group_by_signature


@dataclass(frozen=True)
class CandidateBatch:
    """A maximal set of pending requests that may share one cmat."""

    signature: CmatSignature
    requests: Tuple[SimRequest, ...]

    @property
    def size(self) -> int:
        """Number of member requests."""
        return len(self.requests)

    @property
    def signature_key(self) -> str:
        """Content address of the shared tensor (cache key)."""
        return self.signature.content_hash()

    @property
    def steps_per_report(self) -> int:
        """Common reporting cadence of every member."""
        return self.requests[0].input.steps_per_report


class SignatureBatcher:
    """Groups pending requests into candidate ensembles by signature.

    Parameters
    ----------
    max_batch:
        Optional cap on members per batch; a larger group is emitted as
        several consecutive batches.  ``None`` (default) leaves any
        splitting to the packer's capacity logic.
    """

    def __init__(self, *, max_batch: "int | None" = None) -> None:
        if max_batch is not None and max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch

    def batch(self, requests: Sequence[SimRequest]) -> List[CandidateBatch]:
        """Partition ``requests`` (already in queue order) into batches.

        Guarantees, covered by property tests: every request lands in
        exactly one batch; a batch never mixes cmat signatures or
        reporting cadences; interleaved arrivals of one signature merge
        back into one batch; a lone unshareable request forms a size-1
        batch.
        """
        inputs = [r.input for r in requests]
        batches: List[CandidateBatch] = []
        for signature, indices in group_by_signature(inputs):
            by_cadence: Dict[int, List[SimRequest]] = {}
            for i in indices:
                cadence = inputs[i].steps_per_report
                by_cadence.setdefault(cadence, []).append(requests[i])
            for members in by_cadence.values():
                batches.extend(self._capped(signature, members))
        return batches

    def _capped(
        self, signature: CmatSignature, members: List[SimRequest]
    ) -> List[CandidateBatch]:
        cap = self.max_batch or len(members)
        return [
            CandidateBatch(signature, tuple(members[lo : lo + cap]))
            for lo in range(0, len(members), cap)
        ]
