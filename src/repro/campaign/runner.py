"""The campaign service loop: drain, batch, pack, dispatch, requeue.

:class:`CampaignRunner` turns a :class:`~repro.campaign.request.RequestQueue`
into completed simulations:

1. drain the queue (priority order) and group the pending set into
   candidate ensembles with the
   :class:`~repro.campaign.batcher.SignatureBatcher`;
2. pack candidates into waves of node-disjoint jobs with the
   :class:`~repro.campaign.packer.CampaignPacker`;
3. dispatch each job on its own virtual world through
   :class:`~repro.resilience.runner.ResilientXgyroRunner` (an empty
   fault plan makes that identical to a bare
   :class:`~repro.xgyro.driver.XgyroEnsemble`), probing the
   :class:`~repro.campaign.cache.CmatCache` first — a hit runs the job
   with ``charge_cmat_build=False``;
4. members lost to injected faults are requeued (same id, same arrival
   time, attempt+1) under the :class:`~repro.resilience.health.RetryPolicy`
   — held out of the queue for an exponentially backed-off (jittered)
   interval of campaign time, and *dead-lettered* onto the report's
   ``abandoned`` list once the attempt cap is exhausted, so a member
   that faults every wave can no longer loop forever.

Jobs of one wave occupy disjoint node sets, so running each in its own
world of ``machine.with_nodes(job.n_nodes)`` is exact: disjoint node
sets never interact in the cost model.  The campaign clock advances by
each wave's makespan (the slowest job); waves and rounds serialise.

Fault plans are keyed by *job index* — the integer in the packer's
``job007``-style id — so a plan targets one specific dispatch; the
retry job gets a fresh id and (normally) no plan, which is what makes
requeue-and-finish terminate.  ``node_faults`` instead keys plans by
*physical node id*: every dispatch that lands on that node inherits
the plan (targets remapped into the job's local rank/node space) — a
flaky node, not a flaky job.  Each dispatch's fault fallout (crashes,
SDC repairs, migrations) is charged to the physical nodes involved on
the :class:`~repro.resilience.health.NodeHealthTracker`; once a node
trips the circuit breaker the packer stops placing work on it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import CampaignError, RecoveryFailed
from repro.collision.cmat import cmat_total_bytes
from repro.machine.model import MachineModel
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.health import NodeHealthTracker, RetryPolicy
from repro.resilience.runner import ResilientXgyroRunner
from repro.resilience.triage import RecoveryPolicy
from repro.vmpi.world import VirtualWorld
from repro.campaign.batcher import SignatureBatcher
from repro.campaign.cache import CmatCache
from repro.campaign.packer import CampaignPacker, PackedJob
from repro.campaign.report import (
    AbandonedRecord,
    CampaignReport,
    JobRecord,
    RequestRecord,
    WaveRecord,
)
from repro.campaign.request import RequestQueue


class CampaignRunner:
    """Serve a request queue as signature-batched XGYRO jobs.

    Parameters
    ----------
    machine:
        The machine the campaign owns.
    batcher / packer / cache:
        Pluggable stages; defaults are a cap-less
        :class:`SignatureBatcher`, a maximal-sharing
        :class:`CampaignPacker`, and an unbounded :class:`CmatCache`.
        Pass ``cache=None`` explicitly via ``use_cache=False`` to run
        every job cold.
    fault_plans:
        Map from job index (the integer in the packer's job id) to the
        :class:`FaultPlan` injected into that dispatch.
    checkpoint_interval / policy:
        Forwarded to every job's :class:`ResilientXgyroRunner`.
    enforce_memory:
        Make each job's world ledgers raise on oversubscription —
        normally redundant (the packer's probes already guarantee fit)
        but useful as a cross-check in tests.
    node_faults:
        Map from *physical node id* to a :class:`FaultPlan` injected
        into every dispatch placed on that node (targets remapped to
        the job's local rank/node space) — models chronically bad
        hardware rather than a one-off fault.
    retry:
        Requeue policy for fault-lost requests.  The default
        :class:`RetryPolicy` caps total dispatches at 3 with
        exponential backoff; ``retry=None`` restores the legacy
        unbounded requeue (bounded only by ``max_rounds``).
    health:
        Per-node incident tracker; defaults to a fresh
        :class:`NodeHealthTracker`.  It is shared with the packer (when
        the packer has none of its own) so quarantine decisions steer
        placement.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` bundle.  Every dispatch
        installs it on the job's world with the tracer's
        ``time_offset`` pointed at the wave's campaign-clock start, so
        one span tree — campaign > wave > job > step > phase >
        collective — covers the whole run at campaign-absolute times.
    """

    def __init__(
        self,
        machine: MachineModel,
        *,
        batcher: Optional[SignatureBatcher] = None,
        packer: Optional[CampaignPacker] = None,
        cache: Optional[CmatCache] = None,
        use_cache: bool = True,
        fault_plans: Optional[Mapping[int, FaultPlan]] = None,
        checkpoint_interval: int = 1,
        policy: Optional[RecoveryPolicy] = None,
        enforce_memory: bool = False,
        node_faults: Optional[Mapping[int, FaultPlan]] = None,
        retry: Optional[RetryPolicy] = RetryPolicy(),
        health: Optional[NodeHealthTracker] = None,
        telemetry=None,
        checker_factory=None,
    ) -> None:
        self.machine = machine
        self.batcher = batcher or SignatureBatcher()
        self.health = health if health is not None else NodeHealthTracker()
        if packer is None:
            self.packer = CampaignPacker(machine, health=self.health)
        else:
            self.packer = packer
            if getattr(packer, "health", None) is None:
                packer.health = self.health
            else:
                self.health = packer.health
        if use_cache:
            # explicit None test: an empty CmatCache is falsy but must
            # be kept — callers share it across runs to model warmth
            self.cache = cache if cache is not None else CmatCache()
        else:
            self.cache = None
        self.fault_plans: Dict[int, FaultPlan] = dict(fault_plans or {})
        self.node_faults: Dict[int, FaultPlan] = dict(node_faults or {})
        self.retry = retry
        self.checkpoint_interval = checkpoint_interval
        self.policy = policy
        self.enforce_memory = enforce_memory
        self.telemetry = telemetry
        #: zero-arg callable building a fresh protocol checker per
        #: dispatch (checkers are stateful; sharing one across jobs
        #: would leak epochs between worlds)
        self.checker_factory = checker_factory
        self._hold_until: Dict[str, float] = {}
        self._imposed_wait_s = 0.0

    # ------------------------------------------------------------------
    def run(
        self,
        queue: RequestQueue,
        *,
        steps: Optional[int] = None,
        max_rounds: int = 100,
        start_s: float = 0.0,
    ) -> CampaignReport:
        """Serve ``queue`` to empty and return the campaign report.

        ``steps`` overrides every job's step count (benchmarks use a
        short count); by default each job runs one reporting interval
        of its members (``steps_per_report``, common within a job by
        construction).  ``max_rounds`` bounds the requeue loop against
        a pathological fault-plan mapping that keeps killing retries.

        ``start_s`` places the campaign clock at an externally-advanced
        time: waves, job records, and spans land at ``start_s``-absolute
        times instead of restarting at zero, so a caller already living
        on a larger timeline (the online service draining its backlog
        mid-stream) can invoke a drain without folding time back to the
        origin.  The report's ``makespan_s`` stays a duration.
        """
        if start_s < 0:
            raise CampaignError(f"start_s must be >= 0, got {start_s}")
        clock = float(start_s)
        jobs: List[JobRecord] = []
        done: List[RequestRecord] = []
        abandoned: List[AbandonedRecord] = []
        wave_records: List[WaveRecord] = []
        peak_cmat = 0
        rounds = 0
        self._imposed_wait_s = 0.0
        tele = self.telemetry
        root_span = None
        if tele is not None:
            tele.tracer.time_offset = 0.0
            root_span = tele.tracer.begin("campaign", "campaign", clock)
        while queue:
            if rounds >= max_rounds:
                raise CampaignError(
                    f"campaign did not drain in {max_rounds} rounds; "
                    f"{len(queue)} request(s) still pending "
                    "(fault plans keep killing retries?)"
                )
            pending = queue.drain()
            held = [
                r
                for r in pending
                if self._hold_until.get(r.request_id, 0.0) > clock
            ]
            ready = [r for r in pending if r not in held]
            if not ready:
                # every pending request is backing off — idle the
                # campaign clock forward to the earliest release
                clock = min(self._hold_until[r.request_id] for r in held)
                for r in held:
                    queue.submit(r)
                rounds += 1
                continue
            for r in held:
                queue.submit(r)
            batches = self.batcher.batch(ready)
            waves = self.packer.pack(batches, job_id_offset=len(jobs))
            for wave in waves:
                wave_makespan = 0.0
                wave_nodes: set = set()
                wave_idx = wave[0].wave if wave else 0
                if tele is not None:
                    tele.tracer.time_offset = 0.0
                    tele.tracer.begin(
                        f"wave{wave_idx}", "wave", clock, round=rounds
                    )
                for job in wave:
                    record, completed, lost = self._dispatch(
                        job, rounds, clock, steps
                    )
                    jobs.append(record)
                    done.extend(completed)
                    for req in lost:
                        self._requeue_or_abandon(
                            req, record, queue, clock, abandoned
                        )
                    wave_makespan = max(wave_makespan, record.elapsed_s)
                    wave_nodes.update(job.nodes)
                    peak_cmat = max(peak_cmat, job.shape.per_rank_cmat_bytes)
                wave_records.append(
                    WaveRecord(
                        round=rounds,
                        wave=wave_idx,
                        start_s=clock,
                        end_s=clock + wave_makespan,
                        n_jobs=len(wave),
                        nodes_busy=len(wave_nodes),
                    )
                )
                clock += wave_makespan
                if tele is not None:
                    tele.tracer.time_offset = 0.0
                    tele.tracer.end(clock)
            rounds += 1
        if tele is not None and root_span is not None:
            tele.tracer.time_offset = 0.0
            tele.tracer.end(clock)
            for node in self.health.quarantined:
                tele.metrics.gauge("node_quarantined", node=node).set(1.0)
            if self.cache is not None:
                for key, val in self.cache.stats().items():
                    tele.metrics.gauge(f"campaign_cache_{key}").set(val)
        return CampaignReport(
            machine_name=self.machine.name,
            machine_n_nodes=self.machine.n_nodes,
            makespan_s=clock - start_s,
            jobs=jobs,
            requests=done,
            cache=self.cache.stats() if self.cache is not None else {},
            peak_cmat_bytes_per_rank=peak_cmat,
            abandoned=abandoned,
            quarantined_nodes=self.health.quarantined,
            health=self.health.to_dict(),
            waves=wave_records,
            imposed_wait_s=self._imposed_wait_s,
            quarantine_windows=self._quarantine_windows(clock),
        )

    def _quarantine_windows(self, end_s: float) -> List[Dict[str, float]]:
        """One ``{"node", "start_s", "end_s"}`` window per quarantined
        node, opening at the incident that tripped the breaker (0.0 for
        a forced quarantine) and closing at campaign end — the model
        has no operator reset mid-campaign."""
        windows: List[Dict[str, float]] = []
        thr = self.health.quarantine_threshold
        for node in self.health.quarantined:
            incidents = self.health.incidents(node)
            if thr is not None and len(incidents) >= thr:
                start = incidents[thr - 1].at_s
            else:
                start = 0.0
            windows.append(
                {
                    "node": float(node),
                    "start_s": float(start),
                    "end_s": float(end_s),
                }
            )
        return windows

    # ------------------------------------------------------------------
    def dispatch(
        self,
        job: PackedJob,
        *,
        start_s: float = 0.0,
        round_idx: int = 0,
        steps: Optional[int] = None,
    ) -> Tuple[JobRecord, List[RequestRecord], List]:
        """Run one packed job at campaign time ``start_s``.

        The streaming entry point: a caller that places jobs itself
        (the online service's moving window over an elastic pool) runs
        each dispatch here instead of draining a queue through
        :meth:`run`.  Cache probes, health charging, fault plans, and
        telemetry behave exactly as under :meth:`run`; the caller owns
        the clock and the requeue policy for the returned lost
        requests.
        """
        return self._dispatch(job, round_idx, start_s, steps)

    # ------------------------------------------------------------------
    def _requeue_or_abandon(
        self,
        req,
        record: JobRecord,
        queue: RequestQueue,
        clock: float,
        abandoned: List[AbandonedRecord],
    ) -> None:
        """Requeue a fault-lost request under the retry policy, or
        dead-letter it once the attempt cap is exhausted."""
        attempts_done = req.attempt + 1  # dispatches consumed so far
        if self.retry is not None and not self.retry.allows(attempts_done + 1):
            if self.telemetry is not None:
                self.telemetry.metrics.counter(
                    "campaign_dead_letters_total"
                ).inc()
            abandoned.append(
                AbandonedRecord(
                    request_id=req.request_id,
                    attempts=attempts_done,
                    last_job_id=record.job_id,
                    reason=(
                        f"lost to faults on all {attempts_done} dispatch(es); "
                        f"retry policy max_attempts={self.retry.max_attempts}"
                    ),
                )
            )
            return
        if self.retry is not None:
            backoff = self.retry.backoff_s(attempts_done, key=req.request_id)
            self._hold_until[req.request_id] = (
                clock + record.elapsed_s + backoff
            )
        if self.telemetry is not None:
            self.telemetry.metrics.counter("campaign_retries_total").inc()
        queue.submit(req.requeued())

    # ------------------------------------------------------------------
    def _job_plan(self, job: PackedJob) -> Optional[FaultPlan]:
        """The fault plan for one dispatch: the per-job-index plan (if
        any) merged with every ``node_faults`` plan whose physical node
        this job landed on, targets remapped into the job's local
        rank/node space."""
        base = self.fault_plans.get(int(job.job_id[3:]))
        if not self.node_faults:
            return base
        specs = list(base.specs) if base is not None else []
        timeout = base.detection_timeout_s if base is not None else 30.0
        seed = base.seed if base is not None else 0
        rpn = self.machine.ranks_per_node
        extra = False
        for local_node, phys_node in enumerate(job.nodes):
            node_plan = self.node_faults.get(phys_node)
            if node_plan is None:
                continue
            extra = True
            timeout = max(timeout, node_plan.detection_timeout_s)
            for s in node_plan.specs:
                if s.kind == "node_loss" or (
                    s.kind in ("slowdown", "link_slowdown") and s.rank < 0
                ):
                    # node-scoped spec: retarget at the local node index
                    specs.append(
                        FaultSpec(
                            kind=s.kind,
                            at_step=s.at_step,
                            node=local_node,
                            factor=s.factor,
                            phase=s.phase,
                        )
                    )
                else:
                    # rank-scoped spec: ``rank`` is the offset within
                    # the flaky node (clamped into [0, rpn))
                    off = s.rank if 0 <= s.rank < rpn else 0
                    specs.append(
                        FaultSpec(
                            kind=s.kind,
                            at_step=s.at_step,
                            rank=local_node * rpn + off,
                            factor=s.factor,
                            phase=s.phase,
                        )
                    )
        if not extra:
            return base
        return FaultPlan(
            specs=tuple(specs), detection_timeout_s=timeout, seed=seed
        )

    def _record_health(
        self,
        job: PackedJob,
        runner: ResilientXgyroRunner,
        world: VirtualWorld,
        start_s: float,
    ) -> None:
        """Charge one dispatch's fault fallout to the physical nodes
        involved, mapping the job's local node indices through
        ``job.nodes``."""

        for ev in runner.ledger.events:
            for local_node in ev.failed_nodes:
                self._record_incident(
                    job,
                    local_node,
                    "crash",
                    start_s,
                    f"{job.job_id}: rank crash at step {ev.step}",
                )
        for sdc in runner.ledger.sdc_events:
            for rank in sdc.ranks:
                self._record_incident(
                    job,
                    world.placement.node_of(int(rank)),
                    "sdc",
                    start_s,
                    f"{job.job_id}: shard checksum mismatch at step {sdc.step}",
                )
        for mig in runner.ledger.migrations:
            self._record_incident(
                job,
                mig.node,
                "straggler",
                start_s,
                f"{job.job_id}: member {mig.member} migrated at step {mig.step}",
            )

    def _record_incident(
        self, job: PackedJob, local_node: int, kind: str, at_s: float, detail: str
    ) -> None:
        """Record one incident against the *physical* node backing the
        job-local node index."""
        self.health.record(
            job.nodes[local_node], kind, at_s=at_s, detail=detail
        )

    # ------------------------------------------------------------------
    def _finish_job_telemetry(self, job: PackedJob, world: VirtualWorld) -> None:
        """Book one finished dispatch: imposed-wait total, job-span
        close, memory high-water marker + gauge."""
        job_imposed = float(world.imposed_wait_s.sum())
        self._imposed_wait_s += job_imposed
        tele = self.telemetry
        if tele is None:
            return
        t_end = world.elapsed()
        peak = max((l.peak_bytes for l in world.ledgers), default=0)
        tele.tracer.record(
            f"{job.job_id}.mem",
            "marker",
            t_end,
            0.0,
            mem_high_water_bytes=int(peak),
        )
        tele.tracer.end(t_end)
        tele.tracer.time_offset = 0.0
        tele.metrics.gauge("memory_high_water_bytes", job=job.job_id).max(peak)
        tele.metrics.counter("campaign_imposed_wait_seconds_total").inc(
            job_imposed
        )
        # the same wait attributed to fault domains: rank -> job-local
        # node -> physical node -> domain, so the monitoring plane can
        # see one rack imposing anomalous collective wait
        per_domain: Dict[int, float] = {}
        for rank in range(int(world.imposed_wait_s.size)):
            wait = float(world.imposed_wait_s[rank])
            if wait <= 0.0:
                continue
            node = job.nodes[world.placement.node_of(rank)]
            dom = self.machine.domain_of(node)
            per_domain[dom] = per_domain.get(dom, 0.0) + wait
        for dom, wait in sorted(per_domain.items()):
            tele.metrics.counter(
                "campaign_domain_imposed_wait_seconds_total", domain=dom
            ).inc(wait)

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        job: PackedJob,
        round_idx: int,
        start_s: float,
        steps_override: Optional[int],
    ) -> Tuple[JobRecord, List[RequestRecord], List]:
        """Run one packed job; returns its record, the completion
        records of surviving members, and the lost requests to requeue."""
        steps = (
            steps_override
            if steps_override is not None
            else job.requests[0].input.steps_per_report
        )
        signature = job.requests[0].input.cmat_signature()
        hit = (
            self.cache.lookup(signature) if self.cache is not None else None
        )

        # the job world sees exactly the physical nodes the packer
        # assigned — on a heterogeneous machine their speed/bandwidth
        # multipliers ride along (identical to with_nodes(n) when the
        # machine is homogeneous and the nodes are the leading run)
        world = VirtualWorld(
            self.machine.submachine(job.nodes),
            enforce_memory=self.enforce_memory,
        )
        nc_counts = None
        overlap = "off"
        if job.tuning is not None:
            # pin the autotuner's collective algorithms, nc split, and
            # step schedule
            from repro.plan.predict import algorithms_of

            tuned_ar, tuned_a2a = algorithms_of(job.tuning)
            world.cost_model.default_allreduce = tuned_ar
            world.cost_model.default_alltoall = tuned_a2a
            nc_counts = job.tuning.nc_counts
            overlap = job.tuning.overlap
        tele = self.telemetry
        if tele is not None:
            # the job's world clock starts at zero: shift its spans to
            # the wave's campaign-clock start
            tele.tracer.time_offset = start_s
            tele.tracer.begin(
                job.job_id,
                "job",
                0.0,
                k=job.k,
                n_nodes=job.n_nodes,
                signature=job.signature_key,
                cache_hit=hit is not None,
            )
            tele.metrics.counter(
                "campaign_cache_hits_total"
                if hit is not None
                else "campaign_cache_misses_total"
            ).inc()
        plan = self._job_plan(job)
        runner = ResilientXgyroRunner(
            world,
            [r.input for r in job.requests],
            plan=plan,
            checkpoint_interval=self.checkpoint_interval,
            policy=self.policy,
            charge_cmat_build=hit is None,
            telemetry=tele,
            nc_counts=nc_counts,
            overlap=overlap,
            checker=(
                self.checker_factory()
                if self.checker_factory is not None
                else None
            ),
        )
        try:
            result = runner.run_steps(steps)
        except RecoveryFailed as abort:
            # whole-job abort (e.g. shrunk below the policy minimum):
            # every member is lost; requeue them all under the retry
            # policy rather than crashing the campaign
            self._record_health(job, runner, world, start_s)
            for rank in abort.failed_ranks:
                self._record_incident(
                    job,
                    world.placement.node_of(int(rank)),
                    "crash",
                    start_s,
                    f"{job.job_id}: aborted ({abort.reason})",
                )
            self._finish_job_telemetry(job, world)
            elapsed = world.elapsed()
            record = JobRecord(
                job_id=job.job_id,
                round=round_idx,
                wave=job.wave,
                signature_key=job.signature_key,
                k=job.k,
                n_nodes=job.n_nodes,
                nodes=job.nodes,
                steps=runner.ensemble.step_count,
                start_s=start_s,
                elapsed_s=elapsed,
                cache_hit=hit is not None,
                cmat_build_s=0.0,
                n_recoveries=len(runner.ledger),
                lost_request_ids=tuple(r.request_id for r in job.requests),
            )
            return record, [], list(job.requests)
        self._record_health(job, runner, world, start_s)
        self._finish_job_telemetry(job, world)

        build_s = 0.0
        if hit is None:
            build_s = world.category_time("cmat_build", reduce="max")
            if self.cache is not None:
                dims = job.requests[0].input.grid_dims()
                self.cache.insert(
                    signature, cmat_total_bytes(dims), build_s
                )

        lost_labels = set(result.lost_member_labels)
        completed: List[RequestRecord] = []
        lost_requests = []
        for m, (req, label) in enumerate(
            zip(job.requests, runner.member_labels_initial)
        ):
            if label in lost_labels:
                lost_requests.append(req)
                continue
            completed.append(
                RequestRecord(
                    request_id=req.request_id,
                    job_id=job.job_id,
                    priority=req.priority,
                    arrival_s=req.arrival_s,
                    start_s=start_s,
                    finish_s=start_s + result.elapsed_s,
                    steps=steps,
                    attempts=req.attempt + 1,
                )
            )
        record = JobRecord(
            job_id=job.job_id,
            round=round_idx,
            wave=job.wave,
            signature_key=job.signature_key,
            k=job.k,
            n_nodes=job.n_nodes,
            nodes=job.nodes,
            steps=result.steps,
            start_s=start_s,
            elapsed_s=result.elapsed_s,
            cache_hit=hit is not None,
            cmat_build_s=build_s,
            n_recoveries=result.n_recoveries,
            lost_request_ids=tuple(r.request_id for r in lost_requests),
        )
        return record, completed, lost_requests
