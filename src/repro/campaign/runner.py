"""The campaign service loop: drain, batch, pack, dispatch, requeue.

:class:`CampaignRunner` turns a :class:`~repro.campaign.request.RequestQueue`
into completed simulations:

1. drain the queue (priority order) and group the pending set into
   candidate ensembles with the
   :class:`~repro.campaign.batcher.SignatureBatcher`;
2. pack candidates into waves of node-disjoint jobs with the
   :class:`~repro.campaign.packer.CampaignPacker`;
3. dispatch each job on its own virtual world through
   :class:`~repro.resilience.runner.ResilientXgyroRunner` (an empty
   fault plan makes that identical to a bare
   :class:`~repro.xgyro.driver.XgyroEnsemble`), probing the
   :class:`~repro.campaign.cache.CmatCache` first — a hit runs the job
   with ``charge_cmat_build=False``;
4. members lost to injected faults are requeued (same id, same arrival
   time, attempt+1) and served in the next round.

Jobs of one wave occupy disjoint node sets, so running each in its own
world of ``machine.with_nodes(job.n_nodes)`` is exact: disjoint node
sets never interact in the cost model.  The campaign clock advances by
each wave's makespan (the slowest job); waves and rounds serialise.

Fault plans are keyed by *job index* — the integer in the packer's
``job007``-style id — so a plan targets one specific dispatch; the
retry job gets a fresh id and (normally) no plan, which is what makes
requeue-and-finish terminate.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import CampaignError
from repro.collision.cmat import cmat_total_bytes
from repro.machine.model import MachineModel
from repro.resilience.faults import FaultPlan
from repro.resilience.runner import ResilientXgyroRunner
from repro.resilience.triage import RecoveryPolicy
from repro.vmpi.world import VirtualWorld
from repro.campaign.batcher import SignatureBatcher
from repro.campaign.cache import CmatCache
from repro.campaign.packer import CampaignPacker, PackedJob
from repro.campaign.report import CampaignReport, JobRecord, RequestRecord
from repro.campaign.request import RequestQueue


class CampaignRunner:
    """Serve a request queue as signature-batched XGYRO jobs.

    Parameters
    ----------
    machine:
        The machine the campaign owns.
    batcher / packer / cache:
        Pluggable stages; defaults are a cap-less
        :class:`SignatureBatcher`, a maximal-sharing
        :class:`CampaignPacker`, and an unbounded :class:`CmatCache`.
        Pass ``cache=None`` explicitly via ``use_cache=False`` to run
        every job cold.
    fault_plans:
        Map from job index (the integer in the packer's job id) to the
        :class:`FaultPlan` injected into that dispatch.
    checkpoint_interval / policy:
        Forwarded to every job's :class:`ResilientXgyroRunner`.
    enforce_memory:
        Make each job's world ledgers raise on oversubscription —
        normally redundant (the packer's probes already guarantee fit)
        but useful as a cross-check in tests.
    """

    def __init__(
        self,
        machine: MachineModel,
        *,
        batcher: Optional[SignatureBatcher] = None,
        packer: Optional[CampaignPacker] = None,
        cache: Optional[CmatCache] = None,
        use_cache: bool = True,
        fault_plans: Optional[Mapping[int, FaultPlan]] = None,
        checkpoint_interval: int = 1,
        policy: Optional[RecoveryPolicy] = None,
        enforce_memory: bool = False,
    ) -> None:
        self.machine = machine
        self.batcher = batcher or SignatureBatcher()
        self.packer = packer or CampaignPacker(machine)
        if use_cache:
            # explicit None test: an empty CmatCache is falsy but must
            # be kept — callers share it across runs to model warmth
            self.cache = cache if cache is not None else CmatCache()
        else:
            self.cache = None
        self.fault_plans: Dict[int, FaultPlan] = dict(fault_plans or {})
        self.checkpoint_interval = checkpoint_interval
        self.policy = policy
        self.enforce_memory = enforce_memory

    # ------------------------------------------------------------------
    def run(
        self,
        queue: RequestQueue,
        *,
        steps: Optional[int] = None,
        max_rounds: int = 100,
    ) -> CampaignReport:
        """Serve ``queue`` to empty and return the campaign report.

        ``steps`` overrides every job's step count (benchmarks use a
        short count); by default each job runs one reporting interval
        of its members (``steps_per_report``, common within a job by
        construction).  ``max_rounds`` bounds the requeue loop against
        a pathological fault-plan mapping that keeps killing retries.
        """
        clock = 0.0
        jobs: List[JobRecord] = []
        done: List[RequestRecord] = []
        peak_cmat = 0
        rounds = 0
        while queue:
            if rounds >= max_rounds:
                raise CampaignError(
                    f"campaign did not drain in {max_rounds} rounds; "
                    f"{len(queue)} request(s) still pending "
                    "(fault plans keep killing retries?)"
                )
            batches = self.batcher.batch(queue.drain())
            waves = self.packer.pack(batches, job_id_offset=len(jobs))
            for wave in waves:
                wave_makespan = 0.0
                for job in wave:
                    record, completed, lost = self._dispatch(
                        job, rounds, clock, steps
                    )
                    jobs.append(record)
                    done.extend(completed)
                    for req in lost:
                        queue.submit(req.requeued())
                    wave_makespan = max(wave_makespan, record.elapsed_s)
                    peak_cmat = max(peak_cmat, job.shape.per_rank_cmat_bytes)
                clock += wave_makespan
            rounds += 1
        return CampaignReport(
            machine_name=self.machine.name,
            machine_n_nodes=self.machine.n_nodes,
            makespan_s=clock,
            jobs=jobs,
            requests=done,
            cache=self.cache.stats() if self.cache is not None else {},
            peak_cmat_bytes_per_rank=peak_cmat,
        )

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        job: PackedJob,
        round_idx: int,
        start_s: float,
        steps_override: Optional[int],
    ) -> Tuple[JobRecord, List[RequestRecord], List]:
        """Run one packed job; returns its record, the completion
        records of surviving members, and the lost requests to requeue."""
        steps = (
            steps_override
            if steps_override is not None
            else job.requests[0].input.steps_per_report
        )
        signature = job.requests[0].input.cmat_signature()
        hit = (
            self.cache.lookup(signature) if self.cache is not None else None
        )

        world = VirtualWorld(
            self.machine.with_nodes(job.n_nodes),
            enforce_memory=self.enforce_memory,
        )
        plan = self.fault_plans.get(int(job.job_id[3:]))
        runner = ResilientXgyroRunner(
            world,
            [r.input for r in job.requests],
            plan=plan,
            checkpoint_interval=self.checkpoint_interval,
            policy=self.policy,
            charge_cmat_build=hit is None,
        )
        result = runner.run_steps(steps)

        build_s = 0.0
        if hit is None:
            build_s = world.category_time("cmat_build", reduce="max")
            if self.cache is not None:
                dims = job.requests[0].input.grid_dims()
                self.cache.insert(
                    signature, cmat_total_bytes(dims), build_s
                )

        lost_labels = set(result.lost_member_labels)
        completed: List[RequestRecord] = []
        lost_requests = []
        for m, (req, label) in enumerate(
            zip(job.requests, runner.member_labels_initial)
        ):
            if label in lost_labels:
                lost_requests.append(req)
                continue
            completed.append(
                RequestRecord(
                    request_id=req.request_id,
                    job_id=job.job_id,
                    priority=req.priority,
                    arrival_s=req.arrival_s,
                    start_s=start_s,
                    finish_s=start_s + result.elapsed_s,
                    steps=steps,
                    attempts=req.attempt + 1,
                )
            )
        record = JobRecord(
            job_id=job.job_id,
            round=round_idx,
            wave=job.wave,
            signature_key=job.signature_key,
            k=job.k,
            n_nodes=job.n_nodes,
            nodes=job.nodes,
            steps=result.steps,
            start_s=start_s,
            elapsed_s=result.elapsed_s,
            cache_hit=hit is not None,
            cmat_build_s=build_s,
            n_recoveries=result.n_recoveries,
            lost_request_ids=tuple(r.request_id for r in lost_requests),
        )
        return record, completed, lost_requests
