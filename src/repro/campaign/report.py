"""Campaign outcome records and the aggregate report.

Everything here is plain accounting over the runner's dispatch log:
one :class:`RequestRecord` per *completed* request, one
:class:`JobRecord` per dispatched job, folded into a
:class:`CampaignReport` with the service-level numbers the ROADMAP
asks for — throughput in member-steps per simulated second, queue
latency percentiles, cmat-cache hit rate, and node utilisation.

Requests that exhaust the :class:`~repro.resilience.health.RetryPolicy`
attempt cap land on the dead-letter list as :class:`AbandonedRecord`
entries — surfaced, never silently dropped — and the report carries
the :class:`~repro.resilience.health.NodeHealthTracker` snapshot
(incident ledger, quarantined nodes) alongside them.

All times are campaign-clock (simulated) seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import CampaignError


@dataclass(frozen=True)
class RequestRecord:
    """Completion record of one request (written when it finishes)."""

    request_id: str
    job_id: str
    priority: int
    arrival_s: float
    start_s: float
    finish_s: float
    steps: int
    attempts: int

    @property
    def queue_latency_s(self) -> float:
        """Submission to first byte of useful work, across retries.

        Clamped at zero: a request whose ``arrival_s`` postdates the
        wave that served it (the campaign model has no arrival gating)
        simply waited nothing.
        """
        return max(0.0, self.start_s - self.arrival_s)

    @property
    def turnaround_s(self) -> float:
        """Submission to completion, across retries (clamped like
        :attr:`queue_latency_s`)."""
        return max(0.0, self.finish_s - self.arrival_s)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "request_id": self.request_id,
            "job_id": self.job_id,
            "priority": self.priority,
            "arrival_s": self.arrival_s,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "steps": self.steps,
            "attempts": self.attempts,
            "queue_latency_s": self.queue_latency_s,
            "turnaround_s": self.turnaround_s,
        }


@dataclass(frozen=True)
class JobRecord:
    """Dispatch record of one packed job."""

    job_id: str
    round: int
    wave: int
    signature_key: str
    k: int
    n_nodes: int
    nodes: Tuple[int, ...]
    steps: int
    start_s: float
    elapsed_s: float
    cache_hit: bool
    cmat_build_s: float
    n_recoveries: int
    lost_request_ids: Tuple[str, ...]

    @property
    def finish_s(self) -> float:
        """Campaign-clock completion time."""
        return self.start_s + self.elapsed_s

    @property
    def completed_members(self) -> int:
        """Members that survived to the end of the job."""
        return self.k - len(self.lost_request_ids)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "job_id": self.job_id,
            "round": self.round,
            "wave": self.wave,
            "signature_key": self.signature_key,
            "k": self.k,
            "n_nodes": self.n_nodes,
            "nodes": list(self.nodes),
            "steps": self.steps,
            "start_s": self.start_s,
            "elapsed_s": self.elapsed_s,
            "cache_hit": self.cache_hit,
            "cmat_build_s": self.cmat_build_s,
            "n_recoveries": self.n_recoveries,
            "lost_request_ids": list(self.lost_request_ids),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "JobRecord":
        """Rebuild from :meth:`to_dict` output (journal replay)."""
        return cls(
            job_id=str(d["job_id"]),
            round=int(d["round"]),  # type: ignore[arg-type]
            wave=int(d["wave"]),  # type: ignore[arg-type]
            signature_key=str(d["signature_key"]),
            k=int(d["k"]),  # type: ignore[arg-type]
            n_nodes=int(d["n_nodes"]),  # type: ignore[arg-type]
            nodes=tuple(int(n) for n in d["nodes"]),  # type: ignore[union-attr]
            steps=int(d["steps"]),  # type: ignore[arg-type]
            start_s=float(d["start_s"]),  # type: ignore[arg-type]
            elapsed_s=float(d["elapsed_s"]),  # type: ignore[arg-type]
            cache_hit=bool(d["cache_hit"]),
            cmat_build_s=float(d["cmat_build_s"]),  # type: ignore[arg-type]
            n_recoveries=int(d["n_recoveries"]),  # type: ignore[arg-type]
            lost_request_ids=tuple(
                str(r) for r in d["lost_request_ids"]  # type: ignore[union-attr]
            ),
        )


@dataclass(frozen=True)
class WaveRecord:
    """Timeline entry for one wave of node-disjoint jobs."""

    round: int
    wave: int
    start_s: float
    end_s: float
    n_jobs: int
    nodes_busy: int

    @property
    def duration_s(self) -> float:
        """Wave makespan (its slowest job)."""
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "round": self.round,
            "wave": self.wave,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "n_jobs": self.n_jobs,
            "nodes_busy": self.nodes_busy,
        }


@dataclass(frozen=True)
class AbandonedRecord:
    """Dead-letter entry: a request given up on after repeated faults."""

    request_id: str
    attempts: int
    last_job_id: str
    reason: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "request_id": self.request_id,
            "attempts": self.attempts,
            "last_job_id": self.last_job_id,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "AbandonedRecord":
        """Rebuild from :meth:`to_dict` output (journal replay)."""
        return cls(
            request_id=str(d["request_id"]),
            attempts=int(d["attempts"]),  # type: ignore[arg-type]
            last_job_id=str(d["last_job_id"]),
            reason=str(d["reason"]),
        )


@dataclass
class CampaignReport:
    """Service-level summary of one campaign run."""

    machine_name: str
    machine_n_nodes: int
    makespan_s: float
    jobs: List[JobRecord] = field(default_factory=list)
    requests: List[RequestRecord] = field(default_factory=list)
    cache: Dict[str, float] = field(default_factory=dict)
    peak_cmat_bytes_per_rank: int = 0
    abandoned: List[AbandonedRecord] = field(default_factory=list)
    quarantined_nodes: Tuple[int, ...] = ()
    health: Dict[str, object] = field(default_factory=dict)
    #: wave timeline (start/end/nodes-busy per wave, in dispatch order)
    waves: List[WaveRecord] = field(default_factory=list)
    #: total imposed straggler wait summed over every dispatch's ranks
    imposed_wait_s: float = 0.0
    #: ``{"node", "start_s", "end_s"}`` per quarantined node — from the
    #: incident that tripped the breaker to the end of the campaign
    quarantine_windows: List[Dict[str, float]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        """Jobs dispatched (retries included)."""
        return len(self.jobs)

    @property
    def n_completed(self) -> int:
        """Requests brought to completion."""
        return len(self.requests)

    @property
    def n_requeued(self) -> int:
        """Member slots lost to faults and sent back to the queue."""
        return sum(len(j.lost_request_ids) for j in self.jobs)

    @property
    def n_abandoned(self) -> int:
        """Requests dead-lettered after exhausting the retry policy."""
        return len(self.abandoned)

    @property
    def total_member_steps(self) -> int:
        """Completed member-steps (the campaign's useful work)."""
        return sum(r.steps for r in self.requests)

    @property
    def throughput_member_steps_per_s(self) -> float:
        """Useful work rate over the whole campaign."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_member_steps / self.makespan_s

    @property
    def node_utilisation(self) -> float:
        """Busy node-seconds over available node-seconds."""
        if self.makespan_s <= 0:
            return 0.0
        busy = sum(j.n_nodes * j.elapsed_s for j in self.jobs)
        return busy / (self.machine_n_nodes * self.makespan_s)

    @property
    def mean_k(self) -> float:
        """Average ensemble size across dispatched jobs."""
        if not self.jobs:
            return 0.0
        return sum(j.k for j in self.jobs) / len(self.jobs)

    def latency_percentiles(
        self, qs: Tuple[float, ...] = (50.0, 90.0, 99.0)
    ) -> Dict[str, float]:
        """Queue-latency percentiles over completed requests."""
        if not self.requests:
            raise CampaignError("no completed requests to take percentiles of")
        lat = np.array([r.queue_latency_s for r in self.requests])
        return {f"p{q:g}": float(np.percentile(lat, q)) for q in qs}

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation of the whole report."""
        return {
            "machine_name": self.machine_name,
            "machine_n_nodes": self.machine_n_nodes,
            "makespan_s": self.makespan_s,
            "n_jobs": self.n_jobs,
            "n_completed": self.n_completed,
            "n_requeued": self.n_requeued,
            "mean_k": self.mean_k,
            "total_member_steps": self.total_member_steps,
            "throughput_member_steps_per_s": self.throughput_member_steps_per_s,
            "node_utilisation": self.node_utilisation,
            "peak_cmat_bytes_per_rank": self.peak_cmat_bytes_per_rank,
            "latency_percentiles": (
                self.latency_percentiles() if self.requests else {}
            ),
            "cache": dict(self.cache),
            "n_abandoned": self.n_abandoned,
            "abandoned": [a.to_dict() for a in self.abandoned],
            "quarantined_nodes": list(self.quarantined_nodes),
            "health": dict(self.health),
            "waves": [w.to_dict() for w in self.waves],
            "imposed_wait_s": self.imposed_wait_s,
            "quarantine_windows": [dict(w) for w in self.quarantine_windows],
            "jobs": [j.to_dict() for j in self.jobs],
            "requests": [r.to_dict() for r in self.requests],
        }
