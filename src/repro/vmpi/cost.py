"""Group-aware communication cost model.

Bridges the machine model and the per-algorithm formulas: given the set
of world ranks participating in a collective, derive the *effective*
link the group sees —

- a group confined to one node uses the intra-node link;
- a group spanning nodes pays inter-node latency, and its per-rank
  bandwidth is the node NIC bandwidth divided by the largest number of
  group members sharing one NIC (contention);

— then evaluate the requested collective's formula.  This is what makes
XGYRO's per-member AllReduce groups cheap: with block placement they
fit inside a node and never touch a NIC, while a full-width CGYRO
simulation's groups span several nodes (DESIGN.md section 5).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import CollectiveError
from repro.machine.model import MachineModel
from repro.machine.placement import Placement
from repro.vmpi.algorithms import (
    AllreduceAlgorithm,
    AlltoallAlgorithm,
    EffectiveLink,
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    bcast_cost,
    gather_cost,
    reduce_cost,
    scatter_cost,
)


class CommCostModel:
    """Evaluates collective costs for rank groups on a placed machine."""

    #: message-size thresholds (bytes) for automatic algorithm selection,
    #: mirroring production MPI libraries: latency-optimal algorithms for
    #: small messages, bandwidth-optimal for large.
    ALLREDUCE_RING_THRESHOLD = 16 * 1024
    ALLTOALL_PAIRWISE_THRESHOLD = 4 * 1024

    def __init__(
        self,
        machine: MachineModel,
        placement: Placement,
        *,
        default_allreduce: AllreduceAlgorithm = AllreduceAlgorithm.RING,
        default_alltoall: AlltoallAlgorithm = AlltoallAlgorithm.PAIRWISE,
        auto_select: bool = False,
    ) -> None:
        self.machine = machine
        self.placement = placement
        self.default_allreduce = default_allreduce
        self.default_alltoall = default_alltoall
        self.auto_select = auto_select

    def select_algorithm(self, kind: str, nbytes: float) -> object:
        """Algorithm for a collective of ``nbytes`` under the policy.

        With ``auto_select`` off (the calibrated default) the fixed
        defaults are returned; with it on, small messages pick the
        latency-optimal algorithm and large ones the bandwidth-optimal,
        as production MPI libraries do.
        """
        if kind == "allreduce":
            if self.auto_select and nbytes < self.ALLREDUCE_RING_THRESHOLD:
                return AllreduceAlgorithm.RECURSIVE_DOUBLING
            return self.default_allreduce
        if kind == "alltoall":
            if self.auto_select and nbytes < self.ALLTOALL_PAIRWISE_THRESHOLD:
                return AlltoallAlgorithm.BRUCK
            return self.default_alltoall
        raise CollectiveError(f"no algorithm selection for kind {kind!r}")

    # ------------------------------------------------------------------
    def effective_link(self, ranks: Sequence[int]) -> EffectiveLink:
        """Effective latency/bandwidth/overhead for a rank group."""
        per_node = self.placement.ranks_per_node_of(ranks)
        if not per_node:
            raise CollectiveError("cannot profile an empty rank group")
        if len(per_node) == 1:
            link = self.machine.intra
            return EffectiveLink(
                latency_s=link.latency_s,
                bandwidth_Bps=link.bandwidth_Bps,
                overhead_s=self.machine.per_call_overhead_s,
            )
        link = self.machine.inter
        latency = link.latency_s
        if self.machine.node_bandwidth is None:
            sharing = max(per_node.values())
            bandwidth = link.bandwidth_Bps / sharing
        else:
            # the group drains at the pace of its most contended /
            # weakest NIC: per-node bandwidth multiplier divided by the
            # members sharing that NIC (identical to the homogeneous
            # formula when every multiplier is 1.0)
            bandwidth = min(
                link.bandwidth_Bps * self.machine.bandwidth_factor_of(node) / count
                for node, count in per_node.items()
            )
        topology = self.machine.topology
        if topology is not None:
            nodes = per_node.keys()
            latency *= topology.latency_factor(nodes)
            bandwidth *= topology.bandwidth_factor(nodes)
        return EffectiveLink(
            latency_s=latency,
            bandwidth_Bps=bandwidth,
            overhead_s=self.machine.per_call_overhead_s,
        )

    def n_nodes_of(self, ranks: Iterable[int]) -> int:
        """Distinct nodes a rank group touches."""
        return len(self.placement.nodes_of(ranks))

    # ------------------------------------------------------------------
    def collective_cost(
        self,
        kind: str,
        ranks: Sequence[int],
        nbytes: float,
        *,
        algorithm: Optional[object] = None,
    ) -> float:
        """Cost in seconds of one collective call.

        ``kind`` is one of ``allreduce``, ``alltoall``, ``allgather``,
        ``bcast``, ``reduce``, ``gather``, ``scatter``, ``barrier``.
        ``nbytes`` follows each formula's per-kind convention (see
        :mod:`repro.vmpi.algorithms`).
        """
        p = len(ranks)
        link = self.effective_link(ranks)
        if kind == "allreduce":
            algo = algorithm if algorithm is not None else self.default_allreduce
            return allreduce_cost(p, nbytes, link, algo)
        if kind == "alltoall":
            algo = algorithm if algorithm is not None else self.default_alltoall
            return alltoall_cost(p, nbytes, link, algo)
        if kind == "allgather":
            return allgather_cost(p, nbytes, link)
        if kind == "bcast":
            return bcast_cost(p, nbytes, link)
        if kind == "reduce":
            return reduce_cost(p, nbytes, link)
        if kind == "gather":
            return gather_cost(p, nbytes, link)
        if kind == "scatter":
            return scatter_cost(p, nbytes, link)
        if kind == "barrier":
            return barrier_cost(p, link)
        raise CollectiveError(f"unknown collective kind {kind!r}")
