"""The virtual world: ranks, simulated clocks, memory, accounting.

A :class:`VirtualWorld` owns everything global to one virtual job:

- ``n_ranks`` virtual ranks placed on a :class:`~repro.machine.model.MachineModel`,
- a simulated clock per rank (seconds),
- a :class:`~repro.machine.memory.MemoryLedger` per rank,
- per-rank, per-category time accounting (the CGYRO-style phase
  timers), and
- a :class:`~repro.vmpi.tracer.TraceLog` of every collective.

Time semantics
--------------
Compute is charged per rank (clocks drift apart, as they would under
load imbalance).  A collective first synchronises its participants —
its start time is the max of their clocks — then advances all of them
by the modeled cost.  Wall time of a run is the max clock over the
ranks involved.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import VmpiError
from repro.machine.memory import MemoryLedger
from repro.machine.model import MachineModel
from repro.machine.placement import BlockPlacement, Placement
from repro.vmpi.cost import CommCostModel
from repro.vmpi.tracer import CollectiveEvent, TraceLog


@dataclass
class PendingCollective:
    """An in-flight nonblocking collective, between post and wait.

    Created by :meth:`VirtualWorld.post_collective`; completed (clocks
    advanced, event recorded) by :meth:`VirtualWorld.complete_collective`.
    The cost is fixed at post time — the network makes progress
    concurrently with whatever compute the participants charge next —
    so at wait time each rank pays only the *uncovered* remainder of
    the cost window ``[t_post, t_post + cost_s]``.
    """

    kind: str
    ranks: "tuple[int, ...]"
    nbytes: int
    comm_label: str
    algorithm: Optional[object]
    category: str
    t_post: float
    cost_s: float
    last_arrival: int
    completed: bool = field(default=False)

    @property
    def t_done(self) -> float:
        """Simulated time at which the collective's data movement ends."""
        return self.t_post + self.cost_s


class VirtualWorld:
    """A virtual MPI job on a modeled machine.

    Parameters
    ----------
    machine:
        The machine to run on.
    n_ranks:
        Ranks in the job; defaults to every slot the machine has.
    placement:
        Rank-to-node placement; defaults to block placement.
    enforce_memory:
        When true, per-rank ledgers enforce
        ``machine.mem_per_rank_bytes`` and allocation past it raises
        :class:`~repro.errors.MemoryLimitExceeded`.
    trace:
        Whether to record collective events.
    auto_algorithms:
        Enable message-size-based collective algorithm selection
        (default off: the calibrated cost model assumes the fixed
        ring/pairwise choices).
    """

    def __init__(
        self,
        machine: MachineModel,
        n_ranks: Optional[int] = None,
        *,
        placement: Optional[Placement] = None,
        enforce_memory: bool = False,
        trace: bool = True,
        auto_algorithms: bool = False,
    ) -> None:
        self.machine = machine
        self.n_ranks = machine.n_ranks if n_ranks is None else int(n_ranks)
        if self.n_ranks < 1:
            raise VmpiError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.n_ranks > machine.n_ranks:
            raise VmpiError(
                f"{self.n_ranks} ranks exceed the {machine.n_ranks} slots of {machine.name}"
            )
        self.placement = placement or BlockPlacement(machine, self.n_ranks)
        if self.placement.n_ranks != self.n_ranks:
            raise VmpiError(
                f"placement covers {self.placement.n_ranks} ranks, world has {self.n_ranks}"
            )
        self.cost_model = CommCostModel(
            machine, self.placement, auto_select=auto_algorithms
        )
        self.clock = np.zeros(self.n_ranks, dtype=np.float64)
        # Per-rank collective-wait accounting (straggler forensics):
        # coll_wait_s[r] is the time r spent blocked at collective
        # entry; imposed_wait_s[r] is the total time *other* ranks
        # spent blocked in collectives where r arrived last.  A
        # straggler has low coll_wait and high imposed_wait.
        self.coll_wait_s = np.zeros(self.n_ranks, dtype=np.float64)
        self.imposed_wait_s = np.zeros(self.n_ranks, dtype=np.float64)
        # Per-rank overlap credit: seconds of nonblocking-collective
        # cost that were hidden under compute charged between post and
        # wait.  Purely diagnostic — never double-counted into the
        # per-category busy time.
        self.overlapped_s = np.zeros(self.n_ranks, dtype=np.float64)
        # Open nonblocking collectives, in post order.  The network
        # engine processes one collective at a time per rank — a later
        # post on a rank with an earlier window still open starts only
        # when that window closes — so concurrent requests pipeline
        # (FIFO) instead of accruing impossibly in parallel.
        self._nb_inflight: List[PendingCollective] = []
        limit = machine.mem_per_rank_bytes if enforce_memory else None
        self.ledgers: List[MemoryLedger] = [
            MemoryLedger(limit, rank=r) for r in range(self.n_ranks)
        ]
        self.trace = TraceLog(enabled=trace)
        self._category_stack: List[str] = []
        self._category_time: Dict[int, Dict[str, float]] = {
            r: {} for r in range(self.n_ranks)
        }
        self._seq = 0
        self.fault_injector: "object | None" = None
        self.checker: "object | None" = None
        self.tracer: "object | None" = None
        self.metrics: "object | None" = None

    def install_telemetry(
        self, *, tracer: "object | None" = None, metrics: "object | None" = None
    ) -> None:
        """Attach a span tracer and/or metrics registry to this world.

        ``tracer`` — normally a :class:`~repro.obs.span.SpanTracer` —
        receives one leaf span per collective (with byte count and the
        last-arriving rank), one per compute charge, and one per
        group-wide sync, all positioned on the simulated timeline;
        ``metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry` —
        accumulates bytes moved per communicator/kind, collective and
        imposed waits, and compute seconds.  Telemetry only *reads*
        the clocks: a world with it installed is bit-identical in
        cost, physics and trace to one without.
        """
        self.tracer = tracer
        self.metrics = metrics

    def span(
        self,
        name: str,
        kind: str = "phase",
        *,
        ranks: "Optional[Iterable[int]]" = None,
        category: Optional[str] = None,
        **attrs: object,
    ):
        """Context manager scoping a tracer span over this world's clock.

        A no-op (null context) when no tracer is installed, so callers
        can instrument unconditionally.  The span's times are the max
        clock over ``ranks`` (default: all) at entry and exit.
        """
        if self.tracer is None:
            return contextlib.nullcontext()
        rks = (
            tuple(int(r) for r in ranks)
            if ranks is not None
            else tuple(range(self.n_ranks))
        )
        cat = category if category is not None else self.current_category
        return self.tracer.span(
            name,
            kind,
            lambda: self.elapsed(rks),
            category=cat,
            ranks=rks,
            **attrs,
        )

    def install_fault_injector(self, injector: "object | None") -> None:
        """Attach (or, with ``None``, detach) a fault injector.

        The injector is consulted at every collective boundary — the
        only points where a virtual job can observe a peer's death,
        just as a real MPI job sees a dead rank as a stalled
        collective.  It must provide
        ``on_collective(kind, ranks, comm_label) -> float`` returning a
        cost multiplier (1.0 when healthy), and may raise
        :class:`~repro.errors.RankFailure` after charging the detection
        timeout through :meth:`sync_charge`.  A world without an
        injector has exactly zero behavioural or cost difference.
        """
        self.fault_injector = injector

    def install_checker(self, checker: "object | None") -> None:
        """Attach (or, with ``None``, detach) a collective checker.

        The checker — normally a
        :class:`~repro.check.checker.CollectiveChecker` — is consulted
        by every :class:`~repro.vmpi.communicator.Communicator`
        collective before data movement (buffer/kind/membership
        conformance, ``alltoall`` move semantics) and receives every
        recorded :class:`~repro.vmpi.tracer.CollectiveEvent` through
        ``observe_event``.  Violations raise
        :class:`~repro.errors.ProtocolError` at the offending call.  A
        world without a checker has exactly zero behavioural or cost
        difference.
        """
        self.checker = checker

    # ------------------------------------------------------------------
    # communicators
    # ------------------------------------------------------------------
    def comm_world(self, label: str = "world"):
        """The communicator containing every rank of the world."""
        from repro.vmpi.communicator import Communicator

        return Communicator(self, tuple(range(self.n_ranks)), label=label)

    # ------------------------------------------------------------------
    # phase/category context
    # ------------------------------------------------------------------
    @property
    def current_category(self) -> str:
        """Innermost active category label ("" if none)."""
        return self._category_stack[-1] if self._category_stack else ""

    @contextlib.contextmanager
    def phase(self, category: str) -> Iterator[None]:
        """Scope within which charges are attributed to ``category``."""
        self._category_stack.append(category)
        try:
            yield
        finally:
            self._category_stack.pop()

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def _add_category_time(self, rank: int, category: str, seconds: float) -> None:
        if not category:
            category = "uncategorized"
        times = self._category_time[rank]
        times[category] = times.get(category, 0.0) + seconds

    def charge_compute(
        self,
        ranks: Union[int, Iterable[int]],
        *,
        seconds: Optional[Union[float, Mapping[int, float]]] = None,
        flops: Optional[Union[float, Mapping[int, float]]] = None,
        category: Optional[str] = None,
    ) -> None:
        """Advance rank clocks by local compute time.

        Exactly one of ``seconds`` / ``flops`` must be given; either may
        be a scalar (same charge for every rank) or a per-rank mapping.
        """
        if (seconds is None) == (flops is None):
            raise VmpiError("provide exactly one of seconds= or flops=")
        rank_list = [ranks] if isinstance(ranks, (int, np.integer)) else list(ranks)
        cat = category if category is not None else self.current_category
        charged: Dict[int, float] = {}
        for r in rank_list:
            if not 0 <= r < self.n_ranks:
                raise VmpiError(f"rank {r} out of range [0, {self.n_ranks})")
            if seconds is not None:
                dt = seconds[r] if isinstance(seconds, Mapping) else float(seconds)
            else:
                fl = flops[r] if isinstance(flops, Mapping) else float(flops)
                if self.machine.node_speed is not None:
                    dt = self.machine.compute_seconds(
                        fl, node=self.placement.node_of(r)
                    )
                else:
                    dt = self.machine.compute_seconds(fl)
            if dt < 0:
                raise VmpiError(f"negative time charge {dt} for rank {r}")
            if self.fault_injector is not None:
                mult = getattr(self.fault_injector, "compute_multiplier", None)
                if mult is not None:
                    dt *= mult(int(r))
            self.clock[r] += dt
            self._add_category_time(r, cat, dt)
            charged[int(r)] = dt
        if charged:
            total = sum(charged.values())
            if self.metrics is not None and total > 0.0:
                self.metrics.counter(
                    "vmpi_compute_rank_seconds_total",
                    category=cat or "uncategorized",
                ).inc(total)
            if self.tracer is not None:
                # the span covers the rank whose clock the charge pushed
                # furthest — the one that can pin a later collective
                lead = max(charged, key=lambda r: (self.clock[r], -r))
                dt_lead = charged[lead]
                if dt_lead > 0.0:
                    self.tracer.record(
                        f"compute[{cat or 'uncategorized'}]",
                        "compute",
                        float(self.clock[lead]) - dt_lead,
                        dt_lead,
                        category=cat,
                        ranks=tuple(charged),
                        last_arrival=lead,
                    )

    def charge_collective(
        self,
        kind: str,
        ranks: Sequence[int],
        nbytes: int,
        *,
        comm_label: str,
        algorithm: Optional[object] = None,
        category: Optional[str] = None,
    ) -> float:
        """Synchronise ``ranks``, charge the modeled collective cost.

        Returns the cost in seconds.  Called by
        :class:`~repro.vmpi.communicator.Communicator`; solver code does
        not normally call this directly.
        """
        factor = 1.0
        if self.fault_injector is not None:
            factor = self.fault_injector.on_collective(kind, ranks, comm_label)
        idx = np.asarray(ranks, dtype=np.intp)
        t_start = float(self.clock[idx].max())
        waits = t_start - self.clock[idx]
        self.coll_wait_s[idx] += waits
        # the total wait is imposed by whoever arrived last
        last_arrival = int(idx[int(np.argmax(self.clock[idx]))])
        self.imposed_wait_s[last_arrival] += float(waits.sum())
        cost = factor * self.cost_model.collective_cost(
            kind, ranks, nbytes, algorithm=algorithm
        )
        self.clock[idx] = t_start + cost
        cat = category if category is not None else self.current_category
        for r in ranks:
            self._add_category_time(int(r), cat, cost)
        self._seq += 1
        event = CollectiveEvent(
            seq=self._seq,
            kind=kind,
            comm_label=comm_label,
            ranks=tuple(int(r) for r in ranks),
            n_nodes=self.cost_model.n_nodes_of(ranks),
            nbytes=int(nbytes),
            algorithm=getattr(algorithm, "value", "") if algorithm else "",
            t_start=t_start,
            cost_s=cost,
            category=cat,
        )
        self.trace.record(event)
        if self.checker is not None:
            self.checker.observe_event(event)
        if self.tracer is not None:
            self.tracer.record(
                f"{kind} [{comm_label}]",
                "collective",
                t_start,
                cost,
                category=cat,
                ranks=event.ranks,
                nbytes=int(nbytes),
                comm=comm_label,
                last_arrival=last_arrival,
            )
        if self.metrics is not None:
            self.metrics.counter(
                "vmpi_collective_bytes_total", kind=kind, comm=comm_label
            ).inc(float(nbytes))
            self.metrics.counter("vmpi_collectives_total", kind=kind).inc()
            self.metrics.counter(
                "vmpi_coll_wait_seconds_total", comm=comm_label
            ).inc(float(waits.sum()))
            self.metrics.counter(
                "vmpi_imposed_wait_seconds_total", rank=last_arrival
            ).inc(float(waits.sum()))
            self.metrics.histogram(
                "vmpi_collective_cost_seconds", kind=kind
            ).observe(cost)
        return cost

    def post_collective(
        self,
        kind: str,
        ranks: Sequence[int],
        nbytes: int,
        *,
        comm_label: str,
        algorithm: Optional[object] = None,
        category: Optional[str] = None,
    ) -> PendingCollective:
        """Post a nonblocking collective; clocks do not advance.

        The cost window opens at ``t_post`` — the moment the last
        participant has posted (max clock over ``ranks``) — and the
        modeled cost is fixed here, including any fault-injector
        multiplier.  If an earlier nonblocking collective sharing a
        rank is still open, the window instead opens when that one's
        closes: in-flight requests pipeline FIFO through the network
        engine rather than progressing in parallel on one NIC.
        Nothing is charged, traced, or observed yet: that happens at
        :meth:`complete_collective`, so compute charged on the same
        ranks in between overlaps with the in-flight cost.
        """
        factor = 1.0
        if self.fault_injector is not None:
            factor = self.fault_injector.on_collective(kind, ranks, comm_label)
        idx = np.asarray(ranks, dtype=np.intp)
        t_post = float(self.clock[idx].max())
        rank_set = set(int(r) for r in ranks)
        for open_pending in self._nb_inflight:
            if rank_set.intersection(open_pending.ranks):
                t_post = max(t_post, open_pending.t_done)
        last_arrival = int(idx[int(np.argmax(self.clock[idx]))])
        cost = factor * self.cost_model.collective_cost(
            kind, ranks, nbytes, algorithm=algorithm
        )
        cat = category if category is not None else self.current_category
        pending = PendingCollective(
            kind=kind,
            ranks=tuple(int(r) for r in ranks),
            nbytes=int(nbytes),
            comm_label=comm_label,
            algorithm=algorithm,
            category=cat,
            t_post=t_post,
            cost_s=cost,
            last_arrival=last_arrival,
        )
        self._nb_inflight.append(pending)
        return pending

    def abandon_inflight(self) -> None:
        """Drop all open nonblocking cost windows.

        Fault-recovery hook, mirroring
        :meth:`~repro.check.CollectiveChecker.abandon_inflight`: after
        a rank failure the stranded windows can never complete, and
        must not serialize the replay's fresh posts behind them.
        """
        self._nb_inflight.clear()

    def complete_collective(self, pending: PendingCollective) -> float:
        """Wait on a posted collective; charge the uncovered remainder.

        Per rank, with ``t_done = t_post + cost``: the time still owed
        is ``wait = max(0, t_done - clock)``; of that, ``min(cost,
        wait)`` is genuine communication (charged to the post-time
        category) and the rest is entry synchronisation (booked to
        ``coll_wait_s``, as for blocking collectives).  The hidden part
        of the cost, ``cost - min(cost, wait)``, is credited to
        ``overlapped_s`` — surfaced via the
        ``vmpi_coll_overlapped_seconds_total`` metric and the span's
        ``overlapped_s`` attribute, never added to category busy time.
        Returns the modeled cost.  Raises :class:`VmpiError` on double
        completion.
        """
        if pending.completed:
            raise VmpiError(
                f"nonblocking {pending.kind} on {pending.comm_label!r} "
                "completed twice"
            )
        try:
            self._nb_inflight.remove(pending)
        except ValueError:
            pass
        if self.fault_injector is not None:
            # dead-rank detection fires at the wait, like a real stalled
            # collective; the healthy-path factor was applied at post
            self.fault_injector.on_collective(
                pending.kind, pending.ranks, pending.comm_label
            )
        pending.completed = True
        idx = np.asarray(pending.ranks, dtype=np.intp)
        t_done = pending.t_done
        cost = pending.cost_s
        waits = np.maximum(0.0, t_done - self.clock[idx])
        comm = np.minimum(cost, waits)
        sync = waits - comm
        overlapped = cost - comm
        self.coll_wait_s[idx] += sync
        self.imposed_wait_s[pending.last_arrival] += float(sync.sum())
        self.overlapped_s[idx] += overlapped
        self.clock[idx] = np.maximum(self.clock[idx], t_done)
        cat = pending.category
        for r, c in zip(pending.ranks, comm):
            self._add_category_time(int(r), cat, float(c))
        self._seq += 1
        event = CollectiveEvent(
            seq=self._seq,
            kind=pending.kind,
            comm_label=pending.comm_label,
            ranks=pending.ranks,
            n_nodes=self.cost_model.n_nodes_of(pending.ranks),
            nbytes=pending.nbytes,
            algorithm=getattr(pending.algorithm, "value", "")
            if pending.algorithm
            else "",
            t_start=pending.t_post,
            cost_s=cost,
            category=cat,
            nonblocking=True,
        )
        self.trace.record(event)
        if self.checker is not None:
            self.checker.observe_event(event)
        if self.tracer is not None:
            self.tracer.record(
                f"{pending.kind} [{pending.comm_label}]",
                "collective",
                pending.t_post,
                cost,
                category=cat,
                ranks=pending.ranks,
                nbytes=pending.nbytes,
                comm=pending.comm_label,
                last_arrival=pending.last_arrival,
                nonblocking=True,
                overlapped_s=float(overlapped.sum()),
            )
        if self.metrics is not None:
            self.metrics.counter(
                "vmpi_collective_bytes_total",
                kind=pending.kind,
                comm=pending.comm_label,
            ).inc(float(pending.nbytes))
            self.metrics.counter(
                "vmpi_collectives_total", kind=pending.kind
            ).inc()
            self.metrics.counter(
                "vmpi_coll_wait_seconds_total", comm=pending.comm_label
            ).inc(float(sync.sum()))
            self.metrics.counter(
                "vmpi_imposed_wait_seconds_total", rank=pending.last_arrival
            ).inc(float(sync.sum()))
            self.metrics.counter(
                "vmpi_coll_overlapped_seconds_total", comm=pending.comm_label
            ).inc(float(overlapped.sum()))
            self.metrics.histogram(
                "vmpi_collective_cost_seconds", kind=pending.kind
            ).observe(cost)
        return cost

    def collective_done(self, pending: PendingCollective) -> bool:
        """Whether the cost window of ``pending`` has fully elapsed on
        every participant's clock (a test that never advances time)."""
        idx = np.asarray(pending.ranks, dtype=np.intp)
        return bool(self.clock[idx].min() >= pending.t_done)

    def sync_charge(
        self,
        ranks: Sequence[int],
        seconds: float,
        *,
        category: Optional[str] = None,
    ) -> float:
        """Synchronise ``ranks`` to their max clock, then charge all of
        them ``seconds`` — the shape of a group-wide stall, such as the
        failure-detection timeout a surviving group burns waiting on a
        dead peer.  Returns the synchronised start time."""
        if seconds < 0:
            raise VmpiError(f"negative time charge {seconds}")
        idx = np.asarray(list(ranks), dtype=np.intp)
        if idx.size == 0:
            return 0.0
        t_start = float(self.clock[idx].max())
        last = int(idx[int(np.argmax(self.clock[idx]))])
        self.clock[idx] = t_start + seconds
        cat = category if category is not None else self.current_category
        for r in idx:
            self._add_category_time(int(r), cat, seconds)
        if self.tracer is not None and seconds > 0.0:
            self.tracer.record(
                f"sync[{cat or 'uncategorized'}]",
                "sync",
                t_start,
                float(seconds),
                category=cat,
                ranks=tuple(int(r) for r in idx),
                last_arrival=last,
            )
        if self.metrics is not None and seconds > 0.0:
            self.metrics.counter(
                "vmpi_sync_seconds_total", category=cat or "uncategorized"
            ).inc(float(seconds) * idx.size)
        return t_start

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def elapsed(self, ranks: Optional[Iterable[int]] = None) -> float:
        """Simulated wall time: max clock over ``ranks`` (default all)."""
        if ranks is None:
            return float(self.clock.max())
        idx = np.asarray(list(ranks), dtype=np.intp)
        return float(self.clock[idx].max()) if idx.size else 0.0

    def category_time(
        self, category: str, ranks: Optional[Iterable[int]] = None, *, reduce: str = "max"
    ) -> float:
        """Accumulated time under ``category`` over ``ranks``.

        ``reduce`` selects the cross-rank aggregation: ``max``
        (wall-like, default), ``mean``, or ``sum``.
        """
        rank_list = list(range(self.n_ranks)) if ranks is None else list(ranks)
        vals = [self._category_time[r].get(category, 0.0) for r in rank_list]
        if not vals:
            return 0.0
        if reduce == "max":
            return max(vals)
        if reduce == "mean":
            return sum(vals) / len(vals)
        if reduce == "sum":
            return sum(vals)
        raise VmpiError(f"unknown reduce {reduce!r}")

    def categories(self) -> "tuple[str, ...]":
        """All category labels charged so far, sorted."""
        names = set()
        for times in self._category_time.values():
            names.update(times)
        return tuple(sorted(names))

    def category_breakdown(
        self, ranks: Optional[Iterable[int]] = None, *, reduce: str = "max"
    ) -> Dict[str, float]:
        """Mapping category -> aggregated time over ``ranks``."""
        return {
            c: self.category_time(c, ranks, reduce=reduce) for c in self.categories()
        }

    def reset_clocks(self) -> None:
        """Zero all clocks and category accumulators (trace retained)."""
        self.clock[:] = 0.0
        self.coll_wait_s[:] = 0.0
        self.imposed_wait_s[:] = 0.0
        self.overlapped_s[:] = 0.0
        self._nb_inflight.clear()
        for times in self._category_time.values():
            times.clear()
