"""The virtual world: ranks, simulated clocks, memory, accounting.

A :class:`VirtualWorld` owns everything global to one virtual job:

- ``n_ranks`` virtual ranks placed on a :class:`~repro.machine.model.MachineModel`,
- a simulated clock per rank (seconds),
- a :class:`~repro.machine.memory.MemoryLedger` per rank,
- per-rank, per-category time accounting (the CGYRO-style phase
  timers), and
- a :class:`~repro.vmpi.tracer.TraceLog` of every collective.

Time semantics
--------------
Compute is charged per rank (clocks drift apart, as they would under
load imbalance).  A collective first synchronises its participants —
its start time is the max of their clocks — then advances all of them
by the modeled cost.  Wall time of a run is the max clock over the
ranks involved.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import VmpiError
from repro.machine.memory import MemoryLedger
from repro.machine.model import MachineModel
from repro.machine.placement import BlockPlacement, Placement
from repro.vmpi.cost import CommCostModel
from repro.vmpi.tracer import CollectiveEvent, TraceLog


class VirtualWorld:
    """A virtual MPI job on a modeled machine.

    Parameters
    ----------
    machine:
        The machine to run on.
    n_ranks:
        Ranks in the job; defaults to every slot the machine has.
    placement:
        Rank-to-node placement; defaults to block placement.
    enforce_memory:
        When true, per-rank ledgers enforce
        ``machine.mem_per_rank_bytes`` and allocation past it raises
        :class:`~repro.errors.MemoryLimitExceeded`.
    trace:
        Whether to record collective events.
    auto_algorithms:
        Enable message-size-based collective algorithm selection
        (default off: the calibrated cost model assumes the fixed
        ring/pairwise choices).
    """

    def __init__(
        self,
        machine: MachineModel,
        n_ranks: Optional[int] = None,
        *,
        placement: Optional[Placement] = None,
        enforce_memory: bool = False,
        trace: bool = True,
        auto_algorithms: bool = False,
    ) -> None:
        self.machine = machine
        self.n_ranks = machine.n_ranks if n_ranks is None else int(n_ranks)
        if self.n_ranks < 1:
            raise VmpiError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.n_ranks > machine.n_ranks:
            raise VmpiError(
                f"{self.n_ranks} ranks exceed the {machine.n_ranks} slots of {machine.name}"
            )
        self.placement = placement or BlockPlacement(machine, self.n_ranks)
        if self.placement.n_ranks != self.n_ranks:
            raise VmpiError(
                f"placement covers {self.placement.n_ranks} ranks, world has {self.n_ranks}"
            )
        self.cost_model = CommCostModel(
            machine, self.placement, auto_select=auto_algorithms
        )
        self.clock = np.zeros(self.n_ranks, dtype=np.float64)
        # Per-rank collective-wait accounting (straggler forensics):
        # coll_wait_s[r] is the time r spent blocked at collective
        # entry; imposed_wait_s[r] is the total time *other* ranks
        # spent blocked in collectives where r arrived last.  A
        # straggler has low coll_wait and high imposed_wait.
        self.coll_wait_s = np.zeros(self.n_ranks, dtype=np.float64)
        self.imposed_wait_s = np.zeros(self.n_ranks, dtype=np.float64)
        limit = machine.mem_per_rank_bytes if enforce_memory else None
        self.ledgers: List[MemoryLedger] = [
            MemoryLedger(limit, rank=r) for r in range(self.n_ranks)
        ]
        self.trace = TraceLog(enabled=trace)
        self._category_stack: List[str] = []
        self._category_time: Dict[int, Dict[str, float]] = {
            r: {} for r in range(self.n_ranks)
        }
        self._seq = 0
        self.fault_injector: "object | None" = None
        self.checker: "object | None" = None
        self.tracer: "object | None" = None
        self.metrics: "object | None" = None

    def install_telemetry(
        self, *, tracer: "object | None" = None, metrics: "object | None" = None
    ) -> None:
        """Attach a span tracer and/or metrics registry to this world.

        ``tracer`` — normally a :class:`~repro.obs.span.SpanTracer` —
        receives one leaf span per collective (with byte count and the
        last-arriving rank), one per compute charge, and one per
        group-wide sync, all positioned on the simulated timeline;
        ``metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry` —
        accumulates bytes moved per communicator/kind, collective and
        imposed waits, and compute seconds.  Telemetry only *reads*
        the clocks: a world with it installed is bit-identical in
        cost, physics and trace to one without.
        """
        self.tracer = tracer
        self.metrics = metrics

    def span(
        self,
        name: str,
        kind: str = "phase",
        *,
        ranks: "Optional[Iterable[int]]" = None,
        category: Optional[str] = None,
        **attrs: object,
    ):
        """Context manager scoping a tracer span over this world's clock.

        A no-op (null context) when no tracer is installed, so callers
        can instrument unconditionally.  The span's times are the max
        clock over ``ranks`` (default: all) at entry and exit.
        """
        if self.tracer is None:
            return contextlib.nullcontext()
        rks = (
            tuple(int(r) for r in ranks)
            if ranks is not None
            else tuple(range(self.n_ranks))
        )
        cat = category if category is not None else self.current_category
        return self.tracer.span(
            name,
            kind,
            lambda: self.elapsed(rks),
            category=cat,
            ranks=rks,
            **attrs,
        )

    def install_fault_injector(self, injector: "object | None") -> None:
        """Attach (or, with ``None``, detach) a fault injector.

        The injector is consulted at every collective boundary — the
        only points where a virtual job can observe a peer's death,
        just as a real MPI job sees a dead rank as a stalled
        collective.  It must provide
        ``on_collective(kind, ranks, comm_label) -> float`` returning a
        cost multiplier (1.0 when healthy), and may raise
        :class:`~repro.errors.RankFailure` after charging the detection
        timeout through :meth:`sync_charge`.  A world without an
        injector has exactly zero behavioural or cost difference.
        """
        self.fault_injector = injector

    def install_checker(self, checker: "object | None") -> None:
        """Attach (or, with ``None``, detach) a collective checker.

        The checker — normally a
        :class:`~repro.check.checker.CollectiveChecker` — is consulted
        by every :class:`~repro.vmpi.communicator.Communicator`
        collective before data movement (buffer/kind/membership
        conformance, ``alltoall`` move semantics) and receives every
        recorded :class:`~repro.vmpi.tracer.CollectiveEvent` through
        ``observe_event``.  Violations raise
        :class:`~repro.errors.ProtocolError` at the offending call.  A
        world without a checker has exactly zero behavioural or cost
        difference.
        """
        self.checker = checker

    # ------------------------------------------------------------------
    # communicators
    # ------------------------------------------------------------------
    def comm_world(self, label: str = "world"):
        """The communicator containing every rank of the world."""
        from repro.vmpi.communicator import Communicator

        return Communicator(self, tuple(range(self.n_ranks)), label=label)

    # ------------------------------------------------------------------
    # phase/category context
    # ------------------------------------------------------------------
    @property
    def current_category(self) -> str:
        """Innermost active category label ("" if none)."""
        return self._category_stack[-1] if self._category_stack else ""

    @contextlib.contextmanager
    def phase(self, category: str) -> Iterator[None]:
        """Scope within which charges are attributed to ``category``."""
        self._category_stack.append(category)
        try:
            yield
        finally:
            self._category_stack.pop()

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def _add_category_time(self, rank: int, category: str, seconds: float) -> None:
        if not category:
            category = "uncategorized"
        times = self._category_time[rank]
        times[category] = times.get(category, 0.0) + seconds

    def charge_compute(
        self,
        ranks: Union[int, Iterable[int]],
        *,
        seconds: Optional[Union[float, Mapping[int, float]]] = None,
        flops: Optional[Union[float, Mapping[int, float]]] = None,
        category: Optional[str] = None,
    ) -> None:
        """Advance rank clocks by local compute time.

        Exactly one of ``seconds`` / ``flops`` must be given; either may
        be a scalar (same charge for every rank) or a per-rank mapping.
        """
        if (seconds is None) == (flops is None):
            raise VmpiError("provide exactly one of seconds= or flops=")
        rank_list = [ranks] if isinstance(ranks, (int, np.integer)) else list(ranks)
        cat = category if category is not None else self.current_category
        charged: Dict[int, float] = {}
        for r in rank_list:
            if not 0 <= r < self.n_ranks:
                raise VmpiError(f"rank {r} out of range [0, {self.n_ranks})")
            if seconds is not None:
                dt = seconds[r] if isinstance(seconds, Mapping) else float(seconds)
            else:
                fl = flops[r] if isinstance(flops, Mapping) else float(flops)
                if self.machine.node_speed is not None:
                    dt = self.machine.compute_seconds(
                        fl, node=self.placement.node_of(r)
                    )
                else:
                    dt = self.machine.compute_seconds(fl)
            if dt < 0:
                raise VmpiError(f"negative time charge {dt} for rank {r}")
            if self.fault_injector is not None:
                mult = getattr(self.fault_injector, "compute_multiplier", None)
                if mult is not None:
                    dt *= mult(int(r))
            self.clock[r] += dt
            self._add_category_time(r, cat, dt)
            charged[int(r)] = dt
        if charged:
            total = sum(charged.values())
            if self.metrics is not None and total > 0.0:
                self.metrics.counter(
                    "vmpi_compute_rank_seconds_total",
                    category=cat or "uncategorized",
                ).inc(total)
            if self.tracer is not None:
                # the span covers the rank whose clock the charge pushed
                # furthest — the one that can pin a later collective
                lead = max(charged, key=lambda r: (self.clock[r], -r))
                dt_lead = charged[lead]
                if dt_lead > 0.0:
                    self.tracer.record(
                        f"compute[{cat or 'uncategorized'}]",
                        "compute",
                        float(self.clock[lead]) - dt_lead,
                        dt_lead,
                        category=cat,
                        ranks=tuple(charged),
                        last_arrival=lead,
                    )

    def charge_collective(
        self,
        kind: str,
        ranks: Sequence[int],
        nbytes: int,
        *,
        comm_label: str,
        algorithm: Optional[object] = None,
        category: Optional[str] = None,
    ) -> float:
        """Synchronise ``ranks``, charge the modeled collective cost.

        Returns the cost in seconds.  Called by
        :class:`~repro.vmpi.communicator.Communicator`; solver code does
        not normally call this directly.
        """
        factor = 1.0
        if self.fault_injector is not None:
            factor = self.fault_injector.on_collective(kind, ranks, comm_label)
        idx = np.asarray(ranks, dtype=np.intp)
        t_start = float(self.clock[idx].max())
        waits = t_start - self.clock[idx]
        self.coll_wait_s[idx] += waits
        # the total wait is imposed by whoever arrived last
        last_arrival = int(idx[int(np.argmax(self.clock[idx]))])
        self.imposed_wait_s[last_arrival] += float(waits.sum())
        cost = factor * self.cost_model.collective_cost(
            kind, ranks, nbytes, algorithm=algorithm
        )
        self.clock[idx] = t_start + cost
        cat = category if category is not None else self.current_category
        for r in ranks:
            self._add_category_time(int(r), cat, cost)
        self._seq += 1
        event = CollectiveEvent(
            seq=self._seq,
            kind=kind,
            comm_label=comm_label,
            ranks=tuple(int(r) for r in ranks),
            n_nodes=self.cost_model.n_nodes_of(ranks),
            nbytes=int(nbytes),
            algorithm=getattr(algorithm, "value", "") if algorithm else "",
            t_start=t_start,
            cost_s=cost,
            category=cat,
        )
        self.trace.record(event)
        if self.checker is not None:
            self.checker.observe_event(event)
        if self.tracer is not None:
            self.tracer.record(
                f"{kind} [{comm_label}]",
                "collective",
                t_start,
                cost,
                category=cat,
                ranks=event.ranks,
                nbytes=int(nbytes),
                comm=comm_label,
                last_arrival=last_arrival,
            )
        if self.metrics is not None:
            self.metrics.counter(
                "vmpi_collective_bytes_total", kind=kind, comm=comm_label
            ).inc(float(nbytes))
            self.metrics.counter("vmpi_collectives_total", kind=kind).inc()
            self.metrics.counter(
                "vmpi_coll_wait_seconds_total", comm=comm_label
            ).inc(float(waits.sum()))
            self.metrics.counter(
                "vmpi_imposed_wait_seconds_total", rank=last_arrival
            ).inc(float(waits.sum()))
            self.metrics.histogram(
                "vmpi_collective_cost_seconds", kind=kind
            ).observe(cost)
        return cost

    def sync_charge(
        self,
        ranks: Sequence[int],
        seconds: float,
        *,
        category: Optional[str] = None,
    ) -> float:
        """Synchronise ``ranks`` to their max clock, then charge all of
        them ``seconds`` — the shape of a group-wide stall, such as the
        failure-detection timeout a surviving group burns waiting on a
        dead peer.  Returns the synchronised start time."""
        if seconds < 0:
            raise VmpiError(f"negative time charge {seconds}")
        idx = np.asarray(list(ranks), dtype=np.intp)
        if idx.size == 0:
            return 0.0
        t_start = float(self.clock[idx].max())
        last = int(idx[int(np.argmax(self.clock[idx]))])
        self.clock[idx] = t_start + seconds
        cat = category if category is not None else self.current_category
        for r in idx:
            self._add_category_time(int(r), cat, seconds)
        if self.tracer is not None and seconds > 0.0:
            self.tracer.record(
                f"sync[{cat or 'uncategorized'}]",
                "sync",
                t_start,
                float(seconds),
                category=cat,
                ranks=tuple(int(r) for r in idx),
                last_arrival=last,
            )
        if self.metrics is not None and seconds > 0.0:
            self.metrics.counter(
                "vmpi_sync_seconds_total", category=cat or "uncategorized"
            ).inc(float(seconds) * idx.size)
        return t_start

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def elapsed(self, ranks: Optional[Iterable[int]] = None) -> float:
        """Simulated wall time: max clock over ``ranks`` (default all)."""
        if ranks is None:
            return float(self.clock.max())
        idx = np.asarray(list(ranks), dtype=np.intp)
        return float(self.clock[idx].max()) if idx.size else 0.0

    def category_time(
        self, category: str, ranks: Optional[Iterable[int]] = None, *, reduce: str = "max"
    ) -> float:
        """Accumulated time under ``category`` over ``ranks``.

        ``reduce`` selects the cross-rank aggregation: ``max``
        (wall-like, default), ``mean``, or ``sum``.
        """
        rank_list = list(range(self.n_ranks)) if ranks is None else list(ranks)
        vals = [self._category_time[r].get(category, 0.0) for r in rank_list]
        if not vals:
            return 0.0
        if reduce == "max":
            return max(vals)
        if reduce == "mean":
            return sum(vals) / len(vals)
        if reduce == "sum":
            return sum(vals)
        raise VmpiError(f"unknown reduce {reduce!r}")

    def categories(self) -> "tuple[str, ...]":
        """All category labels charged so far, sorted."""
        names = set()
        for times in self._category_time.values():
            names.update(times)
        return tuple(sorted(names))

    def category_breakdown(
        self, ranks: Optional[Iterable[int]] = None, *, reduce: str = "max"
    ) -> Dict[str, float]:
        """Mapping category -> aggregated time over ``ranks``."""
        return {
            c: self.category_time(c, ranks, reduce=reduce) for c in self.categories()
        }

    def reset_clocks(self) -> None:
        """Zero all clocks and category accumulators (trace retained)."""
        self.clock[:] = 0.0
        self.coll_wait_s[:] = 0.0
        self.imposed_wait_s[:] = 0.0
        for times in self._category_time.values():
            times.clear()
