"""Trace export: Chrome trace-event JSON and flat CSV.

``export_chrome_trace`` writes a file loadable in ``chrome://tracing``
/ Perfetto: one complete ("X") event per (collective, participating
rank), with the simulated clock as the timebase — a visual timeline of
how the str/nl/coll phases interleave across ranks, and of how XGYRO
members overlap.

``export_csv`` writes one row per collective for spreadsheet-grade
analysis.

``export_trace_json`` / ``load_trace_json`` round-trip the raw event
list losslessly — the interchange format ``repro check-trace`` lints
and replays.
"""

from __future__ import annotations

import csv
import json
import re
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.vmpi.tracer import CollectiveEvent, TraceLog

#: Ensemble-member communicator labels: ``xgyro.m{m}.…`` (member comms)
#: and ``baseline.m{m}.…``; the ensemble-wide coll comms
#: (``xgyro.coll.…``) carry no member and stay on the shared lane.
_MEMBER_LABEL = re.compile(r"^(?:xgyro|baseline)\.m(\d+)\.")


def _member_of_label(comm_label: str) -> Optional[int]:
    """Ensemble member index encoded in a communicator label, if any."""
    m = _MEMBER_LABEL.match(comm_label)
    return int(m.group(1)) if m else None


def export_chrome_trace(
    trace: TraceLog,
    path: Union[str, Path],
    *,
    ranks: Optional[Iterable[int]] = None,
    max_events: Optional[int] = None,
    collapse_members: bool = False,
) -> int:
    """Write the trace as Chrome trace-event JSON; returns event count.

    ``pid`` is the owning ensemble member (parsed from the
    ``xgyro.m{m}.…`` communicator label, +1; pid 0 is the shared lane
    for ensemble-wide and plain-CGYRO collectives), named through
    Perfetto process-name metadata events, so members render as
    parallel process lanes.  ``collapse_members=True`` restores the
    old single-process layout (everything on pid 0).

    ``ranks`` restricts the timeline to the given world ranks (a trace
    of 256 ranks x thousands of collectives is heavy); ``max_events``
    caps the number of *collectives* exported.
    """
    rank_filter = set(ranks) if ranks is not None else None
    events = []
    pids = {0: "ensemble"}
    n_collectives = 0
    for ev in trace:
        if max_events is not None and n_collectives >= max_events:
            break
        member = None if collapse_members else _member_of_label(ev.comm_label)
        pid = 0 if member is None else member + 1
        emitted = False
        for r in ev.ranks:
            if rank_filter is not None and r not in rank_filter:
                continue
            if pid not in pids:
                pids[pid] = f"member {member}"
            events.append(
                {
                    "name": f"{ev.kind} [{ev.comm_label}]",
                    "cat": ev.category or "uncategorized",
                    "ph": "X",
                    "ts": ev.t_start * 1e6,
                    "dur": ev.cost_s * 1e6,
                    "pid": pid,
                    "tid": r,
                    "args": {
                        "bytes": ev.nbytes,
                        "participants": ev.size,
                        "nodes": ev.n_nodes,
                        "algorithm": ev.algorithm,
                    },
                }
            )
            emitted = True
        if emitted:
            n_collectives += 1
    meta = [
        {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
        for pid, name in sorted(pids.items())
    ]
    Path(path).write_text(
        json.dumps({"traceEvents": meta + events, "displayTimeUnit": "ms"})
    )
    return n_collectives


def export_trace_json(trace: TraceLog, path: Union[str, Path]) -> int:
    """Write the raw event list as JSON; returns the event count.

    Lossless: ``load_trace_json`` reconstructs the exact
    :class:`~repro.vmpi.tracer.CollectiveEvent` sequence.
    """
    events = [ev.to_dict() for ev in trace]
    Path(path).write_text(
        json.dumps({"format": "repro-trace-v1", "events": events}, indent=1)
        + "\n"
    )
    return len(events)


def load_trace_json(path: Union[str, Path]) -> List[CollectiveEvent]:
    """Load an event list saved by :func:`export_trace_json`."""
    doc = json.loads(Path(path).read_text())
    raw = doc["events"] if isinstance(doc, dict) else doc
    return [CollectiveEvent.from_dict(d) for d in raw]


def export_csv(trace: TraceLog, path: Union[str, Path]) -> int:
    """Write one CSV row per collective; returns the row count."""
    rows = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "seq", "kind", "comm", "category", "participants",
                "nodes", "bytes", "algorithm", "t_start_s", "cost_s",
            ]
        )
        for ev in trace:
            writer.writerow(
                [
                    ev.seq, ev.kind, ev.comm_label, ev.category, ev.size,
                    ev.n_nodes, ev.nbytes, ev.algorithm,
                    f"{ev.t_start:.9f}", f"{ev.cost_s:.9f}",
                ]
            )
            rows += 1
    return rows
