"""Collective algorithm cost formulas.

Classic alpha-beta (Hockney) cost expressions for the collective
algorithms production MPI libraries select between.  Each formula takes
the participant count ``p``, a byte count whose meaning is
collective-specific (documented per function), and an
:class:`EffectiveLink` — the latency/bandwidth/overhead triple the cost
model derived from the group's node placement.

The paper's central communication claim — "the overall cost of
AllReduce is proportional with the number of participating processes" —
corresponds to the ring algorithm (the bandwidth-optimal choice real
libraries use for the message sizes at hand), whose time carries a
``(p - 1)`` factor in both the latency and bandwidth terms.  Recursive
doubling (logarithmic) is provided for the ablation bench that contrasts
the two regimes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import CollectiveError


@dataclass(frozen=True)
class EffectiveLink:
    """Link parameters a group effectively sees.

    ``overhead_s`` is charged once per collective call and models the
    host-side staging cost of GPU-resident codes (constant in ``p``).
    """

    latency_s: float
    bandwidth_Bps: float
    overhead_s: float = 0.0


class AllreduceAlgorithm(enum.Enum):
    """AllReduce algorithm choices."""

    RING = "ring"
    RECURSIVE_DOUBLING = "recursive-doubling"
    REDUCE_BCAST = "reduce-bcast"


class AlltoallAlgorithm(enum.Enum):
    """AllToAll algorithm choices."""

    PAIRWISE = "pairwise"
    BRUCK = "bruck"


def _check(p: int, nbytes: float) -> None:
    if p < 1:
        raise CollectiveError(f"participant count must be >= 1, got {p}")
    if nbytes < 0:
        raise CollectiveError(f"byte count must be >= 0, got {nbytes}")


def _log2ceil(p: int) -> int:
    return max(0, math.ceil(math.log2(p))) if p > 1 else 0


def allreduce_cost(
    p: int,
    nbytes: float,
    link: EffectiveLink,
    algorithm: AllreduceAlgorithm = AllreduceAlgorithm.RING,
) -> float:
    """Time for an AllReduce of an ``nbytes`` message over ``p`` ranks.

    ``nbytes`` is the per-rank message size (every rank contributes and
    receives a buffer of this size).
    """
    _check(p, nbytes)
    if p == 1:
        return link.overhead_s
    a, b, o = link.latency_s, nbytes / link.bandwidth_Bps, link.overhead_s
    if algorithm is AllreduceAlgorithm.RING:
        # reduce-scatter + allgather, each (p-1) steps of nbytes/p.
        return o + 2.0 * (p - 1) * a + 2.0 * b * (p - 1) / p
    if algorithm is AllreduceAlgorithm.RECURSIVE_DOUBLING:
        steps = _log2ceil(p)
        return o + steps * (a + b)
    if algorithm is AllreduceAlgorithm.REDUCE_BCAST:
        steps = _log2ceil(p)
        return o + 2.0 * steps * (a + b)
    raise AssertionError(f"unhandled algorithm {algorithm}")


def alltoall_cost(
    p: int,
    nbytes: float,
    link: EffectiveLink,
    algorithm: AlltoallAlgorithm = AlltoallAlgorithm.PAIRWISE,
) -> float:
    """Time for an AllToAll where each rank sends ``nbytes`` in total.

    ``nbytes`` is the per-rank aggregate send volume (summed over all
    destinations); for uneven (vector) exchanges callers pass the
    maximum over ranks, which is what bounds completion.
    """
    _check(p, nbytes)
    if p == 1:
        return link.overhead_s
    a, o = link.latency_s, link.overhead_s
    if algorithm is AlltoallAlgorithm.PAIRWISE:
        # p-1 exchange rounds, each moving one destination's share.
        moved = nbytes * (p - 1) / p
        return o + (p - 1) * a + moved / link.bandwidth_Bps
    if algorithm is AlltoallAlgorithm.BRUCK:
        steps = _log2ceil(p)
        return o + steps * (a + (nbytes / 2.0) / link.bandwidth_Bps)
    raise AssertionError(f"unhandled algorithm {algorithm}")


def allgather_cost(p: int, nbytes: float, link: EffectiveLink) -> float:
    """Ring allgather; ``nbytes`` is each rank's contribution."""
    _check(p, nbytes)
    if p == 1:
        return link.overhead_s
    return (
        link.overhead_s
        + (p - 1) * link.latency_s
        + (p - 1) * nbytes / link.bandwidth_Bps
    )


def bcast_cost(p: int, nbytes: float, link: EffectiveLink) -> float:
    """Binomial-tree broadcast of an ``nbytes`` message."""
    _check(p, nbytes)
    if p == 1:
        return link.overhead_s
    steps = _log2ceil(p)
    return link.overhead_s + steps * (link.latency_s + nbytes / link.bandwidth_Bps)


def reduce_cost(p: int, nbytes: float, link: EffectiveLink) -> float:
    """Binomial-tree reduction to a root of an ``nbytes`` message."""
    return bcast_cost(p, nbytes, link)


def gather_cost(p: int, nbytes: float, link: EffectiveLink) -> float:
    """Gather to root; ``nbytes`` is the total data landing at root."""
    _check(p, nbytes)
    if p == 1:
        return link.overhead_s
    steps = _log2ceil(p)
    return (
        link.overhead_s
        + steps * link.latency_s
        + nbytes * (p - 1) / p / link.bandwidth_Bps
    )


def scatter_cost(p: int, nbytes: float, link: EffectiveLink) -> float:
    """Scatter from root; ``nbytes`` is the total data leaving root."""
    return gather_cost(p, nbytes, link)


def barrier_cost(p: int, link: EffectiveLink) -> float:
    """Dissemination barrier (no payload)."""
    _check(p, 0)
    if p == 1:
        return link.overhead_s
    return link.overhead_s + _log2ceil(p) * link.latency_s
