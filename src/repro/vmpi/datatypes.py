"""Reduction operators for virtual-MPI collectives."""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.errors import CollectiveError


class ReduceOp(enum.Enum):
    """Elementwise reduction operator, mirroring ``MPI.SUM`` and kin."""

    SUM = "sum"
    PROD = "prod"
    MAX = "max"
    MIN = "min"

    def combine(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Reduce a non-empty sequence of equal-shape arrays.

        The reduction is performed in comm-rank order with a stable
        pairwise left fold, so results are deterministic.
        """
        if len(arrays) == 0:
            raise CollectiveError("cannot reduce an empty sequence")
        stacked = np.stack([np.asarray(a) for a in arrays], axis=0)
        if self is ReduceOp.SUM:
            return stacked.sum(axis=0)
        if self is ReduceOp.PROD:
            return stacked.prod(axis=0)
        if self is ReduceOp.MAX:
            return stacked.max(axis=0)
        if self is ReduceOp.MIN:
            return stacked.min(axis=0)
        raise AssertionError(f"unhandled ReduceOp {self}")
