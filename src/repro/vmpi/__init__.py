"""Virtual MPI substrate.

A deterministic, in-process replacement for MPI used by the whole
reproduction (DESIGN.md section 2).  Execution is *lockstep SPMD*: the
per-rank state of a distributed buffer is held as a mapping
``{world_rank: numpy block}``, and a collective is an ordinary function
call that

1. moves the real bytes between the per-rank blocks (functionally
   correct AllReduce / AllToAll(v) / AllGather / Bcast / ...), and
2. advances every participant's *simulated clock* by the modeled cost
   of that collective on the configured machine (entry synchronisation
   = max of participant clocks, as for a real blocking collective).

This preserves exactly what the paper's argument depends on — which
processes participate in each collective, how many bytes move, and
where the participants sit on the machine — while remaining runnable
and unit-testable on a workstation.

Public surface:

- :class:`VirtualWorld` — ranks, clocks, memory ledgers, trace log.
- :class:`Communicator` — ordered rank group with collective methods
  and MPI-style ``split``.
- :class:`Request` / :func:`waitall` — handles for nonblocking
  collectives (``iallreduce`` / ``ialltoall``); a posted collective's
  cost accrues concurrently with subsequent compute charges on the
  same ranks, and ``wait()`` pays only the uncovered remainder.
- :class:`ReduceOp`, algorithm enums, and the cost model.
"""

from repro.vmpi.algorithms import (
    AllreduceAlgorithm,
    AlltoallAlgorithm,
    EffectiveLink,
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    bcast_cost,
    gather_cost,
    reduce_cost,
    scatter_cost,
)
from repro.vmpi.communicator import Communicator, Request, waitall
from repro.vmpi.cost import CommCostModel
from repro.vmpi.datatypes import ReduceOp
from repro.vmpi.tracer import CollectiveEvent, TraceLog
from repro.vmpi.world import PendingCollective, VirtualWorld

__all__ = [
    "VirtualWorld",
    "Communicator",
    "Request",
    "PendingCollective",
    "waitall",
    "ReduceOp",
    "AllreduceAlgorithm",
    "AlltoallAlgorithm",
    "EffectiveLink",
    "CommCostModel",
    "TraceLog",
    "CollectiveEvent",
    "allreduce_cost",
    "alltoall_cost",
    "allgather_cost",
    "bcast_cost",
    "reduce_cost",
    "gather_cost",
    "scatter_cost",
    "barrier_cost",
]
