"""Collective-event tracing.

Every collective executed by the virtual world is recorded as a
:class:`CollectiveEvent`.  Traces are how the structural figures of the
paper are reproduced: Figure 1 (which communicator carries the str
AllReduce and the str<->coll AllToAll in CGYRO) and Figure 3 (how XGYRO
separates the per-member str communicator from the ensemble-wide coll
communicator) are *verified from the trace*, not just drawn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class CollectiveEvent:
    """One executed collective.

    Attributes
    ----------
    seq:
        Monotone sequence number within the trace.
    kind:
        Collective kind (``allreduce``, ``alltoall``, ...).
    comm_label:
        Label of the communicator it ran on.
    ranks:
        World ranks that participated, in communicator order.
    n_nodes:
        Distinct nodes the group spanned.
    nbytes:
        Byte count per the kind's convention.
    algorithm:
        Algorithm name used for costing (or "" when fixed).
    t_start:
        Simulated time at which all participants had arrived.
    cost_s:
        Modeled duration.
    category:
        Phase/category label active when the call was made ("" if none).
    nonblocking:
        True when the collective was posted nonblocking (recorded at
        its wait; ``t_start`` is then the post time and ``cost_s`` the
        full modeled cost, part of which may have overlapped compute).
    """

    seq: int
    kind: str
    comm_label: str
    ranks: Tuple[int, ...]
    n_nodes: int
    nbytes: int
    algorithm: str
    t_start: float
    cost_s: float
    category: str
    nonblocking: bool = False

    @property
    def size(self) -> int:
        """Number of participants."""
        return len(self.ranks)

    def to_dict(self) -> "Dict[str, object]":
        """JSON-ready mapping (``ranks`` as a list)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "comm_label": self.comm_label,
            "ranks": list(self.ranks),
            "n_nodes": self.n_nodes,
            "nbytes": self.nbytes,
            "algorithm": self.algorithm,
            "t_start": self.t_start,
            "cost_s": self.cost_s,
            "category": self.category,
            "nonblocking": self.nonblocking,
        }

    @staticmethod
    def from_dict(d: "Dict[str, object]") -> "CollectiveEvent":
        """Inverse of :meth:`to_dict`."""
        return CollectiveEvent(
            seq=int(d["seq"]),
            kind=str(d["kind"]),
            comm_label=str(d["comm_label"]),
            ranks=tuple(int(r) for r in d["ranks"]),  # type: ignore[union-attr]
            n_nodes=int(d["n_nodes"]),
            nbytes=int(d["nbytes"]),
            algorithm=str(d.get("algorithm", "")),
            t_start=float(d.get("t_start", 0.0)),
            cost_s=float(d.get("cost_s", 0.0)),
            category=str(d.get("category", "")),
            nonblocking=bool(d.get("nonblocking", False)),
        )


class TraceLog:
    """Append-only log of collective events with query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[CollectiveEvent] = []

    def record(self, event: CollectiveEvent) -> None:
        """Append ``event`` if tracing is enabled."""
        if self.enabled:
            self._events.append(event)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    @property
    def events(self) -> Tuple[CollectiveEvent, ...]:
        """Immutable view of all events."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[CollectiveEvent]:
        return iter(self._events)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def filter(
        self,
        *,
        kind: Optional[str] = None,
        category: Optional[str] = None,
        comm_label: Optional[str] = None,
        involving_rank: Optional[int] = None,
    ) -> Tuple[CollectiveEvent, ...]:
        """Events matching every provided criterion."""
        out = []
        for ev in self._events:
            if kind is not None and ev.kind != kind:
                continue
            if category is not None and ev.category != category:
                continue
            if comm_label is not None and ev.comm_label != comm_label:
                continue
            if involving_rank is not None and involving_rank not in ev.ranks:
                continue
            out.append(ev)
        return tuple(out)

    def comm_labels(self) -> Tuple[str, ...]:
        """Distinct communicator labels, in first-seen order."""
        seen: Dict[str, None] = {}
        for ev in self._events:
            seen.setdefault(ev.comm_label, None)
        return tuple(seen)

    def total_time(self, **criteria: Optional[str]) -> float:
        """Sum of modeled durations over matching events."""
        return sum(ev.cost_s for ev in self.filter(**criteria))

    def total_bytes(self, **criteria: Optional[str]) -> int:
        """Sum of byte counts over matching events."""
        return sum(ev.nbytes for ev in self.filter(**criteria))

    def summary(self) -> "Dict[Tuple[str, str], Dict[str, float]]":
        """Aggregate by (kind, category): calls, bytes, time."""
        agg: Dict[Tuple[str, str], Dict[str, float]] = {}
        for ev in self._events:
            key = (ev.kind, ev.category)
            row = agg.setdefault(key, {"calls": 0, "bytes": 0, "time_s": 0.0})
            row["calls"] += 1
            row["bytes"] += ev.nbytes
            row["time_s"] += ev.cost_s
        return agg

    def render_summary(self) -> str:
        """Human-readable summary table."""
        lines = [f"{'kind':<12s} {'category':<16s} {'calls':>8s} {'bytes':>14s} {'time_s':>12s}"]
        for (kind, category), row in sorted(self.summary().items()):
            lines.append(
                f"{kind:<12s} {category or '-':<16s} {int(row['calls']):>8d} "
                f"{int(row['bytes']):>14d} {row['time_s']:>12.6f}"
            )
        return "\n".join(lines)
