"""Communicators and lockstep collectives.

A :class:`Communicator` is an *ordered* group of world ranks belonging
to a :class:`~repro.vmpi.world.VirtualWorld`.  Its collective methods
take and return data keyed by **world rank** — the natural indexing in
lockstep SPMD, where one driver holds every rank's block — while block
ordering inside ``alltoall``/``allgather`` follows **communicator
rank**, exactly as MPI buffers do.

Every collective performs the real data movement with NumPy and charges
the modeled cost through the world (entry synchronisation + algorithm
cost), recording a trace event.

Notes on buffer ownership: ``allreduce``/``bcast``/``allgather`` return
freshly-allocated arrays.  ``alltoall`` transfers the sent blocks *by
reference* (like a rendezvous protocol handing off pages); senders must
treat submitted blocks as moved.  With a
:class:`~repro.check.checker.CollectiveChecker` installed
(``world.install_checker``), resubmitting a moved block raises a
diagnosed :class:`~repro.errors.ProtocolError` instead of silently
aliasing data.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import CollectiveError, CommunicatorError, ProtocolError
from repro.vmpi.datatypes import ReduceOp

ArrayLike = Union[np.ndarray, float, int, complex]


class Request:
    """Handle for a posted nonblocking collective.

    Returned by :meth:`Communicator.iallreduce` /
    :meth:`Communicator.ialltoall`.  Exactly one completion is allowed:
    :meth:`wait` (or a :meth:`test` that returns True) charges the
    uncovered remainder of the modeled cost and delivers the payload;
    a second :meth:`wait` raises :class:`~repro.errors.ProtocolError`
    (code ``double-wait``) even without a checker installed.
    """

    __slots__ = ("comm", "kind", "_pending", "_payload", "_ck_req", "result", "_done")

    def __init__(self, comm: "Communicator", kind: str, pending, payload, ck_req) -> None:
        self.comm = comm
        self.kind = kind
        self._pending = pending
        self._payload = payload  # zero-arg callable producing the result
        self._ck_req = ck_req
        self.result = None
        self._done = False

    @property
    def done(self) -> bool:
        """Whether the request has been completed (waited or tested True)."""
        return self._done

    def _complete(self):
        ck = self.comm.world.checker
        if ck is not None and self._ck_req is not None:
            ck.lockstep_wait(self._ck_req)
        self.comm.world.complete_collective(self._pending)
        self._done = True
        self.result = self._payload()
        return self.result

    def wait(self):
        """Complete the collective; returns the payload.

        Charges each participant the part of the cost window not
        already covered by compute charged since the post.
        """
        if self._done:
            raise ProtocolError(
                f"wait() called twice on nonblocking {self.kind} "
                f"on {self.comm.label!r}",
                ranks=self._pending.ranks,
                comm_labels=(self.comm.label,),
                code="double-wait",
            )
        return self._complete()

    def test(self) -> bool:
        """Nonblocking completion probe.

        Returns True — completing the request and storing the payload
        in :attr:`result` — when the cost window has already fully
        elapsed on every participant's clock; returns False (charging
        nothing, moving no clock) otherwise.  Idempotent once True.
        """
        if self._done:
            return True
        if not self.comm.world.collective_done(self._pending):
            return False
        self._complete()
        return True


def waitall(requests: Sequence["Request"]) -> List[object]:
    """Wait on every request, in order; returns their payloads."""
    return [req.wait() for req in requests]


class Communicator:
    """An ordered group of world ranks with collective operations."""

    __slots__ = ("world", "_ranks", "_index", "label")

    def __init__(self, world, ranks: Sequence[int], *, label: str = "comm") -> None:
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) == 0:
            raise CommunicatorError("a communicator needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise CommunicatorError(f"duplicate ranks in communicator: {ranks}")
        for r in ranks:
            if not 0 <= r < world.n_ranks:
                raise CommunicatorError(
                    f"world rank {r} out of range [0, {world.n_ranks})"
                )
        self.world = world
        self._ranks = ranks
        self._index = {r: i for i, r in enumerate(ranks)}
        self.label = label

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._ranks)

    @property
    def ranks(self) -> Tuple[int, ...]:
        """World ranks in communicator order."""
        return self._ranks

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator({self.label!r}, size={self.size}, ranks={self._ranks})"

    def comm_rank(self, world_rank: int) -> int:
        """Communicator rank of ``world_rank``."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise CommunicatorError(
                f"world rank {world_rank} is not in communicator {self.label!r}"
            ) from None

    def world_rank(self, comm_rank: int) -> int:
        """World rank sitting at ``comm_rank``."""
        if not 0 <= comm_rank < self.size:
            raise CommunicatorError(
                f"comm rank {comm_rank} out of range [0, {self.size})"
            )
        return self._ranks[comm_rank]

    def sub(self, world_ranks: Sequence[int], *, label: Optional[str] = None) -> "Communicator":
        """Sub-communicator of the given world ranks (must be members)."""
        for r in world_ranks:
            if r not in self._index:
                raise CommunicatorError(
                    f"world rank {r} is not in communicator {self.label!r}"
                )
        return Communicator(
            self.world, world_ranks, label=label or f"{self.label}.sub"
        )

    def split(
        self,
        color_of: Union[Mapping[int, int], Callable[[int], int]],
        *,
        key_of: Optional[Union[Mapping[int, int], Callable[[int], int]]] = None,
        label: Optional[str] = None,
    ) -> Dict[int, "Communicator"]:
        """MPI_Comm_split: partition members by color, order by key.

        ``color_of``/``key_of`` map *world rank* to color/key.  Returns
        a dict color -> new communicator; in lockstep SPMD the caller
        sees every piece at once.  Ties in key are broken by the rank's
        order in this communicator, matching MPI.
        """
        def call(fn, r):
            return fn[r] if isinstance(fn, Mapping) else fn(r)

        buckets: Dict[int, List[Tuple[int, int, int]]] = {}
        for i, r in enumerate(self._ranks):
            color = int(call(color_of, r))
            key = int(call(key_of, r)) if key_of is not None else i
            buckets.setdefault(color, []).append((key, i, r))
        out: Dict[int, Communicator] = {}
        for color, entries in buckets.items():
            entries.sort()
            ranks = [r for _, _, r in entries]
            out[color] = Communicator(
                self.world,
                ranks,
                label=f"{label or self.label}.c{color}",
            )
        return out

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _check_participants(self, data: Mapping[int, object], what: str) -> None:
        if set(data.keys()) != set(self._ranks):
            missing = sorted(set(self._ranks) - set(data.keys()))
            extra = sorted(set(data.keys()) - set(self._ranks))
            raise CommunicatorError(
                f"{what} on {self.label!r}: participant mismatch "
                f"(missing ranks {missing}, unexpected ranks {extra})"
            )

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronise all members."""
        ck = self.world.checker
        if ck is not None:
            ck.lockstep_collective(self, "barrier", {r: 0 for r in self._ranks})
        self.world.charge_collective(
            "barrier", self._ranks, 0, comm_label=self.label
        )

    def allreduce(
        self,
        values: Mapping[int, ArrayLike],
        op: ReduceOp = ReduceOp.SUM,
        *,
        algorithm: Optional[object] = None,
    ) -> Dict[int, np.ndarray]:
        """Elementwise reduction; every member receives the result.

        ``values`` maps world rank -> equal-shape array (or scalar).
        Returns a fresh result array per member.
        """
        self._check_participants(values, "allreduce")
        arrays = [np.asarray(values[r]) for r in self._ranks]
        shape = arrays[0].shape
        for a, r in zip(arrays, self._ranks):
            if a.shape != shape:
                raise CollectiveError(
                    f"allreduce on {self.label!r}: rank {r} has shape {a.shape}, "
                    f"expected {shape}"
                )
        ck = self.world.checker
        if ck is not None:
            ck.lockstep_collective(
                self,
                "allreduce",
                {r: a.nbytes for r, a in zip(self._ranks, arrays)},
                op=getattr(op, "name", str(op)),
                dtypes={r: str(a.dtype) for r, a in zip(self._ranks, arrays)},
            )
        result = op.combine(arrays)
        nbytes = max(a.nbytes for a in arrays)
        self.world.charge_collective(
            "allreduce",
            self._ranks,
            nbytes,
            comm_label=self.label,
            algorithm=algorithm
            if algorithm is not None
            else self.world.cost_model.select_algorithm("allreduce", nbytes),
        )
        return {r: result.copy() for r in self._ranks}

    def iallreduce(
        self,
        values: Mapping[int, ArrayLike],
        op: ReduceOp = ReduceOp.SUM,
        *,
        algorithm: Optional[object] = None,
    ) -> Request:
        """Nonblocking :meth:`allreduce`; returns a :class:`Request`.

        The reduction is combined at post time (send buffers must not
        be mutated between post and wait, as in MPI); the modeled cost
        accrues concurrently with compute charged on the same ranks,
        and ``wait()`` returns the per-rank result dict.
        """
        self._check_participants(values, "iallreduce")
        arrays = [np.asarray(values[r]) for r in self._ranks]
        shape = arrays[0].shape
        for a, r in zip(arrays, self._ranks):
            if a.shape != shape:
                raise CollectiveError(
                    f"iallreduce on {self.label!r}: rank {r} has shape "
                    f"{a.shape}, expected {shape}"
                )
        ck = self.world.checker
        ck_req = None
        if ck is not None:
            ck_req = ck.lockstep_post(
                self,
                "allreduce",
                {r: a.nbytes for r, a in zip(self._ranks, arrays)},
                op=getattr(op, "name", str(op)),
                dtypes={r: str(a.dtype) for r, a in zip(self._ranks, arrays)},
            )
        result = op.combine(arrays)
        nbytes = max(a.nbytes for a in arrays)
        pending = self.world.post_collective(
            "allreduce",
            self._ranks,
            nbytes,
            comm_label=self.label,
            algorithm=algorithm
            if algorithm is not None
            else self.world.cost_model.select_algorithm("allreduce", nbytes),
        )
        return Request(
            self,
            "allreduce",
            pending,
            lambda: {r: result.copy() for r in self._ranks},
            ck_req,
        )

    def alltoall(
        self,
        send: Mapping[int, Sequence[np.ndarray]],
        *,
        algorithm: Optional[object] = None,
    ) -> Dict[int, List[np.ndarray]]:
        """Personalised exchange (vector alltoall).

        ``send[world_rank][j]`` is the block for communicator rank
        ``j``; blocks may have arbitrary (even empty) shapes, so this
        single method covers MPI_Alltoall(v|w).  Returns
        ``recv[world_rank][i]`` = block sent by communicator rank ``i``.
        """
        self._check_participants(send, "alltoall")
        rows: List[Sequence[np.ndarray]] = []
        for r in self._ranks:
            row = send[r]
            if len(row) != self.size:
                raise CollectiveError(
                    f"alltoall on {self.label!r}: rank {r} provided "
                    f"{len(row)} blocks, expected {self.size}"
                )
            rows.append(row)
        ck = self.world.checker
        if ck is not None:
            ck.check_alltoall_blocks(self, rows)
            ck.lockstep_collective(
                self,
                "alltoall",
                {
                    r: sum(np.asarray(b).nbytes for b in row)
                    for r, row in zip(self._ranks, rows)
                },
            )
        recv: Dict[int, List[np.ndarray]] = {
            r: [rows[i][j] for i in range(self.size)]
            for j, r in enumerate(self._ranks)
        }
        # completion is bounded by the busiest rank's send volume
        nbytes = max(sum(np.asarray(b).nbytes for b in row) for row in rows)
        self.world.charge_collective(
            "alltoall",
            self._ranks,
            nbytes,
            comm_label=self.label,
            algorithm=algorithm
            if algorithm is not None
            else self.world.cost_model.select_algorithm("alltoall", nbytes),
        )
        return recv

    def ialltoall(
        self,
        send: Mapping[int, Sequence[np.ndarray]],
        *,
        algorithm: Optional[object] = None,
    ) -> Request:
        """Nonblocking :meth:`alltoall`; returns a :class:`Request`.

        Blocks move by reference exactly as in the blocking form —
        they are *moved at post* (resubmitting one is a checker
        violation); ``wait()`` delivers the recv rows.
        """
        self._check_participants(send, "ialltoall")
        rows: List[Sequence[np.ndarray]] = []
        for r in self._ranks:
            row = send[r]
            if len(row) != self.size:
                raise CollectiveError(
                    f"ialltoall on {self.label!r}: rank {r} provided "
                    f"{len(row)} blocks, expected {self.size}"
                )
            rows.append(row)
        ck = self.world.checker
        ck_req = None
        if ck is not None:
            ck.check_alltoall_blocks(self, rows)
            ck_req = ck.lockstep_post(
                self,
                "alltoall",
                {
                    r: sum(np.asarray(b).nbytes for b in row)
                    for r, row in zip(self._ranks, rows)
                },
            )
        recv: Dict[int, List[np.ndarray]] = {
            r: [rows[i][j] for i in range(self.size)]
            for j, r in enumerate(self._ranks)
        }
        nbytes = max(sum(np.asarray(b).nbytes for b in row) for row in rows)
        pending = self.world.post_collective(
            "alltoall",
            self._ranks,
            nbytes,
            comm_label=self.label,
            algorithm=algorithm
            if algorithm is not None
            else self.world.cost_model.select_algorithm("alltoall", nbytes),
        )
        return Request(self, "alltoall", pending, lambda: recv, ck_req)

    def allgather(self, values: Mapping[int, ArrayLike]) -> Dict[int, List[np.ndarray]]:
        """Every member receives every member's contribution.

        Returns ``out[world_rank][i]`` = copy of comm-rank ``i``'s value.
        """
        self._check_participants(values, "allgather")
        arrays = [np.asarray(values[r]) for r in self._ranks]
        ck = self.world.checker
        if ck is not None:
            ck.lockstep_collective(
                self,
                "allgather",
                {r: a.nbytes for r, a in zip(self._ranks, arrays)},
            )
        nbytes = max(a.nbytes for a in arrays)
        self.world.charge_collective(
            "allgather", self._ranks, nbytes, comm_label=self.label
        )
        return {r: [a.copy() for a in arrays] for r in self._ranks}

    def bcast(self, value: ArrayLike, root: int) -> Dict[int, np.ndarray]:
        """Broadcast ``value`` from world rank ``root`` to all members."""
        self.comm_rank(root)  # validates membership
        arr = np.asarray(value)
        ck = self.world.checker
        if ck is not None:
            ck.lockstep_collective(
                self,
                "bcast",
                {r: arr.nbytes for r in self._ranks},
                dtypes={r: str(arr.dtype) for r in self._ranks},
                root=root,
            )
        self.world.charge_collective(
            "bcast", self._ranks, arr.nbytes, comm_label=self.label
        )
        return {r: arr.copy() for r in self._ranks}

    def reduce(
        self,
        values: Mapping[int, ArrayLike],
        root: int,
        op: ReduceOp = ReduceOp.SUM,
    ) -> np.ndarray:
        """Reduction delivered to ``root`` only; returns root's result."""
        self._check_participants(values, "reduce")
        self.comm_rank(root)
        arrays = [np.asarray(values[r]) for r in self._ranks]
        shape = arrays[0].shape
        for a, r in zip(arrays, self._ranks):
            if a.shape != shape:
                raise CollectiveError(
                    f"reduce on {self.label!r}: rank {r} has shape {a.shape}, "
                    f"expected {shape}"
                )
        ck = self.world.checker
        if ck is not None:
            ck.lockstep_collective(
                self,
                "reduce",
                {r: a.nbytes for r, a in zip(self._ranks, arrays)},
                op=getattr(op, "name", str(op)),
                dtypes={r: str(a.dtype) for r, a in zip(self._ranks, arrays)},
                root=root,
            )
        result = op.combine(arrays)
        self.world.charge_collective(
            "reduce", self._ranks, max(a.nbytes for a in arrays), comm_label=self.label
        )
        return result

    def gather(self, values: Mapping[int, ArrayLike], root: int) -> List[np.ndarray]:
        """Gather members' values to ``root`` in communicator order."""
        self._check_participants(values, "gather")
        self.comm_rank(root)
        arrays = [np.asarray(values[r]).copy() for r in self._ranks]
        ck = self.world.checker
        if ck is not None:
            ck.lockstep_collective(
                self,
                "gather",
                {r: a.nbytes for r, a in zip(self._ranks, arrays)},
                root=root,
            )
        self.world.charge_collective(
            "gather",
            self._ranks,
            sum(a.nbytes for a in arrays),
            comm_label=self.label,
        )
        return arrays

    def scatter(self, blocks: Sequence[ArrayLike], root: int) -> Dict[int, np.ndarray]:
        """Scatter ``blocks`` (comm-rank order) from ``root``."""
        self.comm_rank(root)
        if len(blocks) != self.size:
            raise CollectiveError(
                f"scatter on {self.label!r}: {len(blocks)} blocks for "
                f"{self.size} ranks"
            )
        arrays = [np.asarray(b) for b in blocks]
        ck = self.world.checker
        if ck is not None:
            ck.lockstep_collective(
                self,
                "scatter",
                {r: arrays[i].nbytes for i, r in enumerate(self._ranks)},
                root=root,
            )
        self.world.charge_collective(
            "scatter",
            self._ranks,
            sum(a.nbytes for a in arrays),
            comm_label=self.label,
        )
        return {r: arrays[i].copy() for i, r in enumerate(self._ranks)}

    def reduce_scatter(
        self,
        values: Mapping[int, ArrayLike],
        op: ReduceOp = ReduceOp.SUM,
    ) -> Dict[int, np.ndarray]:
        """Reduce, then scatter the result's blocks by comm rank.

        Each rank contributes an array whose *first axis* has length
        ``size``; rank ``j`` receives block ``j`` of the elementwise
        reduction.  (The building block of ring AllReduce.)
        """
        self._check_participants(values, "reduce_scatter")
        arrays = [np.asarray(values[r]) for r in self._ranks]
        shape = arrays[0].shape
        for a, r in zip(arrays, self._ranks):
            if a.shape != shape:
                raise CollectiveError(
                    f"reduce_scatter on {self.label!r}: rank {r} has shape "
                    f"{a.shape}, expected {shape}"
                )
        if not shape or shape[0] != self.size:
            raise CollectiveError(
                f"reduce_scatter on {self.label!r}: first axis must have "
                f"length {self.size}, got shape {shape}"
            )
        ck = self.world.checker
        if ck is not None:
            ck.lockstep_collective(
                self,
                "reduce_scatter",
                {r: a.nbytes for r, a in zip(self._ranks, arrays)},
                op=getattr(op, "name", str(op)),
                dtypes={r: str(a.dtype) for r, a in zip(self._ranks, arrays)},
            )
        reduced = op.combine(arrays)
        # costed like the reduce-scatter half of a ring allreduce
        self.world.charge_collective(
            "allreduce",
            self._ranks,
            max(a.nbytes for a in arrays) // 2,
            comm_label=self.label,
        )
        return {r: reduced[j].copy() for j, r in enumerate(self._ranks)}

    def scan(
        self,
        values: Mapping[int, ArrayLike],
        op: ReduceOp = ReduceOp.SUM,
        *,
        exclusive: bool = False,
    ) -> Dict[int, np.ndarray]:
        """Prefix reduction in comm-rank order (MPI_Scan / MPI_Exscan).

        Rank ``j`` receives the reduction of comm ranks ``0..j``
        (inclusive) or ``0..j-1`` (exclusive; rank 0 gets zeros).
        """
        self._check_participants(values, "scan")
        arrays = [np.asarray(values[r], dtype=float) for r in self._ranks]
        shape = arrays[0].shape
        for a, r in zip(arrays, self._ranks):
            if a.shape != shape:
                raise CollectiveError(
                    f"scan on {self.label!r}: rank {r} has shape {a.shape}, "
                    f"expected {shape}"
                )
        ck = self.world.checker
        if ck is not None:
            ck.lockstep_collective(
                self,
                "scan",
                {r: a.nbytes for r, a in zip(self._ranks, arrays)},
                op=getattr(op, "name", str(op)),
                dtypes={r: str(a.dtype) for r, a in zip(self._ranks, arrays)},
            )
        out: Dict[int, np.ndarray] = {}
        for j, r in enumerate(self._ranks):
            upto = arrays[:j] if exclusive else arrays[: j + 1]
            if upto:
                out[r] = op.combine(upto)
            else:
                out[r] = np.zeros(shape)
        self.world.charge_collective(
            "reduce", self._ranks, max(a.nbytes for a in arrays), comm_label=self.label
        )
        return out

    def sendrecv(
        self,
        value: ArrayLike,
        source: int,
        dest: int,
    ) -> np.ndarray:
        """Point-to-point transfer from world rank ``source`` to ``dest``.

        Only the two endpoints synchronise and are charged; returns a
        copy of the payload (what ``dest`` received).
        """
        self.comm_rank(source)
        self.comm_rank(dest)
        arr = np.asarray(value)
        if source == dest:
            return arr.copy()
        pair = (source, dest)
        ck = self.world.checker
        if ck is not None:
            # only the endpoints participate; the pair is a subset of the
            # communicator, so the label<->membership table must not bind
            for r in pair:
                ck.post(
                    r,
                    comm_label=self.label,
                    comm_ranks=pair,
                    kind="sendrecv",
                    nbytes=int(arr.nbytes),
                    dtype=str(arr.dtype),
                    track_membership=False,
                )
        factor = 1.0
        if self.world.fault_injector is not None:
            factor = self.world.fault_injector.on_collective(
                "sendrecv", pair, self.label
            )
        link = self.world.cost_model.effective_link(pair)
        cost = factor * (
            link.overhead_s + link.latency_s + arr.nbytes / link.bandwidth_Bps
        )
        idx = np.asarray(pair, dtype=np.intp)
        t_start = float(self.world.clock[idx].max())
        last_arrival = source if self.world.clock[source] >= self.world.clock[dest] else dest
        self.world.clock[idx] = t_start + cost
        cat = self.world.current_category
        for r in pair:
            self.world._add_category_time(r, cat, cost)
        self.world._seq += 1
        from repro.vmpi.tracer import CollectiveEvent

        event = CollectiveEvent(
            seq=self.world._seq,
            kind="sendrecv",
            comm_label=self.label,
            ranks=pair,
            n_nodes=self.world.cost_model.n_nodes_of(pair),
            nbytes=int(arr.nbytes),
            algorithm="",
            t_start=t_start,
            cost_s=cost,
            category=cat,
        )
        self.world.trace.record(event)
        if ck is not None:
            ck.observe_event(event)
        if self.world.tracer is not None:
            self.world.tracer.record(
                f"sendrecv [{self.label}]",
                "collective",
                t_start,
                cost,
                category=cat,
                ranks=pair,
                nbytes=int(arr.nbytes),
                comm=self.label,
                last_arrival=int(last_arrival),
            )
        if self.world.metrics is not None:
            self.world.metrics.counter(
                "vmpi_collective_bytes_total", kind="sendrecv", comm=self.label
            ).inc(float(arr.nbytes))
            self.world.metrics.counter(
                "vmpi_collectives_total", kind="sendrecv"
            ).inc()
        return arr.copy()
