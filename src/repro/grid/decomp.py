"""Processor-grid decomposition for one simulation.

A simulation with ``n_proc = P1 * P2`` ranks arranges them on a 2D
grid, local rank ``= i2 * P1 + i1`` (CGYRO convention — the P1
direction is fastest, so one toroidal group occupies *consecutive*
ranks, which is what makes small P1 groups land inside a node under
block placement):

- ``P2 = n_proc_2`` groups each own ``nt_loc = nt / P2`` toroidal
  modes;
- within a group, the ``P1 = n_proc_1`` ranks split **nv** in the
  streaming phase (``nv_loc = nv / P1``, nc complete) and **nc** in the
  collisional phase (``nc_loc = nc / P1``, nv complete).

The paper's Figure 1 communicators map to:

- ``comm_1`` (size P1, within a toroidal group): str AllReduce (field +
  upwind) *and* the str<->coll AllToAll — CGYRO reuses one
  communicator for both, which is precisely what XGYRO has to undo;
- ``comm_2`` (size P2, across groups): the str<->nl transpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import DecompositionError
from repro.grid.dims import GridDims


@dataclass(frozen=True)
class Decomposition:
    """A validated P1 x P2 processor grid for given dimensions."""

    dims: GridDims
    n_proc_1: int
    n_proc_2: int

    def __post_init__(self) -> None:
        p1, p2 = self.n_proc_1, self.n_proc_2
        if p1 < 1 or p2 < 1:
            raise DecompositionError(f"processor counts must be >= 1, got {p1} x {p2}")
        if self.dims.nt % p2 != 0:
            raise DecompositionError(
                f"n_proc_2={p2} must divide nt={self.dims.nt}"
            )
        if self.dims.nv % p1 != 0:
            raise DecompositionError(
                f"n_proc_1={p1} must divide nv={self.dims.nv} (str split)"
            )
        if self.dims.nc % p1 != 0:
            raise DecompositionError(
                f"n_proc_1={p1} must divide nc={self.dims.nc} (coll split)"
            )

    # ------------------------------------------------------------------
    @property
    def n_proc(self) -> int:
        """Total ranks of the simulation."""
        return self.n_proc_1 * self.n_proc_2

    @property
    def nc_loc(self) -> int:
        """Configuration points per rank in the coll layout."""
        return self.dims.nc // self.n_proc_1

    @property
    def nv_loc(self) -> int:
        """Velocity points per rank in the str layout."""
        return self.dims.nv // self.n_proc_1

    @property
    def nt_loc(self) -> int:
        """Toroidal modes per rank."""
        return self.dims.nt // self.n_proc_2

    # ------------------------------------------------------------------
    # rank <-> grid coordinates (local rank within the simulation)
    # ------------------------------------------------------------------
    def coords_of(self, local_rank: int) -> Tuple[int, int]:
        """Grid coordinates ``(i1, i2)`` of a local rank."""
        if not 0 <= local_rank < self.n_proc:
            raise DecompositionError(
                f"local rank {local_rank} out of range [0, {self.n_proc})"
            )
        i2, i1 = divmod(local_rank, self.n_proc_1)
        return i1, i2

    def local_rank_of(self, i1: int, i2: int) -> int:
        """Local rank at grid coordinates ``(i1, i2)``."""
        if not (0 <= i1 < self.n_proc_1 and 0 <= i2 < self.n_proc_2):
            raise DecompositionError(f"grid coords ({i1}, {i2}) out of range")
        return i2 * self.n_proc_1 + i1

    def group_ranks(self, i2: int) -> Tuple[int, ...]:
        """Local ranks of toroidal group ``i2`` (a comm_1 group)."""
        return tuple(self.local_rank_of(i1, i2) for i1 in range(self.n_proc_1))

    def cross_group_ranks(self, i1: int) -> Tuple[int, ...]:
        """Local ranks with the same i1 across groups (a comm_2 group)."""
        return tuple(self.local_rank_of(i1, i2) for i2 in range(self.n_proc_2))

    # ------------------------------------------------------------------
    # index slices owned by grid coordinates
    # ------------------------------------------------------------------
    def nc_slice(self, i1: int) -> slice:
        """Global nc range owned by column ``i1`` in the coll layout."""
        return slice(i1 * self.nc_loc, (i1 + 1) * self.nc_loc)

    def nv_slice(self, i1: int) -> slice:
        """Global nv range owned by column ``i1`` in the str layout."""
        return slice(i1 * self.nv_loc, (i1 + 1) * self.nv_loc)

    def nt_slice(self, i2: int) -> slice:
        """Global nt range owned by toroidal group ``i2``."""
        return slice(i2 * self.nt_loc, (i2 + 1) * self.nt_loc)

    # ------------------------------------------------------------------
    @classmethod
    def choose(cls, dims: GridDims, n_proc: int) -> "Decomposition":
        """Pick a valid (P1, P2) for ``n_proc`` ranks.

        Mirrors CGYRO's preference: use as many toroidal groups as
        possible (P2 = nt when it divides n_proc), since the toroidal
        split is communication-free; fall back to the largest valid P2.
        Raises :class:`DecompositionError` when no factoring works.
        """
        if n_proc < 1:
            raise DecompositionError(f"n_proc must be >= 1, got {n_proc}")
        candidates: List[int] = [
            p2 for p2 in range(min(dims.nt, n_proc), 0, -1)
            if dims.nt % p2 == 0 and n_proc % p2 == 0
        ]
        for p2 in candidates:
            p1 = n_proc // p2
            if dims.nv % p1 == 0 and dims.nc % p1 == 0:
                return cls(dims, p1, p2)
        raise DecompositionError(
            f"no valid (P1, P2) decomposition of {n_proc} ranks for grid "
            f"[{dims.describe()}]"
        )

    def describe(self) -> str:
        """Compact human-readable summary."""
        return (
            f"{self.n_proc} ranks = P1:{self.n_proc_1} x P2:{self.n_proc_2}; "
            f"nc_loc={self.nc_loc}, nv_loc={self.nv_loc}, nt_loc={self.nt_loc}"
        )
