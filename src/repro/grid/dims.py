"""Phase-space dimensions.

:class:`GridDims` carries the six resolution parameters and exposes the
three collapsed tensor dimensions the paper reasons in terms of:
``nc`` (configuration), ``nv`` (velocity) and ``nt`` (toroidal).  Index
(un)flattening helpers define the canonical orderings used everywhere:

- ``ic = ir * n_theta + it``             (radial-major),
- ``iv = (is * n_energy + ie) * n_xi + ix``  (species-major),
- ``n``  in ``[0, nt)``                  (toroidal mode index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import InputError


@dataclass(frozen=True)
class GridDims:
    """Resolution of the five phase-space coordinates plus species.

    Parameters
    ----------
    n_radial, n_theta:
        Configuration-space resolution; ``nc = n_radial * n_theta``.
    n_energy, n_xi, n_species:
        Velocity-space resolution; ``nv = n_energy * n_xi * n_species``.
    n_toroidal:
        Number of toroidal modes; ``nt = n_toroidal``.
    """

    n_radial: int
    n_theta: int
    n_energy: int
    n_xi: int
    n_species: int
    n_toroidal: int

    def __post_init__(self) -> None:
        for name in (
            "n_radial",
            "n_theta",
            "n_energy",
            "n_xi",
            "n_species",
            "n_toroidal",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise InputError(f"{name} must be a positive integer, got {value!r}")

    # ------------------------------------------------------------------
    # collapsed dimensions
    # ------------------------------------------------------------------
    @property
    def nc(self) -> int:
        """Configuration dimension: ``n_radial * n_theta``."""
        return self.n_radial * self.n_theta

    @property
    def nv(self) -> int:
        """Velocity dimension: ``n_energy * n_xi * n_species``."""
        return self.n_energy * self.n_xi * self.n_species

    @property
    def nt(self) -> int:
        """Toroidal dimension: ``n_toroidal``."""
        return self.n_toroidal

    @property
    def state_size(self) -> int:
        """Elements in one full (nc, nv, nt) tensor."""
        return self.nc * self.nv * self.nt

    # ------------------------------------------------------------------
    # index flattening
    # ------------------------------------------------------------------
    def ic_of(self, ir: int, itheta: int) -> int:
        """Flatten a configuration index (radial-major)."""
        if not (0 <= ir < self.n_radial and 0 <= itheta < self.n_theta):
            raise InputError(f"config index ({ir}, {itheta}) out of range")
        return ir * self.n_theta + itheta

    def unpack_ic(self, ic: int) -> Tuple[int, int]:
        """Inverse of :meth:`ic_of`: returns ``(ir, itheta)``."""
        if not 0 <= ic < self.nc:
            raise InputError(f"ic {ic} out of range [0, {self.nc})")
        return divmod(ic, self.n_theta)

    def iv_of(self, ispec: int, ienergy: int, ixi: int) -> int:
        """Flatten a velocity index (species-major)."""
        ok = (
            0 <= ispec < self.n_species
            and 0 <= ienergy < self.n_energy
            and 0 <= ixi < self.n_xi
        )
        if not ok:
            raise InputError(f"velocity index ({ispec}, {ienergy}, {ixi}) out of range")
        return (ispec * self.n_energy + ienergy) * self.n_xi + ixi

    def unpack_iv(self, iv: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`iv_of`: returns ``(ispec, ienergy, ixi)``."""
        if not 0 <= iv < self.nv:
            raise InputError(f"iv {iv} out of range [0, {self.nv})")
        rest, ixi = divmod(iv, self.n_xi)
        ispec, ienergy = divmod(rest, self.n_energy)
        return ispec, ienergy, ixi

    def describe(self) -> str:
        """Compact human-readable summary."""
        return (
            f"nc={self.nc} ({self.n_radial}r x {self.n_theta}th), "
            f"nv={self.nv} ({self.n_species}s x {self.n_energy}e x {self.n_xi}xi), "
            f"nt={self.nt}"
        )
