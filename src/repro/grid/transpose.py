"""AllToAll transposes between phase layouts.

Each function moves one toroidal group's (or cross-group's) blocks
between two layouts via a single vector AllToAll on the appropriate
communicator, exactly mirroring CGYRO's phase transitions:

- :func:`transpose_str_to_coll` / :func:`transpose_coll_to_str` run on
  a **comm_1** group (P1 ranks of one toroidal group, in i1 order) —
  the communicator the str AllReduce also uses in stock CGYRO
  (Figure 1);
- :func:`transpose_str_to_nl` / :func:`transpose_nl_to_str` run on a
  **comm_2** group (P2 ranks sharing an i1 column, in i2 order).

Inputs and outputs are keyed by *world rank* (the communicator's
members); communicator rank ``j`` must correspond to grid coordinate
``i1 = j`` (comm_1) or ``i2 = j`` (comm_2), which is how the solver
constructs them.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.errors import DecompositionError
from repro.grid.decomp import Decomposition
from repro.grid.layouts import Layout, block_shape, nc_nl_slice
from repro.vmpi.communicator import Communicator


def _check_blocks(
    comm: Communicator,
    blocks: Mapping[int, np.ndarray],
    layout: Layout,
    decomp: Decomposition,
    expected_size: int,
    what: str,
) -> None:
    if comm.size != expected_size:
        raise DecompositionError(
            f"{what}: communicator size {comm.size} != expected {expected_size}"
        )
    shape = block_shape(layout, decomp)
    for r in comm.ranks:
        if r not in blocks:
            raise DecompositionError(f"{what}: missing block for world rank {r}")
        if blocks[r].shape != shape:
            raise DecompositionError(
                f"{what}: rank {r} block shape {blocks[r].shape} != {shape}"
            )


def transpose_str_to_coll(
    comm1: Communicator,
    blocks: Mapping[int, np.ndarray],
    decomp: Decomposition,
) -> Dict[int, np.ndarray]:
    """STR -> COLL within one toroidal group.

    Input blocks ``(nc, nv_loc, nt_loc)``; output ``(nc_loc, nv,
    nt_loc)`` with nv assembled in comm-rank (= i1) order.
    """
    _check_blocks(comm1, blocks, Layout.STR, decomp, decomp.n_proc_1, "str->coll")
    send = {
        r: [blocks[r][decomp.nc_slice(j), :, :] for j in range(comm1.size)]
        for r in comm1.ranks
    }
    recv = comm1.alltoall(send)
    return {r: np.concatenate(recv[r], axis=1) for r in comm1.ranks}


def transpose_coll_to_str(
    comm1: Communicator,
    blocks: Mapping[int, np.ndarray],
    decomp: Decomposition,
) -> Dict[int, np.ndarray]:
    """COLL -> STR within one toroidal group (inverse transpose)."""
    _check_blocks(comm1, blocks, Layout.COLL, decomp, decomp.n_proc_1, "coll->str")
    send = {
        r: [blocks[r][:, decomp.nv_slice(j), :] for j in range(comm1.size)]
        for r in comm1.ranks
    }
    recv = comm1.alltoall(send)
    return {r: np.concatenate(recv[r], axis=0) for r in comm1.ranks}


def transpose_str_to_nl(
    comm2: Communicator,
    blocks: Mapping[int, np.ndarray],
    decomp: Decomposition,
) -> Dict[int, np.ndarray]:
    """STR -> NL across toroidal groups.

    Input blocks ``(nc, nv_loc, nt_loc)``; output ``(nc_nl_loc, nv_loc,
    nt)`` with nt assembled in comm-rank (= i2) order.
    """
    _check_blocks(comm2, blocks, Layout.STR, decomp, decomp.n_proc_2, "str->nl")
    send = {
        r: [blocks[r][nc_nl_slice(decomp, j), :, :] for j in range(comm2.size)]
        for r in comm2.ranks
    }
    recv = comm2.alltoall(send)
    return {r: np.concatenate(recv[r], axis=2) for r in comm2.ranks}


def transpose_nl_to_str(
    comm2: Communicator,
    blocks: Mapping[int, np.ndarray],
    decomp: Decomposition,
) -> Dict[int, np.ndarray]:
    """NL -> STR across toroidal groups (inverse transpose)."""
    _check_blocks(comm2, blocks, Layout.NL, decomp, decomp.n_proc_2, "nl->str")
    send = {
        r: [blocks[r][:, :, decomp.nt_slice(j)] for j in range(comm2.size)]
        for r in comm2.ranks
    }
    recv = comm2.alltoall(send)
    return {r: np.concatenate(recv[r], axis=0) for r in comm2.ranks}
