"""Phase-space grid and domain decomposition.

CGYRO state lives on 3D tensors over *(nc, nv, nt)*:

- ``nc = n_radial * n_theta`` — configuration space,
- ``nv = n_energy * n_xi * n_species`` — velocity space,
- ``nt = n_toroidal`` — toroidal mode numbers.

This package provides the grid definitions (:class:`GridDims`,
:class:`VelocityGrid`, :class:`ConfigGrid`), the processor-grid
decomposition (:class:`Decomposition`: ``P1`` ranks split nv in the
streaming phase / nc in the collisional phase, ``P2`` ranks split nt),
and the data layouts plus AllToAll transposes that move a distributed
field between the three phase layouts (Figure 1 of the paper).
"""

from repro.grid.config_space import ConfigGrid
from repro.grid.decomp import Decomposition
from repro.grid.dims import GridDims
from repro.grid.layouts import Layout, block_shape, gather_global, scatter_global
from repro.grid.transpose import (
    transpose_coll_to_str,
    transpose_nl_to_str,
    transpose_str_to_coll,
    transpose_str_to_nl,
)
from repro.grid.velocity import VelocityGrid

__all__ = [
    "GridDims",
    "VelocityGrid",
    "ConfigGrid",
    "Decomposition",
    "Layout",
    "block_shape",
    "scatter_global",
    "gather_global",
    "transpose_str_to_coll",
    "transpose_coll_to_str",
    "transpose_str_to_nl",
    "transpose_nl_to_str",
]
