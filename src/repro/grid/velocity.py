"""Velocity-space grid and quadrature.

The drift-kinetic velocity space is (energy, pitch angle, species):

- pitch angle ``xi = v_par / v`` on Gauss-Legendre nodes over [-1, 1]
  (the natural grid for the Lorentz collision operator, whose
  eigenfunctions are Legendre polynomials);
- normalised energy ``e = v^2 / v_th^2`` on generalized Gauss-Laguerre
  nodes with weight ``sqrt(e) * exp(-e)``, so Maxwellian-weighted
  velocity integrals are exact for polynomial integrands.

The combined quadrature weight is normalised so that the integral of a
unit function against the Maxwellian is exactly 1 per species, which
gives the field solve and the conservation tests a crisp invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np
from numpy.polynomial.legendre import leggauss
from scipy.special import roots_genlaguerre

from repro.errors import InputError
from repro.grid.dims import GridDims


@dataclass(frozen=True)
class VelocityGrid:
    """Quadrature nodes/weights over (species, energy, pitch).

    Flattened arrays are indexed by ``iv`` in the canonical
    species-major ordering of :class:`~repro.grid.dims.GridDims`.

    Attributes
    ----------
    xi:
        Pitch-angle nodes, shape ``(n_xi,)``.
    xi_weights:
        Pitch weights normalised to sum to 1 (so the pitch average of 1
        is 1).
    energy:
        Energy nodes, shape ``(n_energy,)``.
    energy_weights:
        Energy weights normalised to sum to 1.
    """

    dims: GridDims
    xi: np.ndarray = field(repr=False)
    xi_weights: np.ndarray = field(repr=False)
    energy: np.ndarray = field(repr=False)
    energy_weights: np.ndarray = field(repr=False)

    @classmethod
    def build(cls, dims: GridDims) -> "VelocityGrid":
        """Construct the quadrature for the given dimensions."""
        if dims.n_xi < 2:
            raise InputError(f"n_xi must be >= 2 for a pitch grid, got {dims.n_xi}")
        xi, wxi = leggauss(dims.n_xi)
        wxi = wxi / wxi.sum()
        # weight sqrt(e) e^{-e}: generalized Laguerre with alpha = 1/2
        e, we = roots_genlaguerre(dims.n_energy, 0.5)
        we = we / we.sum()
        return cls(
            dims=dims,
            xi=xi,
            xi_weights=wxi,
            energy=e,
            energy_weights=we,
        )

    # ------------------------------------------------------------------
    # flattened per-iv arrays
    # ------------------------------------------------------------------
    def _per_species_grid(self) -> Tuple[np.ndarray, np.ndarray]:
        """(energy, xi) meshgrids flattened to one species block."""
        e_grid = np.repeat(self.energy, self.dims.n_xi)
        xi_grid = np.tile(self.xi, self.dims.n_energy)
        return e_grid, xi_grid

    def flat_energy(self) -> np.ndarray:
        """Energy node at each ``iv``, shape ``(nv,)``."""
        e_grid, _ = self._per_species_grid()
        return np.tile(e_grid, self.dims.n_species)

    def flat_xi(self) -> np.ndarray:
        """Pitch node at each ``iv``, shape ``(nv,)``."""
        _, xi_grid = self._per_species_grid()
        return np.tile(xi_grid, self.dims.n_species)

    def flat_species(self) -> np.ndarray:
        """Species index at each ``iv``, shape ``(nv,)``, dtype int."""
        block = self.dims.n_energy * self.dims.n_xi
        return np.repeat(np.arange(self.dims.n_species), block)

    def flat_weights(self) -> np.ndarray:
        """Maxwellian quadrature weight at each ``iv``, shape ``(nv,)``.

        Within one species the weights sum to exactly 1.
        """
        w = np.outer(self.energy_weights, self.xi_weights).ravel()
        return np.tile(w, self.dims.n_species)

    def flat_vpar(self) -> np.ndarray:
        """Parallel velocity ``sqrt(e) * xi`` at each ``iv``."""
        return np.sqrt(self.flat_energy()) * self.flat_xi()

    # ------------------------------------------------------------------
    # moments
    # ------------------------------------------------------------------
    def species_moment(self, values: np.ndarray, species_weights: np.ndarray) -> np.ndarray:
        """Velocity moment ``sum_iv w(iv) * c_s(iv) * values[..., iv]``.

        ``values`` has ``nv`` as its *last* axis; ``species_weights``
        has shape ``(n_species,)`` and scales each species' block.
        Returns an array with the ``nv`` axis contracted away.
        """
        if values.shape[-1] != self.dims.nv:
            raise InputError(
                f"last axis must be nv={self.dims.nv}, got {values.shape[-1]}"
            )
        if species_weights.shape != (self.dims.n_species,):
            raise InputError(
                f"species_weights must have shape ({self.dims.n_species},)"
            )
        w = self.flat_weights() * species_weights[self.flat_species()]
        return values @ w
