"""Distributed data layouts for the three solver phases.

A field is a global complex tensor of shape ``(nc, nv, nt)``.  Each
phase needs a different dimension complete on every rank:

========  ==================  ==============================
layout    complete dimension  per-rank block shape
========  ==================  ==============================
STR       nc                  ``(nc, nv_loc, nt_loc)``
COLL      nv                  ``(nc_loc, nv, nt_loc)``
NL        nt                  ``(nc_nl_loc, nv_loc, nt)``
========  ==================  ==============================

where ``nc_nl_loc = nc / P2`` (the NL layout additionally requires P2
to divide nc).  ``scatter_global`` / ``gather_global`` convert between
a global array and the per-local-rank block list, and are the reference
semantics the AllToAll transposes are tested against.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

import numpy as np

from repro.errors import DecompositionError
from repro.grid.decomp import Decomposition


class Layout(enum.Enum):
    """Phase-specific distribution of a ``(nc, nv, nt)`` tensor."""

    STR = "str"
    COLL = "coll"
    NL = "nl"


def _nc_nl_loc(decomp: Decomposition) -> int:
    if decomp.dims.nc % decomp.n_proc_2 != 0:
        raise DecompositionError(
            f"NL layout needs n_proc_2={decomp.n_proc_2} to divide nc={decomp.dims.nc}"
        )
    return decomp.dims.nc // decomp.n_proc_2


def nc_nl_slice(decomp: Decomposition, i2: int) -> slice:
    """Global nc range owned by toroidal group ``i2`` in the NL layout."""
    loc = _nc_nl_loc(decomp)
    return slice(i2 * loc, (i2 + 1) * loc)


def block_shape(layout: Layout, decomp: Decomposition) -> Tuple[int, int, int]:
    """Per-rank block shape under ``layout``."""
    d = decomp.dims
    if layout is Layout.STR:
        return (d.nc, decomp.nv_loc, decomp.nt_loc)
    if layout is Layout.COLL:
        return (decomp.nc_loc, d.nv, decomp.nt_loc)
    if layout is Layout.NL:
        return (_nc_nl_loc(decomp), decomp.nv_loc, d.nt)
    raise AssertionError(f"unhandled layout {layout}")


def block_nbytes(layout: Layout, decomp: Decomposition, dtype=np.complex128) -> int:
    """Bytes of one per-rank block under ``layout``."""
    shape = block_shape(layout, decomp)
    return int(np.prod(shape)) * np.dtype(dtype).itemsize


def scatter_global(
    global_field: np.ndarray, layout: Layout, decomp: Decomposition
) -> List[np.ndarray]:
    """Slice a global ``(nc, nv, nt)`` tensor into per-local-rank blocks.

    Returns a list indexed by local rank (``i2 * P1 + i1``).  Blocks
    are contiguous copies.
    """
    d = decomp.dims
    if global_field.shape != (d.nc, d.nv, d.nt):
        raise DecompositionError(
            f"global field shape {global_field.shape} != ({d.nc}, {d.nv}, {d.nt})"
        )
    blocks: List[np.ndarray] = []
    for local_rank in range(decomp.n_proc):
        i1, i2 = decomp.coords_of(local_rank)
        if layout is Layout.STR:
            blk = global_field[:, decomp.nv_slice(i1), decomp.nt_slice(i2)]
        elif layout is Layout.COLL:
            blk = global_field[decomp.nc_slice(i1), :, decomp.nt_slice(i2)]
        elif layout is Layout.NL:
            blk = global_field[nc_nl_slice(decomp, i2), decomp.nv_slice(i1), :]
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unhandled layout {layout}")
        blocks.append(np.ascontiguousarray(blk))
    return blocks


def gather_global(
    blocks: "List[np.ndarray]", layout: Layout, decomp: Decomposition
) -> np.ndarray:
    """Reassemble per-local-rank blocks into the global tensor.

    Inverse of :func:`scatter_global`; used to verify transposes and to
    extract diagnostics in tests.
    """
    d = decomp.dims
    if len(blocks) != decomp.n_proc:
        raise DecompositionError(
            f"expected {decomp.n_proc} blocks, got {len(blocks)}"
        )
    expected = block_shape(layout, decomp)
    out = np.zeros((d.nc, d.nv, d.nt), dtype=np.result_type(*blocks))
    for local_rank, blk in enumerate(blocks):
        if blk.shape != expected:
            raise DecompositionError(
                f"block {local_rank} has shape {blk.shape}, expected {expected}"
            )
        i1, i2 = decomp.coords_of(local_rank)
        if layout is Layout.STR:
            out[:, decomp.nv_slice(i1), decomp.nt_slice(i2)] = blk
        elif layout is Layout.COLL:
            out[decomp.nc_slice(i1), :, decomp.nt_slice(i2)] = blk
        elif layout is Layout.NL:
            out[nc_nl_slice(decomp, i2), decomp.nv_slice(i1), :] = blk
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unhandled layout {layout}")
    return out
