"""Configuration-space grid.

Configuration space is (radial wavenumber, poloidal angle theta),
flattened to ``ic = ir * n_theta + itheta``.  The streaming phase
differentiates along theta (parallel streaming), which is why it needs
the *complete* nc dimension locally; this module provides the periodic
upwind/centered theta-derivative stencils as matrix-free operations on
arrays reshaped to ``(n_radial, n_theta, ...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InputError
from repro.grid.dims import GridDims


@dataclass(frozen=True)
class ConfigGrid:
    """Radial wavenumbers and the periodic theta grid.

    Attributes
    ----------
    k_radial:
        Signed radial wavenumbers, shape ``(n_radial,)``, centered on 0.
    theta:
        Poloidal angle nodes on [-pi, pi), shape ``(n_theta,)``.
    d_theta:
        Grid spacing ``2*pi / n_theta``.
    """

    dims: GridDims
    k_radial: np.ndarray = field(repr=False)
    theta: np.ndarray = field(repr=False)
    d_theta: float

    @classmethod
    def build(cls, dims: GridDims, *, box_length: float = 1.0) -> "ConfigGrid":
        """Construct the grid; ``box_length`` scales radial wavenumbers."""
        if box_length <= 0:
            raise InputError(f"box_length must be > 0, got {box_length}")
        nr = dims.n_radial
        # symmetric signed wavenumbers: -nr/2 ... nr/2-1 (FFT convention)
        k = (np.arange(nr) - nr // 2) * (2.0 * np.pi / box_length)
        theta = -np.pi + 2.0 * np.pi * np.arange(dims.n_theta) / dims.n_theta
        return cls(
            dims=dims,
            k_radial=k,
            theta=theta,
            d_theta=2.0 * np.pi / dims.n_theta,
        )

    # ------------------------------------------------------------------
    # theta stencils (act on axis 1 of (n_radial, n_theta, ...) arrays)
    # ------------------------------------------------------------------
    def _reshape_nc(self, values: np.ndarray) -> np.ndarray:
        if values.shape[0] != self.dims.nc:
            raise InputError(
                f"first axis must be nc={self.dims.nc}, got {values.shape[0]}"
            )
        return values.reshape((self.dims.n_radial, self.dims.n_theta) + values.shape[1:])

    def d_dtheta_centered(self, values: np.ndarray) -> np.ndarray:
        """Second-order centered d/dtheta along the theta coordinate.

        ``values`` has shape ``(nc, ...)``; returns the same shape.
        """
        v = self._reshape_nc(values)
        out = (np.roll(v, -1, axis=1) - np.roll(v, 1, axis=1)) / (2.0 * self.d_theta)
        return out.reshape(values.shape)

    def d_dtheta_upwind_diss(self, values: np.ndarray) -> np.ndarray:
        """Upwind dissipation operator: ``-|D2| / (2*dtheta)``.

        The second-difference part of a first-order upwind stencil,
        ``(v_{j+1} - 2 v_j + v_{j-1}) / (2*dtheta)``.  Combined with the
        centered derivative and a |v_par| weight this yields the upwind
        scheme CGYRO's streaming phase uses; kept separate because the
        dissipation is weighted by |v_par| while the advection is
        weighted by v_par.
        """
        v = self._reshape_nc(values)
        out = (np.roll(v, -1, axis=1) - 2.0 * v + np.roll(v, 1, axis=1)) / (
            2.0 * self.d_theta
        )
        return out.reshape(values.shape)

    def flat_k_radial(self) -> np.ndarray:
        """Radial wavenumber at each ``ic``, shape ``(nc,)``."""
        return np.repeat(self.k_radial, self.dims.n_theta)

    def flat_theta(self) -> np.ndarray:
        """Theta node at each ``ic``, shape ``(nc,)``."""
        return np.tile(self.theta, self.dims.n_radial)
