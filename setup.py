"""Legacy shim so editable installs work without the `wheel` package.

`pip install -e .` on an offline machine (no build isolation, no wheel)
falls back to `setup.py develop`, which this file enables; all project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
